//! # e2lshos
//!
//! Facade crate for the E2LSH-on-Storage workspace — a reproduction of
//! *"Implementing and Evaluating E2LSH on Storage"* (EDBT 2023).
//!
//! Re-exports the public API of the member crates:
//!
//! * [`core`] ([`e2lsh_core`]) — LSH primitives, parameter derivation and
//!   the in-memory E2LSH index;
//! * [`storage`] ([`e2lsh_storage`]) — the flash-resident E2LSHoS index
//!   with asynchronous I/O, simulated and real device backends, and the
//!   DRAM block cache;
//! * [`service`] ([`e2lsh_service`]) — the sharded, replicated,
//!   multi-threaded query-serving layer, exposed as a **long-lived
//!   session**: `ShardedService::start` returns a `Session` whose
//!   cloneable `Client` handles submit queries and writes
//!   non-blocking through per-request tickets (`QueryTicket` /
//!   `WriteTicket`), with incremental `ServiceReport` snapshots and a
//!   draining shutdown; replica groups with private worker pools and
//!   caches over shared per-shard indexes (replica-aware cache warming
//!   on replica start/unfence), load-aware replica routing
//!   (power-of-two-choices) with fencing and failover, top-k merging,
//!   open/closed-loop load generation (including backoff-honoring
//!   closed-loop clients), latency percentiles, the online write path
//!   (mixed read–write serving with per-key cache invalidation epochs,
//!   session-minted insert ids), per-class bounded admission queues
//!   with typed `Overload` shedding and `retry_after` hints, and a
//!   batch query API with hot-query dedup;
//! * [`baselines`] ([`ann_baselines`]) — SRS and QALSH with their R-tree
//!   and B+-tree substrates;
//! * [`datasets`] ([`ann_datasets`]) — the synthetic evaluation suite,
//!   ground truth and accuracy metrics;
//! * [`analysis`] ([`e2lsh_analysis`]) — the paper's query-time cost
//!   models and storage requirement solvers.
//!
//! See `examples/quickstart.rs` for an end-to-end tour,
//! `examples/serve.rs` for the serving layer, and `DESIGN.md` for the
//! map from experiment binaries to the paper's figures and tables.

pub use ann_baselines as baselines;
pub use ann_datasets as datasets;
pub use e2lsh_analysis as analysis;
pub use e2lsh_core as core;
pub use e2lsh_service as service;
pub use e2lsh_storage as storage;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use ann_datasets::suite::DatasetId;
    pub use e2lsh_core::{knn_search, Dataset, E2lshParams, MemIndex, SearchOptions};
    pub use e2lsh_service::{
        mixed_ops, AdmissionBudget, AdmissionControl, Client, DeviceSpec, Load, Op, OpStatus,
        Overload, QueryResult, QueryTicket, RoutePolicy, ServiceConfig, Session, ShardBuildConfig,
        ShardSet, ShardUpdater, ShardedService, Topology, WriteOp, WriteResult, WriteTicket,
    };
    pub use e2lsh_storage::build::{build_index, BuildConfig};
    pub use e2lsh_storage::device::cached::{BlockCache, CachedDevice};
    pub use e2lsh_storage::device::file::FileDevice;
    pub use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
    pub use e2lsh_storage::device::Interface;
    pub use e2lsh_storage::index::StorageIndex;
    pub use e2lsh_storage::query::{run_queries, EngineConfig};
}
