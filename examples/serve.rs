//! Serving-layer tour: shard a dataset, stand up the service as a
//! **long-lived session** and submit interactively through ticketed
//! clients (with a mid-run metrics snapshot), then run the legacy
//! harness wrappers: closed-loop and open-loop (Poisson) admission,
//! the open loop pushed past capacity to watch bounded admission shed
//! load, a duplicate-heavy batch through `query_batch`,
//! backoff-honoring clients retrying on the `Overload::retry_after`
//! hint, each shard backed by 3 replicas with one killed mid-run, the
//! router failing its queries over to a sibling, and finally the
//! network tier: a loopback `NetServer` driven by a pipelining
//! `NetClient` — connect, ping, 24 in-flight queries collected out of
//! order by correlation id, a metrics frame, and a clean disconnect.
//!
//! **Overload error contract:** with a finite
//! [`AdmissionBudget`](e2lshos::service::AdmissionBudget), any *query*
//! that would overflow a shard's queue-depth or queued-bytes budget is
//! rejected at admission with the typed `Overload` error. The service
//! surfaces this per request: the op's status is `OpStatus::Shed`, its
//! results are empty, its latency is excluded from the accepted-request
//! percentiles, and shed counts / shed rate / peak queue depth appear
//! in every report. Writes are never dropped — their stream-positional
//! ids could not survive it — so a full write queue backpressures the
//! dispatcher instead. Nothing is silently dropped and nothing queues
//! without bound — offered load beyond capacity turns into explicit,
//! countable rejections (reads) or bounded stalls (writes).
//!
//! Run with `cargo run --release --example serve`.

use e2lshos::prelude::*;
use e2lshos::service::{
    skewed_queries, zipf_indices, AdmissionBudget, Load, NetClient, NetServer, NetServerConfig,
    RoutePolicy, WriteOp,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..12)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 30.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(dim, n);
    let mut p = vec![0.0f32; dim];
    for _ in 0..n {
        let c = &centers[rng.gen_range(0..centers.len())];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
        }
        ds.push(&p);
    }
    ds
}

fn main() {
    let data = clustered(6000, 16, 1);
    let base_queries = clustered(64, 16, 2);
    // Production traffic is skewed: a few hot queries dominate. That is
    // exactly where the per-shard DRAM block cache pays off.
    let queries = skewed_queries(&base_queries, 600, 1.2, 3);

    println!(
        "dataset: {} × {}d, {} queries",
        data.len(),
        data.dim(),
        queries.len()
    );

    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: 42,
            dir: std::env::temp_dir().join(format!("e2lsh-serve-example-{}", std::process::id())),
            cache_blocks: 8192, // 4 MiB per shard
            ..Default::default()
        },
        |local| {
            E2lshParams::derive(
                local.len(),
                2.0,
                4.0,
                1.0,
                local.max_abs_coord(),
                local.dim(),
            )
        },
    )
    .expect("shard build");
    for s in shards.shards() {
        println!(
            "shard {}: {} objects, index {} on storage",
            s.id,
            s.num_rows(),
            s.index.storage_bytes()
        );
    }

    let service = ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 2,
            contexts_per_worker: 16,
            k: 3,
            s_override: None,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
            ..Default::default()
        },
    );

    // The session API: start the service once, submit interactively
    // through cloneable clients, read metrics mid-run, shut down when
    // done. `client.query` never blocks — it returns a ticket that
    // resolves (poll or wait) with the result, or with a typed
    // `Overload` when the query was shed at admission. Writes mint
    // their global ids at admission; the ticket reports the id.
    let session = service.start();
    let interactive = session.client();
    let first: Vec<_> = (0..64)
        .map(|qi| interactive.query(queries.point(qi)))
        .collect();
    let inserted = interactive
        .write_blocking(WriteOp::Insert(base_queries.point(0)))
        .wait();
    let first: Vec<_> = first.into_iter().map(|t| t.wait()).collect();
    let mid = session.metrics(); // mid-run snapshot
    println!(
        "session (mid-run): {} queries resolved, insert minted id {:?}, \
         p99 so far {:.2} ms, cache hit rate {:.0}%",
        mid.latency().count,
        inserted.id,
        mid.latency().p99 * 1e3,
        mid.device.cache_hit_rate() * 100.0
    );
    // ...and the freshly inserted point is findable right away.
    let hit = interactive.query(base_queries.point(0)).wait();
    println!(
        "query for the inserted point returns {:?} (top neighbor = the new id)",
        &hit.neighbors[..1.min(hit.neighbors.len())]
    );
    let removed = interactive
        .write_blocking(WriteOp::Delete(inserted.id.unwrap()))
        .wait();
    assert!(removed.applied);
    let more: Vec<_> = (64..queries.len())
        .map(|qi| interactive.query(queries.point(qi)))
        .collect();
    for t in more {
        t.wait();
    }
    let fin = session.shutdown();
    let delta = fin.interval_since(&mid);
    println!(
        "session (final): {} queries, {} writes; since the snapshot: {} queries at {:.0} QPS",
        fin.latency().count,
        fin.writes_applied,
        delta.latency().count,
        delta.qps()
    );
    assert!(first.iter().all(|r| r.status == OpStatus::Ok));

    // Closed loop: a fixed population of 32 in-flight queries — the
    // legacy wrapper, now a thin client of the session API.
    let closed = service.serve(&queries, Load::Closed { window: 32 });
    let lat = closed.latency();
    println!(
        "closed loop: {:.0} QPS, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, \
         cache hit rate {:.0}%",
        closed.qps(),
        lat.p50 * 1e3,
        lat.p95 * 1e3,
        lat.p99 * 1e3,
        closed.device.cache_hit_rate() * 100.0
    );

    // Open loop: Poisson arrivals at 60% of the closed-loop throughput —
    // latency now includes queueing delay.
    let open = service.serve(
        &queries,
        Load::Open {
            rate_qps: (closed.qps() * 0.6).max(1.0),
            seed: 9,
        },
    );
    let lat = open.latency();
    println!(
        "open loop:   {:.0} QPS, p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, \
         cache hit rate {:.0}%",
        open.qps(),
        lat.p50 * 1e3,
        lat.p95 * 1e3,
        lat.p99 * 1e3,
        open.device.cache_hit_rate() * 100.0
    );

    let q0 = &closed.results[0];
    println!("top-{} for query 0: {:?}", q0.len(), q0);

    // Batched serving: a duplicate-heavy request (Zipf-hot picks) goes
    // through query_batch — byte-identical queries are deduped before
    // the engine, so the batch costs its *unique* queries only.
    let picks = zipf_indices(base_queries.len(), 256, 1.2, 4);
    let mut batch = Dataset::with_capacity(base_queries.dim(), picks.len());
    for &i in &picks {
        batch.push(base_queries.point(i));
    }
    let brep = service.query_batch(&batch);
    println!(
        "query_batch: {} queries → {} unique ({:.0}% dedup), {} engine probes, p99 {:.2} ms",
        batch.len(),
        brep.unique,
        brep.dedup_rate() * 100.0,
        brep.total_io,
        brep.latency().p99 * 1e3
    );

    // Overload: rebuild the service with a finite admission budget and
    // offer 3× the measured throughput open-loop. The queue bound
    // holds; the excess is shed with the typed Overload error (statuses
    // report OpStatus::Shed per query) instead of queueing forever.
    service.shards().cleanup();
    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: 42,
            dir: std::env::temp_dir()
                .join(format!("e2lsh-serve-example-ovl-{}", std::process::id())),
            cache_blocks: 8192,
            ..Default::default()
        },
        |local| {
            E2lshParams::derive(
                local.len(),
                2.0,
                4.0,
                1.0,
                local.max_abs_coord(),
                local.dim(),
            )
        },
    )
    .expect("shard build");
    let bounded = ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 2,
            contexts_per_worker: 16,
            k: 3,
            s_override: None,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
            admission: AdmissionBudget::depth(32).into(),
            ..Default::default()
        },
    );
    let overload = bounded.serve(
        &queries,
        Load::Open {
            rate_qps: closed.qps() * 3.0,
            seed: 21,
        },
    );
    let lat = overload.latency();
    println!(
        "overload @3x: goodput {:.0} QPS, shed {:.0}% ({} of {}), peak queue {} (bound 32), \
         accepted p99 {:.2} ms",
        overload.goodput(),
        overload.shed_rate() * 100.0,
        overload.shed_queries,
        overload.results.len(),
        overload.peak_queue_depth,
        lat.p99 * 1e3
    );

    // Backoff-honoring clients: every Overload carries a retry_after
    // hint derived from the queue's drain rate. Load::ClosedBackoff
    // retries shed queries after the hinted delay — overload turns into
    // counted retries instead of lost requests.
    let polite = bounded.serve(
        &queries,
        Load::ClosedBackoff {
            window: 96,
            max_retries: 100,
        },
    );
    println!(
        "backoff clients: {} retries, {} shed, goodput {:.0} QPS",
        polite.retries,
        polite.shed_queries,
        polite.goodput()
    );
    bounded.shards().cleanup();

    // Replica groups: back each shard with 3 replicas (shared index,
    // private caches and queues) and route each query to the
    // least-loaded of two sampled replicas. Then kill one replica
    // mid-flight: the router fences it, outstanding queries re-dispatch
    // to a sibling, and the service keeps answering.
    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: 42,
            dir: std::env::temp_dir()
                .join(format!("e2lsh-serve-example-rep-{}", std::process::id())),
            cache_blocks: 8192,
            ..Default::default()
        },
        |local| {
            E2lshParams::derive(
                local.len(),
                2.0,
                4.0,
                1.0,
                local.max_abs_coord(),
                local.dim(),
            )
        },
    )
    .expect("shard build");
    let replicated = ShardedService::new(
        shards,
        ServiceConfig {
            replicas_per_shard: 3,
            routing: RoutePolicy::PowerOfTwoChoices,
            workers_per_replica: 1,
            contexts_per_worker: 16,
            k: 3,
            s_override: None,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
            ..Default::default()
        },
    );
    let mut rep = None;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            replicated.topology().fence(0, 2); // replica 2 of shard 0 "crashes"
        });
        rep = Some(replicated.serve(&queries, Load::Closed { window: 32 }));
    });
    let rep = rep.unwrap();
    println!(
        "replicas @R=3 (one fenced mid-run): {:.0} QPS, {} failovers, {} shed, \
         per-replica load {:?}, imbalance {:.2}",
        rep.qps(),
        rep.failovers,
        rep.shed_queries,
        rep.replica_load,
        rep.replica_imbalance()
    );
    replicated.shards().cleanup();

    // The network tier: the same session API, but over a socket. A
    // `NetServer` listens on loopback and maps each in-flight frame
    // onto a session ticket; a `NetClient` mirrors the `Client`
    // surface. Pipelined sends share the connection — responses come
    // back out of order and match up by correlation id.
    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 2,
            seed: 42,
            dir: std::env::temp_dir()
                .join(format!("e2lsh-serve-example-net-{}", std::process::id())),
            cache_blocks: 8192,
            ..Default::default()
        },
        |local| {
            E2lshParams::derive(
                local.len(),
                2.0,
                4.0,
                1.0,
                local.max_abs_coord(),
                local.dim(),
            )
        },
    )
    .expect("shard build");
    let svc = ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 2,
            contexts_per_worker: 16,
            k: 5,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::ESSD,
                num_devices: 1,
            },
            ..Default::default()
        },
    );
    let session = svc.start();
    let server = NetServer::spawn(&session, NetServerConfig::default()).expect("bind loopback");
    println!("\nnet: serving on {}", server.addr());

    // Tenant 7's connection. One socket, many in-flight queries:
    // `send_query` pipelines without reading, `wait_query` collects by
    // correlation id — here in reverse order, just to prove the match.
    let mut client = NetClient::connect(server.addr(), 7).expect("connect");
    client.ping().expect("ping");
    let corrs: Vec<u64> = (0..24)
        .map(|i| {
            client
                .send_query(queries.point(i % queries.len()))
                .expect("pipeline")
        })
        .collect();
    let mut served = 0;
    for &corr in corrs.iter().rev() {
        let reply = client.wait_query(corr).expect("collect");
        if reply.status == OpStatus::Ok {
            served += 1;
        }
    }
    let first = client.query(queries.point(0)).expect("one more");
    println!(
        "net: 24 pipelined queries -> {served} served; top hit of query 0: {:?}",
        first.neighbors.first()
    );

    // The metrics frame returns the schema-v3 JSON export — the same
    // document the bench artifacts embed, net counters included.
    let json = client.metrics_json().expect("metrics frame");
    println!(
        "net: metrics frame is {} bytes of schema-v3 JSON",
        json.len()
    );

    // Clean disconnect: drop the client (EOF at a frame boundary),
    // then drain the server. Every owed response was already written,
    // so nothing counts as dropped or orphaned.
    drop(client);
    let report = server.shutdown();
    println!(
        "net: {} conns, {} frames in / {} out, {} dropped, {} orphaned",
        report.net.connections_accepted,
        report.net.frames_in,
        report.net.frames_out,
        report.net.connections_dropped,
        report.net.tickets_orphaned
    );
    drop(session.shutdown());
    svc.shards().cleanup();
}
