//! Streaming ingestion: keep an E2LSHoS index fresh under inserts and
//! deletes without rebuilding (paper Section 7: updates are cheap; full
//! rebuilds burn SSD endurance and should be rare).
//!
//! Run with: `cargo run --release --example streaming_ingest`

use e2lshos::prelude::*;
use e2lshos::storage::update::Updater;

fn main() -> std::io::Result<()> {
    // Start with a 10k-point index, reserving capacity for growth.
    let named = e2lshos::datasets::suite::load_sized(DatasetId::Glove, 12_000, 0);
    let all = named.data;
    let mut live = all.prefix(10_000);
    let params =
        E2lshParams::derive_practical(10_000, 2.0, 2.0, 0.7, 0.3, all.max_abs_coord(), all.dim());
    let path = std::env::temp_dir().join("e2lshos-streaming.idx");
    let cfg = BuildConfig {
        capacity: Some(12_000),
        ..Default::default()
    };
    build_index(&live, &params, &cfg, &path)?;
    println!("initial index: 10000 objects");

    // Stream in 2000 new points.
    let t0 = std::time::Instant::now();
    let mut up = Updater::open(&path)?;
    for i in 10_000..12_000 {
        let id = up.insert(all.point(i))?;
        live.push(all.point(i));
        debug_assert_eq!(id as usize, i);
    }
    let ins = t0.elapsed();
    println!(
        "inserted 2000 objects in {:.2}s ({:.0} inserts/s)",
        ins.as_secs_f64(),
        2000.0 / ins.as_secs_f64()
    );

    // Delete 500 of the originals.
    let t0 = std::time::Instant::now();
    for i in (0..500).map(|i| i * 7) {
        up.delete(live.point(i), i as u32)?;
    }
    let del = t0.elapsed();
    println!(
        "deleted 500 objects in {:.2}s ({:.0} deletes/s)",
        del.as_secs_f64(),
        500.0 / del.as_secs_f64()
    );
    drop(up);

    // Query the updated index through real file I/O: inserted points are
    // findable, deleted ones are gone.
    let mut dev = FileDevice::open(&path, 8)?;
    let index = StorageIndex::open(&mut dev)?;
    let mut queries = e2lshos::core::Dataset::with_capacity(all.dim(), 2);
    queries.push(all.point(11_500)); // inserted after the build
    queries.push(live.point(7)); // deleted (i = 1·7)
    let mut qcfg = EngineConfig::wall_clock(1);
    qcfg.s_override = Some(16 * params.l);
    let batch = run_queries(&index, &live, &queries, &qcfg, &mut dev);
    let inserted_found = batch.outcomes[0]
        .neighbors
        .first()
        .map(|&(id, d)| id == 11_500 && d == 0.0)
        .unwrap_or(false);
    let deleted_gone = batch.outcomes[1]
        .neighbors
        .first()
        .map(|&(id, _)| id != 7)
        .unwrap_or(true);
    println!("inserted object findable: {inserted_found}");
    println!("deleted object absent:    {deleted_gone}");
    std::fs::remove_file(&path).ok();
    Ok(())
}
