//! Device study: the paper's central claim in miniature.
//!
//! Builds one E2LSHoS index over a GIST-like dataset and runs the *same*
//! query batch across the storage hierarchy — HDD, consumer SSD,
//! enterprise SSD, XL-FLASH prototype — and across I/O interfaces
//! (io_uring / SPDK / XLFDD), using the virtual-time engine. Shows how
//! random-read IOPS first, then per-I/O CPU overhead, decide whether a
//! flash-resident sublinear index can match in-memory speed.
//!
//! Run with: `cargo run --release --example device_study`

use e2lshos::prelude::*;

fn main() -> std::io::Result<()> {
    let named = e2lshos::datasets::suite::load_sized(DatasetId::Gist, 15_000, 30);
    let (data, queries) = (named.data, named.queries);
    let params = E2lshParams::derive_practical(
        data.len(),
        2.0,
        2.0,
        0.7,
        0.3,
        data.max_abs_coord(),
        data.dim(),
    );
    let path = std::env::temp_dir().join("e2lshos-device-study.idx");
    build_index(&data, &params, &BuildConfig::default(), &path)?;

    println!(
        "{:<26} {:>14} {:>12} {:>12}",
        "Configuration", "query time", "QPS", "N_IO/query"
    );
    let configs = [
        (
            "HDD ×1 + io_uring",
            DeviceProfile::HDD,
            1,
            Interface::IO_URING,
        ),
        (
            "cSSD ×1 + io_uring",
            DeviceProfile::CSSD,
            1,
            Interface::IO_URING,
        ),
        (
            "cSSD ×4 + io_uring",
            DeviceProfile::CSSD,
            4,
            Interface::IO_URING,
        ),
        ("cSSD ×4 + SPDK", DeviceProfile::CSSD, 4, Interface::SPDK),
        ("eSSD ×1 + SPDK", DeviceProfile::ESSD, 1, Interface::SPDK),
        ("eSSD ×8 + SPDK", DeviceProfile::ESSD, 8, Interface::SPDK),
        (
            "XLFDD ×12 + XLFDD if.",
            DeviceProfile::XLFDD,
            12,
            Interface::XLFDD,
        ),
    ];
    for (name, profile, num, iface) in configs {
        let mut dev = SimStorage::new(profile, num, Backing::open(&path)?);
        let index = StorageIndex::open(&mut dev)?;
        let mut cfg = EngineConfig::simulated(iface, 1);
        cfg.s_override = Some(8 * params.l);
        let batch = run_queries(&index, &data, &queries, &cfg, &mut dev);
        println!(
            "{:<26} {:>12.1} µs {:>12.0} {:>12.1}",
            name,
            batch.mean_query_time() * 1e6,
            batch.qps(),
            batch.mean_n_io()
        );
    }

    // In-memory reference.
    let mem = MemIndex::build(&data, &params, BuildConfig::default().seed);
    let opts = SearchOptions {
        s_override: Some(8 * params.l),
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    for qi in 0..queries.len() {
        let _ = knn_search(&mem, &data, queries.point(qi), 1, &opts);
    }
    let t = t0.elapsed().as_secs_f64() / queries.len() as f64;
    println!(
        "{:<26} {:>12.1} µs {:>12.0} {:>12}",
        "in-memory E2LSH",
        t * 1e6,
        1.0 / t,
        "0"
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
