//! Near-duplicate image search — the workload class that motivates the
//! paper's introduction (multimedia indexing).
//!
//! A corpus of SIFT-like byte descriptors contains planted near-duplicate
//! pairs (the "same image re-encoded"). The example builds an E2LSHoS
//! index on disk, then streams "incoming uploads" against it to flag
//! near-duplicates, comparing E2LSHoS throughput with a brute-force scan
//! and reporting precision/recall of the duplicate detector.
//!
//! Run with: `cargo run --release --example image_dedup`

use e2lshos::prelude::*;
use rand::{Rng, SeedableRng};

fn main() -> std::io::Result<()> {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
    // Corpus: 15k descriptors.
    let base = e2lshos::datasets::suite::load_sized(DatasetId::Sift, 15_000, 1).data;

    // Uploads: 60 near-duplicates of corpus items (small perturbations)
    // interleaved with 60 genuinely new descriptors.
    let dim = base.dim();
    let mut uploads = e2lshos::core::Dataset::with_capacity(dim, 120);
    let mut is_dup = Vec::new();
    for i in 0..120 {
        if i % 2 == 0 {
            let src = rng.gen_range(0..base.len());
            let p: Vec<f32> = base
                .point(src)
                .iter()
                .map(|&v| (v + rng.gen_range(-3.0f32..3.0)).clamp(0.0, 255.0).round())
                .collect();
            uploads.push(&p);
            is_dup.push(true);
        } else {
            let p: Vec<f32> = (0..dim)
                .map(|_| (rng.gen::<f32>() * 255.0).round())
                .collect();
            uploads.push(&p);
            is_dup.push(false);
        }
    }

    let params = E2lshParams::derive_practical(
        base.len(),
        2.0,
        2.0,
        0.7,
        0.3,
        base.max_abs_coord().max(255.0),
        dim,
    );
    let path = std::env::temp_dir().join("e2lshos-dedup.idx");
    build_index(&base, &params, &BuildConfig::default(), &path)?;
    let mut dev = FileDevice::open(&path, 8)?;
    let index = StorageIndex::open(&mut dev)?;

    // Distance threshold separating "near-duplicate" from "new": the
    // perturbation radius is ≈ 3·√d ≈ 20–35; random descriptors are
    // hundreds away.
    let threshold = 4.0 * (dim as f32).sqrt();

    let mut cfg = EngineConfig::wall_clock(1);
    cfg.s_override = Some(8 * params.l);
    let t0 = std::time::Instant::now();
    let batch = run_queries(&index, &base, &uploads, &cfg, &mut dev);
    let lsh_time = t0.elapsed().as_secs_f64();

    let mut tp = 0;
    let mut fp = 0;
    let mut fnn = 0;
    for (qi, out) in batch.outcomes.iter().enumerate() {
        let flagged = out
            .neighbors
            .first()
            .map(|&(_, d)| d <= threshold)
            .unwrap_or(false);
        match (flagged, is_dup[qi]) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fnn += 1,
            _ => {}
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fnn).max(1) as f64;
    println!(
        "E2LSHoS dedup: {} uploads in {:.1} ms ({:.0} uploads/s)",
        uploads.len(),
        lsh_time * 1e3,
        uploads.len() as f64 / lsh_time
    );
    println!("precision {precision:.2}, recall {recall:.2} at threshold {threshold:.0}");

    // Brute-force reference.
    let t0 = std::time::Instant::now();
    let mut brute_flags = 0;
    for qi in 0..uploads.len() {
        let nn = e2lshos::baselines::brute::knn(&base, uploads.point(qi), 1)[0];
        if nn.1 <= threshold {
            brute_flags += 1;
        }
    }
    let brute_time = t0.elapsed().as_secs_f64();
    println!(
        "brute force:   {} uploads in {:.1} ms ({:.0} uploads/s), {} flagged",
        uploads.len(),
        brute_time * 1e3,
        uploads.len() as f64 / brute_time,
        brute_flags
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
