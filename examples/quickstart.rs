//! Quickstart: build an E2LSHoS index on disk and answer top-k queries
//! through real asynchronous file I/O, then compare with the in-memory
//! E2LSH index and exact brute force.
//!
//! Run with: `cargo run --release --example quickstart`

use e2lshos::prelude::*;

fn main() -> std::io::Result<()> {
    // 1. A synthetic dataset: 20k SIFT-like byte descriptors plus 20
    //    held-out queries from the same distribution.
    let named = e2lshos::datasets::suite::load_sized(DatasetId::Sift, 20_000, 20);
    let (data, queries) = (named.data, named.queries);
    println!("dataset: n = {}, d = {}", data.len(), data.dim());

    // 2. Derive E2LSH parameters (Equation 5 with the paper's practical
    //    index-size exponent) and build the on-storage index.
    let params = E2lshParams::derive_practical(
        data.len(),
        2.0, // approximation ratio c
        2.0, // bucket width w
        0.7, // gamma (accuracy knob)
        0.3, // effective rho: L = n^0.3
        data.max_abs_coord(),
        data.dim(),
    );
    println!(
        "params: m = {}, L = {}, S = {}, {} radii",
        params.m,
        params.l,
        params.s,
        params.num_radii()
    );
    let path = std::env::temp_dir().join("e2lshos-quickstart.idx");
    let report = build_index(&data, &params, &BuildConfig::default(), &path)?;
    println!(
        "index built: {:.1} MiB on storage ({} bucket blocks)",
        report.total_bytes as f64 / (1 << 20) as f64,
        report.blocks
    );

    // 3. Open it through the real asynchronous file device (a worker-pool
    //    of positioned reads) and run top-5 queries.
    let mut dev = FileDevice::open(&path, 8)?;
    let index = StorageIndex::open(&mut dev)?;
    let mut cfg = EngineConfig::wall_clock(5);
    cfg.s_override = Some(8 * params.l);
    let batch = run_queries(&index, &data, &queries, &cfg, &mut dev);
    println!(
        "E2LSHoS (real file I/O): {:.0} queries/s, {:.1} I/Os per query",
        batch.qps(),
        batch.mean_n_io()
    );

    // 4. Cross-check against the in-memory index and exact search.
    let mem = MemIndex::build(&data, &params, BuildConfig::default().seed);
    let opts = SearchOptions {
        s_override: Some(8 * params.l),
        ..Default::default()
    };
    let mut agree = 0;
    for qi in 0..queries.len() {
        let q = queries.point(qi);
        let exact = e2lshos::baselines::brute::knn(&data, q, 1)[0];
        let (mem_res, _) = knn_search(&mem, &data, q, 1, &opts);
        let disk_res = &batch.outcomes[qi].neighbors;
        let d_disk = disk_res.first().map(|r| r.1).unwrap_or(f32::INFINITY);
        let d_mem = mem_res.first().map(|r| r.1).unwrap_or(f32::INFINITY);
        println!(
            "query {qi:>2}: exact {:.1} | in-memory {:.1} | on-storage {:.1}",
            exact.1, d_mem, d_disk
        );
        if (d_disk - exact.1).abs() < 1e-3 {
            agree += 1;
        }
    }
    println!(
        "on-storage answer equals the exact NN for {agree}/{} queries",
        queries.len()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
