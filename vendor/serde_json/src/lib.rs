//! Vendored `serde_json` subset over the offline serde stub:
//! `to_string` for serialization plus a small recursive-descent parser
//! (`from_str` → [`Value`]) so tooling (the bench schema check) can read
//! emitted artifacts back without a crates.io dependency.

use std::fmt;

/// Serialization/parse error carrying a short message.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json(&mut out);
    Ok(out)
}

/// A parsed JSON document. Objects preserve key order and are accessed
/// positionally via [`Value::get`]; numbers are kept as `f64` (enough
/// for the workspace's metric artifacts).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parse a JSON document.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Lone surrogates degrade to the replacement
                            // character; the workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar starting here.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("non-utf8 string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_string() {
        assert_eq!(super::to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-2.5e1").unwrap(), Value::Number(-25.0));
        assert_eq!(
            from_str("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested() {
        let v = from_str(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert!(v.get("c").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_own_output() {
        let mut s = String::new();
        serde::Serialize::to_json(&(42u32, "he\"llo"), &mut s);
        let v = from_str(&s).unwrap();
        assert_eq!(v.as_array().unwrap()[0].as_f64(), Some(42.0));
        assert_eq!(v.as_array().unwrap()[1].as_str(), Some("he\"llo"));
    }
}
