//! Vendored `serde_json::to_string` over the offline serde stub.

use std::fmt;

/// Serialization error. The stub's encoder is infallible, so this is
/// never produced; it exists for signature compatibility.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip_string() {
        assert_eq!(super::to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
    }
}
