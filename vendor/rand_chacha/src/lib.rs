//! Vendored ChaCha-based deterministic generators for the offline build.
//!
//! Implements the real ChaCha stream cipher core (D. J. Bernstein) with 8,
//! 12 or 20 rounds over a 256-bit seed and 64-bit block counter. Streams
//! are deterministic functions of the seed, which is all the workspace
//! relies on (index builds regenerate hash families from stored seeds).

use rand::{RngCore, SeedableRng};

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: 16 output words from key, counter and round count.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize, out: &mut [u32; 16]) {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = state[i].wrapping_add(initial[i]);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *k = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                Self {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    chacha_block(&self.key, self.counter, $rounds, &mut self.buffer);
                    self.counter = self.counter.wrapping_add(1);
                    self.index = 0;
                }
                let v = self.buffer[self.index];
                self.index += 1;
                v
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds (fast deterministic RNG)."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds (full-strength).");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha20_known_answer() {
        // RFC 7539 §2.3.2 test vector: key 00..1f, counter 1, nonce 0
        // differs (we use a zero nonce), so instead check the all-zero-key
        // block 0 keystream head against the reference value for
        // ChaCha20 with zero key/nonce/counter.
        let key = [0u32; 8];
        let mut out = [0u32; 16];
        chacha_block(&key, 0, 20, &mut out);
        assert_eq!(out[0], 0xade0b876, "ChaCha20 zero-state vector");
        assert_eq!(out[1], 0x903df1a0);
    }

    #[test]
    fn floats_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
