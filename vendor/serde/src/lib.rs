//! Vendored, dependency-free subset of the serde API.
//!
//! The workspace only ever serializes flat record structs to JSON lines
//! (`bench::report::record`), so this stub collapses serde's data model
//! to a single operation: [`Serialize::to_json`] appends the value's JSON
//! encoding to a string. `#[derive(Serialize)]` (re-exported from the
//! sibling `serde_derive` stub) emits a JSON object with the fields in
//! declaration order. [`Deserialize`] is derive-only and never read back.

use std::fmt::Write as _;

pub use serde_derive::{Deserialize, Serialize};

/// A value encodable as JSON.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn to_json(&self, out: &mut String);
}

/// Marker for deserializable values (no runtime support; the workspace
/// never parses serialized data back).
pub trait Deserialize {}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
        impl Deserialize for $t {}
    )*};
}
int_impl!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self, out: &mut String) {
                if self.is_finite() {
                    let _ = write!(out, "{self}");
                } else {
                    // serde_json convention: non-finite floats become null.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}
float_impl!(f32, f64);

impl Serialize for bool {
    fn to_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn to_json(&self, out: &mut String) {
        escape_into(self, out);
    }
}

impl Serialize for String {
    fn to_json(&self, out: &mut String) {
        escape_into(self, out);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self, out: &mut String) {
        (**self).to_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.to_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self, out: &mut String) {
        self.as_slice().to_json(out);
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self, out: &mut String) {
        self.as_slice().to_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self, out: &mut String) {
        match self {
            Some(v) => v.to_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self, out: &mut String) {
        out.push('[');
        self.0.to_json(out);
        out.push(',');
        self.1.to_json(out);
        out.push(']');
    }
}
impl<A, B> Deserialize for (A, B) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.to_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(enc(42u32), "42");
        assert_eq!(enc(-7i64), "-7");
        assert_eq!(enc(2.5f64), "2.5");
        assert_eq!(enc(f64::NAN), "null");
        assert_eq!(enc(true), "true");
        assert_eq!(enc("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(enc(vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(enc(Option::<u32>::None), "null");
        assert_eq!(enc(Some(5u8)), "5");
        assert_eq!(enc((1u32, "x")), "[1,\"x\"]");
    }
}
