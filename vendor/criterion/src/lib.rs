//! Vendored micro-benchmark harness exposing the subset of the criterion
//! API the workspace's benches use (`criterion_group!` / `criterion_main!`
//! with name/config/targets, `bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize`). Reports mean ns/iter to stdout;
//! no statistics, plots or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (ignored by this stub beyond
/// signature compatibility).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small routine input.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// Re-run setup every iteration.
    PerIteration,
}

/// Benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    fn run<F: FnMut() -> Duration>(&mut self, mut timed_batch: F) {
        // Warm-up: run batches until the warm-up budget elapses.
        let t0 = Instant::now();
        while t0.elapsed() < self.warm_up {
            let _ = timed_batch();
        }
        // Measure.
        let mut spent = Duration::ZERO;
        let mut total_iters = 0u64;
        while spent < self.measure {
            spent += timed_batch();
            total_iters += 1;
        }
        self.result_ns = spent.as_nanos() as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }

    /// Time a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        });
    }

    /// Time a routine with untimed per-batch setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        });
    }
}

/// Top-level benchmark registry.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            warm_up: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Set the nominal sample count (kept for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            result_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let (value, unit) = if b.result_ns >= 1e6 {
            (b.result_ns / 1e6, "ms")
        } else if b.result_ns >= 1e3 {
            (b.result_ns / 1e3, "µs")
        } else {
            (b.result_ns, "ns")
        };
        println!("{name:<40} {value:>10.2} {unit}/iter  ({} iters)", b.iters);
        self
    }
}

/// Define a benchmark group (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
