//! Vendored property-testing harness exposing the subset of the proptest
//! API this workspace uses: the `proptest!` macro over `arg in strategy`
//! bindings, range and `collection::vec` strategies, `prop_assert*!`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled inputs left to the assertion message. Cases are generated
//! from a ChaCha stream seeded by the test name, so runs are fully
//! deterministic.

#[doc(hidden)]
pub use rand as __rand;
#[doc(hidden)]
pub use rand_chacha as __rand_chacha;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
float_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// A fixed value used as a strategy (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{ChaCha8Rng, Strategy};
    use rand::Rng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length.
        pub lo: usize,
        /// Maximum length (inclusive).
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut ChaCha8Rng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline harness
            // fast while still exercising the space.
            Self { cases: 64 }
        }
    }
}

/// Everything the `proptest!` macro and its callers need.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Assert within a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::__rand::SeedableRng as _;
                let __cfg = $cfg;
                let __seed = $crate::__seed_for(stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::__rand_chacha::ChaCha8Rng::seed_from_u64(
                            __seed ^ (u64::from(__case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_bound(x in 1u32..10, f in -2.0f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes(v in collection::vec(0u8..=255, 2..5), w in collection::vec(0u32..9, 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 3);
        }
    }
}
