//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact trait surface its code uses: [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with `gen`,
//! `gen_range` and `fill`. Deterministic generators come from the sibling
//! `rand_chacha` stub. Distribution quality matches the upstream
//! conventions (24-bit mantissa f32 in `[0, 1)`, 53-bit f64), though the
//! exact streams differ from upstream `rand` — every consumer in this
//! workspace seeds its own generator, so only self-consistency matters.

/// Low-level generator interface: a source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (the same
    /// convention upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a generator's raw bits (the stand-in
/// for upstream's `Standard` distribution).
pub trait SampleStandard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable uniformly (the stand-in for upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = <$t as SampleStandard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as SampleStandard>::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` namespace for API compatibility.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-3.0f32..3.0);
            assert!((-3.0..3.0).contains(&f));
            let i = r.gen_range(-10i32..=10);
            assert!((-10..=10).contains(&i));
        }
    }
}
