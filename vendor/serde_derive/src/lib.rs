//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stub.
//!
//! Supports non-generic structs with named fields — the only shapes this
//! workspace derives. The generated `Serialize` impl writes a JSON object
//! with the fields in declaration order; `Deserialize` is a marker impl
//! (nothing in the workspace parses JSON back).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Parsed {
    name: String,
    fields: Vec<String>,
}

/// Extract the struct name and named-field list from a derive input.
fn parse_struct(input: TokenStream, trait_name: &str) -> Parsed {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => panic!("derive({trait_name}): expected struct, got {other:?}"),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected struct name, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive({trait_name}): generic structs are not supported by the vendored serde stub")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("derive({trait_name}): tuple/unit structs are not supported")
            }
            Some(_) => continue,
            None => panic!("derive({trait_name}): missing struct body"),
        }
    };

    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive({trait_name}): expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive({trait_name}): expected ':', got {other:?}"),
        }
        // Skip the type up to the next top-level comma, tracking angle
        // brackets so `HashMap<K, V>`-style commas don't terminate early.
        let mut angle = 0i32;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    toks.next();
                    break;
                }
                None => break,
                _ => {}
            }
            toks.next();
        }
        fields.push(field);
    }
    Parsed { name, fields }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input, "Serialize");
    let mut body = String::from("out.push('{');");
    for (i, f) in parsed.fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\"); ::serde::Serialize::to_json(&self.{f}, out);"
        ));
    }
    body.push_str("out.push('}');");
    format!(
        "impl ::serde::Serialize for {} {{ fn to_json(&self, out: &mut String) {{ {body} }} }}",
        parsed.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input, "Deserialize");
    format!("impl ::serde::Deserialize for {} {{}}", parsed.name)
        .parse()
        .expect("generated Deserialize impl parses")
}
