//! Vendored subset of the `bytes` crate: the [`Buf`] / [`BufMut`] traits
//! over `&[u8]` and `Vec<u8>`, which is all the on-disk codec in
//! `e2lsh_storage::layout` uses.

/// Sequential little-endian reader over a byte cursor.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy out the next `N` bytes.
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    /// Read a little-endian `u8`.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_array::<1>()[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.copy_to_array())
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_array())
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "read past end of buffer");
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

/// Sequential little-endian writer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u64_le(0xDEAD_BEEF_0102_0304);
        v.put_u16_le(99);
        v.put_slice(&[7, 8, 9]);
        let mut r = &v[..];
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF_0102_0304);
        assert_eq!(r.get_u16_le(), 99);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r.get_u8(), 8);
    }
}
