//! Vendored subset of crossbeam: an unbounded MPMC channel built on
//! `Mutex<VecDeque>` + `Condvar`. API-compatible with
//! `crossbeam::channel` for the operations this workspace uses
//! (`unbounded`, cloneable `Sender`/`Receiver`, `send`, `recv`,
//! `try_recv`, `recv_timeout`). Throughput is far below the real
//! crossbeam, but the channels here only carry I/O jobs whose service
//! time dwarfs any locking cost.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error: all receivers dropped; returns the unsent value.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner.queue.lock().unwrap().push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().unwrap();
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, res) = self
                    .inner
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap();
                queue = q;
                if res.timed_out() && queue.is_empty() {
                    if self.inner.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Messages currently queued (racy; diagnostics only).
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        /// True when no messages are queued (racy; diagnostics only).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn mpmc_round_trip() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let h = std::thread::spawn(move || rx2.recv().unwrap());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = h.join().unwrap();
        let b = rx.recv().unwrap();
        let mut got = vec![a, b];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn timeout_fires() {
        let (tx, rx) = unbounded::<u32>();
        let r = rx.recv_timeout(Duration::from_millis(20));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(5));
    }
}
