//! Failure injection: the storage layer must reject corrupt inputs
//! loudly rather than serving wrong answers.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_storage::build::{build_index, BuildConfig, Superblock};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::layout::SUPERBLOCK_SIZE;
use e2lsh_storage::testutil::temp_path;
use rand::{Rng, SeedableRng};

fn dataset(n: usize) -> Dataset {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..6).map(|_| rng.gen::<f32>() * 5.0).collect())
        .collect();
    Dataset::from_rows(&rows)
}

#[test]
fn zeroed_superblock_is_rejected() {
    let mut dev = SimStorage::new(
        DeviceProfile::ESSD,
        1,
        Backing::Mem(vec![0u8; SUPERBLOCK_SIZE * 2]),
    );
    assert!(StorageIndex::open(&mut dev).is_err());
}

#[test]
fn corrupted_magic_is_rejected() {
    let ds = dataset(200);
    let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
    let path = temp_path("corrupt_magic.idx");
    build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
    let mut image = std::fs::read(&path).unwrap();
    image[0] ^= 0xFF; // flip a magic byte
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image));
    assert!(StorageIndex::open(&mut dev).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_radius_count_is_rejected() {
    let ds = dataset(200);
    let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
    let path = temp_path("corrupt_radii.idx");
    build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
    let mut image = std::fs::read(&path).unwrap();
    // The radius count lives after magic(8)+n(8)+capacity(8)+dim(4)+m(4)+
    // l(4)+u(4)+filter(4)+c(4)+w(4)+gamma(4)+s(8)+seed(8)+total(8) = 80.
    image[80..84].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = Superblock::decode(&image).unwrap_err();
    assert!(err.to_string().contains("radii"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_index_serves_zero_filled_blocks_without_panicking() {
    // A partially-written heap must not crash the engine: reads past EOF
    // come back zero-filled and decode as empty blocks (count = 0).
    let ds = dataset(500);
    let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
    let path = temp_path("truncated.idx");
    build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
    let mut image = std::fs::read(&path).unwrap();
    image.truncate(image.len() - image.len() / 3); // chop the heap tail
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image));
    let index = StorageIndex::open(&mut dev).unwrap();
    let queries = dataset(5);
    let cfg =
        e2lsh_storage::query::EngineConfig::simulated(e2lsh_storage::device::Interface::SPDK, 1);
    // Must not panic; results may be degraded (some buckets unreadable).
    let _ = e2lsh_storage::query::run_queries(&index, &ds, &queries, &cfg, &mut dev);
}
