//! Failure injection: the storage layer must reject corrupt inputs
//! loudly rather than serving wrong answers — and the online write
//! path must leave a shard queryable (and its block cache free of
//! bytes from the failed write) when a device error lands mid
//! insert/delete.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_storage::build::{build_index, BuildConfig, Superblock};
use e2lsh_storage::device::cached::{BlockCache, CachedDevice};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, IoRequest};
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::layout::{BLOCK_SIZE, SUPERBLOCK_SIZE};
use e2lsh_storage::testutil::temp_path;
use e2lsh_storage::update::Updater;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Seed override so the CI stress job exercises distinct datasets; a
/// failing seed reproduces locally via `E2LSH_TEST_SEED=…`.
fn test_seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn dataset_seeded(n: usize, seed: u64) -> Dataset {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..6).map(|_| rng.gen::<f32>() * 5.0).collect())
        .collect();
    Dataset::from_rows(&rows)
}

fn dataset(n: usize) -> Dataset {
    dataset_seeded(n, 3)
}

#[test]
fn zeroed_superblock_is_rejected() {
    let mut dev = SimStorage::new(
        DeviceProfile::ESSD,
        1,
        Backing::Mem(vec![0u8; SUPERBLOCK_SIZE * 2]),
    );
    assert!(StorageIndex::open(&mut dev).is_err());
}

#[test]
fn corrupted_magic_is_rejected() {
    let ds = dataset(200);
    let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
    let path = temp_path("corrupt_magic.idx");
    build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
    let mut image = std::fs::read(&path).unwrap();
    image[0] ^= 0xFF; // flip a magic byte
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image));
    assert!(StorageIndex::open(&mut dev).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_radius_count_is_rejected() {
    let ds = dataset(200);
    let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
    let path = temp_path("corrupt_radii.idx");
    build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
    let mut image = std::fs::read(&path).unwrap();
    // The radius count lives after magic(8)+n(8)+capacity(8)+dim(4)+m(4)+
    // l(4)+u(4)+filter(4)+c(4)+w(4)+gamma(4)+s(8)+seed(8)+total(8) = 80.
    image[80..84].copy_from_slice(&u32::MAX.to_le_bytes());
    let err = Superblock::decode(&image).unwrap_err();
    assert!(err.to_string().contains("radii"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// Read every whole block of the index file through a CachedDevice so
/// the cache is warm everywhere an update could strike.
fn warm_cache(dev: &mut CachedDevice<SimStorage>, file_len: u64) {
    let blocks = file_len.div_ceil(BLOCK_SIZE as u64);
    let mut now = 0.0f64;
    let mut out = Vec::new();
    for b in 0..blocks {
        dev.submit(
            IoRequest {
                addr: b * BLOCK_SIZE as u64,
                len: BLOCK_SIZE as u32,
                tag: b,
            },
            now,
        );
        now = dev.next_completion_time().unwrap().max(now);
        out.clear();
        dev.poll(now, &mut out);
    }
}

/// Device errors injected mid-`Updater::insert`: the operation fails,
/// but (1) the shard stays queryable — the index reopens and serves
/// correct answers for pre-existing objects without panicking, even
/// though half-linked entries for the failed id are on storage; and
/// (2) a block cache over the file holds no bytes from the failed
/// write once the write trace is invalidated (exactly what the
/// service's `ShardUpdater` does on error).
#[test]
fn failed_insert_keeps_shard_queryable_and_cache_clean() {
    let seed = test_seed();
    let ds = dataset_seeded(300, seed);
    let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
    let path = temp_path("failed_insert.idx");
    build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
    let file_len = std::fs::metadata(&path).unwrap().len();

    // Warm a shared cache over the whole file, as serving workers would.
    let cache = Arc::new(BlockCache::new(1 << 16, 4));
    let mk_dev = || SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
    let mut dev = CachedDevice::new(mk_dev(), Arc::clone(&cache), BLOCK_SIZE as u32);
    warm_cache(&mut dev, file_len);
    assert!(!cache.is_empty());

    let newpoint: Vec<f32> = (0..6).map(|i| 0.123 * (i as f32 + seed as f32)).collect();
    let mut up = Updater::open(&path).unwrap();
    let mut expect_n = up.len();
    for fail_at in [0u64, 1, 3, 9] {
        up.fail_after_writes(Some(fail_at));
        let err = up.insert(&newpoint).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Other, "{err}");
        up.fail_after_writes(None);
        // The trace records every touched cacheable block, failed write
        // included. fail_at 0 kills the first write of the insert: when
        // a fresh block is needed that is the (untracked) superblock
        // allocation flush and the trace is empty, but a squeeze-only
        // insert skips that flush and its first write is already a
        // tracked block write. Later faults always leave a trace.
        let trace = up.take_trace();
        assert!(
            fail_at == 0 || !trace.blocks.is_empty(),
            "fail_at {fail_at}: unexpected trace {:?}",
            trace.blocks
        );
        // Mirror ShardUpdater: invalidate the rewritten blocks even on
        // failure. Afterwards the cache must hold nothing for them —
        // neither pre-write nor partial post-write bytes.
        for &addr in &trace.blocks {
            cache.invalidate(addr / BLOCK_SIZE as u64);
            assert!(
                cache.get(addr / BLOCK_SIZE as u64).is_none(),
                "fail_at {fail_at}: cache still serves block {addr}"
            );
        }
        // A re-read through the cached device returns the current file
        // bytes (whatever the failed write left behind), not stale ones.
        for &addr in &trace.blocks {
            let fresh = dev.read_sync(addr, BLOCK_SIZE as u32);
            let mut out = Vec::new();
            dev.submit(
                IoRequest {
                    addr,
                    len: BLOCK_SIZE as u32,
                    tag: u64::MAX - addr,
                },
                1e9,
            );
            let t = dev.next_completion_time().unwrap();
            dev.poll(t.max(1e9), &mut out);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].data, fresh, "fail_at {fail_at}: stale bytes served");
        }
        // A failed insert burns its id — uniformly, whichever write
        // failed: entries for it may half-exist in some tables, so
        // recycling the id would corrupt a later insert's results, and
        // callers that mirror coordinates (the serving layer) rely on
        // the id being consumed in every error path.
        expect_n += 1;
        assert_eq!(up.len(), expect_n, "failed insert must burn its id");
    }
    drop(up);

    // The shard stays queryable: reopen and self-query pre-existing
    // objects. Half-linked entries for the failed id decode but are
    // skipped (no coordinates), never panic.
    let mut qdev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
    let index = StorageIndex::open(&mut qdev).unwrap();
    // The burn is flushed best-effort: with the fault still armed the
    // final superblock write of an iteration can fail too, in which
    // case the next operation's reservation write publishes it. The
    // last burn may therefore be in-memory only — the on-disk count
    // lands between the build-time n and the in-process one.
    assert!(
        (300..=expect_n).contains(&index.len()),
        "reopened n {} outside [300, {expect_n}]",
        index.len()
    );
    // The engine serves a dataset of 300 coordinate rows against an
    // index whose id space includes the burned ids: entries for them
    // decode but are skipped (no coordinates), never panic.
    let mut queries = Dataset::with_capacity(6, 10);
    for i in (0..300).step_by(30) {
        queries.push(ds.point(i));
    }
    let mut cfg =
        e2lsh_storage::query::EngineConfig::simulated(e2lsh_storage::device::Interface::SPDK, 1);
    cfg.s_override = Some(1_000_000);
    let report = e2lsh_storage::query::run_queries(&index, &ds, &queries, &cfg, &mut qdev);
    let found = report
        .outcomes
        .iter()
        .filter(|o| o.neighbors.first().map(|&(_, d)| d == 0.0).unwrap_or(false))
        .count();
    assert!(
        found >= 8,
        "only {found}/10 self-queries found after failed inserts"
    );
    std::fs::remove_file(&path).ok();
}

/// Device errors injected mid-`Updater::delete`: the delete fails
/// part-way (the victim may keep entries in some tables), but the
/// shard stays queryable and the trace covers the rewritten blocks.
#[test]
fn failed_delete_keeps_shard_queryable() {
    let seed = test_seed();
    let ds = dataset_seeded(250, seed);
    let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
    let path = temp_path("failed_delete.idx");
    build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();

    let victim = 77u32;
    let mut up = Updater::open(&path).unwrap();
    up.fail_after_writes(Some(0));
    let err = up.delete(ds.point(victim as usize), victim).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::Other, "{err}");
    up.fail_after_writes(None);
    let trace = up.take_trace();
    assert!(!trace.blocks.is_empty(), "failed delete left no trace");
    // Retrying the delete completes the removal.
    let removed = up.delete(ds.point(victim as usize), victim).unwrap();
    assert!(removed > 0, "retry must remove the remaining entries");
    drop(up);

    let mut qdev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
    let index = StorageIndex::open(&mut qdev).unwrap();
    let queries = Dataset::from_rows(&[ds.point(victim as usize).to_vec()]);
    let mut cfg =
        e2lsh_storage::query::EngineConfig::simulated(e2lsh_storage::device::Interface::SPDK, 1);
    cfg.s_override = Some(1_000_000);
    let report = e2lsh_storage::query::run_queries(&index, &ds, &queries, &cfg, &mut qdev);
    if let Some(&(id, _)) = report.outcomes[0].neighbors.first() {
        assert_ne!(id, victim, "victim still served after completed delete");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_index_serves_zero_filled_blocks_without_panicking() {
    // A partially-written heap must not crash the engine: reads past EOF
    // come back zero-filled and decode as empty blocks (count = 0).
    let ds = dataset(500);
    let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
    let path = temp_path("truncated.idx");
    build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
    let mut image = std::fs::read(&path).unwrap();
    image.truncate(image.len() - image.len() / 3); // chop the heap tail
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image));
    let index = StorageIndex::open(&mut dev).unwrap();
    let queries = dataset(5);
    let cfg =
        e2lsh_storage::query::EngineConfig::simulated(e2lsh_storage::device::Interface::SPDK, 1);
    // Must not panic; results may be degraded (some buckets unreadable).
    let _ = e2lsh_storage::query::run_queries(&index, &ds, &queries, &cfg, &mut dev);
}
