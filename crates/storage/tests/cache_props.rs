//! Property tests for the DRAM block cache: the sharded LRU must agree
//! with a naive reference model, never exceed its capacity, keep its
//! counters consistent, and — wrapped as a [`CachedDevice`] — never
//! change the bytes a read returns.

use e2lsh_storage::device::cached::{BlockCache, CachedDevice};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, IoRequest};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Naive LRU: a deque with MRU at the front.
struct ModelLru {
    order: VecDeque<u64>,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelLru {
    fn new(cap: usize) -> Self {
        Self {
            order: VecDeque::new(),
            cap,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: u64) -> bool {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_front(key);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        } else if self.order.len() >= self.cap {
            self.order.pop_back();
            self.evictions += 1;
        }
        self.order.push_front(key);
    }
}

proptest! {
    /// A single-shard BlockCache is observationally equal to the naive
    /// model: same hit/miss verdict per op, same counters, same bound.
    #[test]
    fn single_shard_lru_matches_reference_model(
        ops in proptest::collection::vec((0u8..2, 0u64..24), 1..300),
        cap in 1usize..12,
    ) {
        let cache = BlockCache::new(cap, 1);
        let mut model = ModelLru::new(cap);
        for &(op, key) in &ops {
            if op == 0 {
                let got = cache.get(key).is_some();
                let want = model.get(key);
                prop_assert_eq!(got, want, "get({}) diverged", key);
            } else {
                cache.insert(key, Arc::from(key.to_le_bytes().as_slice()));
                model.insert(key);
            }
            prop_assert!(cache.len() <= cache.capacity());
            prop_assert_eq!(cache.len(), model.order.len());
        }
        prop_assert_eq!(cache.hits(), model.hits);
        prop_assert_eq!(cache.misses(), model.misses);
        prop_assert_eq!(cache.evictions(), model.evictions);
    }

    /// Capacity and counter invariants hold for any shard count.
    #[test]
    fn sharded_cache_capacity_and_counters(
        keys in proptest::collection::vec(0u64..512, 1..400),
        cap in 1usize..48,
        shards in 1usize..8,
    ) {
        let cache = BlockCache::new(cap, shards);
        let mut lookups = 0u64;
        for &k in &keys {
            let hit = cache.get(k).is_some();
            lookups += 1;
            if !hit {
                cache.insert(k, Arc::from(k.to_le_bytes().as_slice()));
            }
            prop_assert!(
                cache.len() <= cache.capacity(),
                "{} blocks in a {}-block cache",
                cache.len(),
                cache.capacity()
            );
        }
        prop_assert_eq!(cache.hits() + cache.misses(), lookups);
        // Every cached or evicted block came from a miss-triggered insert.
        prop_assert_eq!(cache.misses(), cache.len() as u64 + cache.evictions());
        // A hit must return the bytes that were inserted for that key.
        for &k in &keys {
            if let Some(data) = cache.get(k) {
                prop_assert_eq!(&data[..], &k.to_le_bytes()[..]);
            }
        }
    }

    /// Reads through a CachedDevice return exactly the backing bytes, no
    /// matter the (tiny, thrashing or ample) cache capacity.
    #[test]
    fn cached_device_reads_match_backing(
        blocks in proptest::collection::vec(0u64..16, 1..120),
        cap in 1usize..32,
    ) {
        let mut image = vec![0u8; 16 * 512];
        for (i, b) in image.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image.clone()));
        let mut dev = CachedDevice::new(sim, Arc::new(BlockCache::new(cap, 2)), 512);
        let mut now = 0.0f64;
        for (tag, &blk) in blocks.iter().enumerate() {
            let addr = blk * 512;
            dev.submit(IoRequest { addr, len: 512, tag: tag as u64 }, now);
            now = dev.next_completion_time().unwrap().max(now);
            let mut out = Vec::new();
            dev.poll(now, &mut out);
            prop_assert_eq!(out.len(), 1);
            prop_assert_eq!(out[0].tag, tag as u64);
            prop_assert_eq!(
                &out[0].data[..],
                &image[addr as usize..addr as usize + 512]
            );
        }
        let s = dev.stats();
        prop_assert_eq!(s.cache_hits + s.cache_misses, blocks.len() as u64);
        prop_assert_eq!(s.completed, s.cache_misses);
    }
}
