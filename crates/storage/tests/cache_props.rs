//! Property tests for the DRAM block cache: the sharded LRU must agree
//! with a naive reference model, never exceed its capacity, keep its
//! counters consistent, and — wrapped as a [`CachedDevice`] — never
//! change the bytes a read returns.
//!
//! The per-key invalidation-epoch protocol is model-checked too: under
//! any interleaving of fills, invalidations and whole-cache flushes,
//! a fill that raced an invalidation of *its own* key is discarded
//! (stale bytes never resurrect) while fills for other keys are never
//! stale-gated — the regression the old cache-global generation would
//! fail.
//!
//! The W-TinyLFU policy gets the same treatment: the count-min sketch
//! must never under-estimate (below its saturation point) and halving
//! must actually halve; a single-shard TinyLFU cache must agree
//! move-for-move with a naive window/probation/protected reference
//! model driven by an identically-seeded sketch; and single-flight
//! coalescing must collapse any multiset of concurrent misses into
//! exactly one device read per distinct block.

use e2lsh_storage::device::cached::{
    BlockCache, CachePolicy, CachedDevice, CmSketch, FillEpoch, TinyLfuConfig,
};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, IoRequest};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Naive LRU: a deque with MRU at the front.
struct ModelLru {
    order: VecDeque<u64>,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelLru {
    fn new(cap: usize) -> Self {
        Self {
            order: VecDeque::new(),
            cap,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: u64) -> bool {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_front(key);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        } else if self.order.len() >= self.cap {
            self.order.pop_back();
            self.evictions += 1;
        }
        self.order.push_front(key);
    }
}

/// Naive single-region W-TinyLFU: three deques (MRU at the front) with
/// the same budget formulas as `Region::tiny_lfu`, driven by its own
/// `CmSketch` fed the identical access sequence as the cache under
/// test. No intrusive lists, no slab — just the policy.
struct ModelTinyLfu {
    window: VecDeque<u64>,
    probation: VecDeque<u64>,
    protected: VecDeque<u64>,
    window_cap: usize,
    main_cap: usize,
    protected_cap: usize,
    sketch: CmSketch,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

impl ModelTinyLfu {
    fn new(cap: usize) -> Self {
        let cfg = TinyLfuConfig::default();
        let window = (((cap as f64) * cfg.window_fraction).round() as usize).clamp(1, cap);
        let main = cap - window;
        let protected = ((main as f64) * cfg.protected_fraction).floor() as usize;
        Self {
            window: VecDeque::new(),
            probation: VecDeque::new(),
            protected: VecDeque::new(),
            window_cap: window,
            main_cap: main,
            protected_cap: protected,
            sketch: CmSketch::new(cap),
            hits: 0,
            misses: 0,
            evictions: 0,
            rejected: 0,
        }
    }

    fn len(&self) -> usize {
        self.window.len() + self.probation.len() + self.protected.len()
    }

    fn contains(&self, key: u64) -> bool {
        self.window.contains(&key) || self.probation.contains(&key) || self.protected.contains(&key)
    }

    /// A hit's segment transition (mirrors `CacheShard::promote`).
    fn promote(&mut self, key: u64) {
        if let Some(pos) = self.window.iter().position(|&k| k == key) {
            self.window.remove(pos);
            self.window.push_front(key);
        } else if let Some(pos) = self.protected.iter().position(|&k| k == key) {
            self.protected.remove(pos);
            self.protected.push_front(key);
        } else if let Some(pos) = self.probation.iter().position(|&k| k == key) {
            self.probation.remove(pos);
            self.protected.push_front(key);
            while self.protected.len() > self.protected_cap {
                let demote = self.protected.pop_back().unwrap();
                self.probation.push_front(demote);
            }
        }
    }

    fn get(&mut self, key: u64) -> bool {
        self.sketch.increment(key);
        if self.contains(key) {
            self.promote(key);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn insert(&mut self, key: u64) {
        if self.contains(key) {
            self.promote(key);
            return;
        }
        self.window.push_front(key);
        // The admission contest (mirrors `CacheShard::rebalance_window`).
        while self.window.len() > self.window_cap {
            let cand = self.window.pop_back().unwrap();
            if self.main_cap == 0 {
                self.evictions += 1;
                continue;
            }
            if self.probation.len() + self.protected.len() < self.main_cap {
                self.probation.push_front(cand);
                continue;
            }
            let victim = if let Some(&v) = self.probation.back() {
                v
            } else {
                *self.protected.back().unwrap()
            };
            if self.sketch.estimate(cand) > self.sketch.estimate(victim) {
                if self.probation.back() == Some(&victim) {
                    self.probation.pop_back();
                } else {
                    self.protected.pop_back();
                }
                self.evictions += 1;
                self.probation.push_front(cand);
            } else {
                self.rejected += 1;
            }
        }
    }
}

proptest! {
    /// A single-shard BlockCache is observationally equal to the naive
    /// model: same hit/miss verdict per op, same counters, same bound.
    #[test]
    fn single_shard_lru_matches_reference_model(
        ops in proptest::collection::vec((0u8..2, 0u64..24), 1..300),
        cap in 1usize..12,
    ) {
        let cache = BlockCache::new(cap, 1);
        let mut model = ModelLru::new(cap);
        for &(op, key) in &ops {
            if op == 0 {
                let got = cache.get(key).is_some();
                let want = model.get(key);
                prop_assert_eq!(got, want, "get({}) diverged", key);
            } else {
                cache.insert(key, Arc::from(key.to_le_bytes().as_slice()));
                model.insert(key);
            }
            prop_assert!(cache.len() <= cache.capacity());
            prop_assert_eq!(cache.len(), model.order.len());
        }
        prop_assert_eq!(cache.hits(), model.hits);
        prop_assert_eq!(cache.misses(), model.misses);
        prop_assert_eq!(cache.evictions(), model.evictions);
    }

    /// Capacity and counter invariants hold for any shard count.
    #[test]
    fn sharded_cache_capacity_and_counters(
        keys in proptest::collection::vec(0u64..512, 1..400),
        cap in 1usize..48,
        shards in 1usize..8,
    ) {
        let cache = BlockCache::new(cap, shards);
        let mut lookups = 0u64;
        for &k in &keys {
            let hit = cache.get(k).is_some();
            lookups += 1;
            if !hit {
                cache.insert(k, Arc::from(k.to_le_bytes().as_slice()));
            }
            prop_assert!(
                cache.len() <= cache.capacity(),
                "{} blocks in a {}-block cache",
                cache.len(),
                cache.capacity()
            );
        }
        prop_assert_eq!(cache.hits() + cache.misses(), lookups);
        // Every cached or evicted block came from a miss-triggered insert.
        prop_assert_eq!(cache.misses(), cache.len() as u64 + cache.evictions());
        // A hit must return the bytes that were inserted for that key.
        for &k in &keys {
            if let Some(data) = cache.get(k) {
                prop_assert_eq!(&data[..], &k.to_le_bytes()[..]);
            }
        }
    }

    /// Model check of the per-key epoch protocol. Keys carry a version
    /// that bumps on every invalidation (modelling the storage rewrite
    /// that motivated it); fills snapshot `(epoch, version)` at begin
    /// and try to insert their begin-time bytes at completion. The
    /// cache must accept a fill iff its key saw no invalidation (and
    /// the cache no flush) in between — and a lookup must never return
    /// bytes older than the key's current version.
    #[test]
    fn per_key_epochs_never_resurrect_stale_bytes(
        ops in proptest::collection::vec((0u8..5, 0u64..8), 1..400),
    ) {
        const KEYS: usize = 8;
        let bytes = |key: u64, version: u64| -> Arc<[u8]> {
            let mut b = key.to_le_bytes().to_vec();
            b.extend_from_slice(&version.to_le_bytes());
            Arc::from(b.as_slice())
        };
        // Ample capacity: evictions would only weaken the must-serve
        // side of the check, never the staleness side.
        let cache = BlockCache::new(64, 2);
        let mut version = [0u64; KEYS];
        let mut inv_count = [0u64; KEYS];
        let mut flushes = 0u64;
        // (key, epoch, version at begin, inv_count at begin, flushes at begin)
        let mut pending: VecDeque<(u64, FillEpoch, u64, u64, u64)> = VecDeque::new();
        for &(op, key) in &ops {
            let k = key as usize;
            match op {
                // Begin a miss fill: snapshot the epoch and the bytes
                // the device would return right now.
                0 => pending.push_back((
                    key,
                    cache.fill_epoch(key),
                    version[k],
                    inv_count[k],
                    flushes,
                )),
                // Complete the oldest pending fill.
                1 => {
                    if let Some((key, epoch, v, inv0, fl0)) = pending.pop_front() {
                        let accepted = cache.insert_if_fresh(key, bytes(key, v), epoch);
                        let fresh =
                            inv_count[key as usize] == inv0 && flushes == fl0;
                        prop_assert_eq!(
                            accepted, fresh,
                            "fill for key {} (v{}): accepted {} but model says fresh {}",
                            key, v, accepted, fresh
                        );
                    }
                }
                // Synchronous insert of current bytes.
                2 => cache.insert(key, bytes(key, version[k])),
                // Invalidate = storage rewrite of this key.
                3 => {
                    version[k] += 1;
                    inv_count[k] += 1;
                    cache.invalidate(key);
                }
                // Whole-cache flush (no storage rewrite).
                _ => {
                    flushes += 1;
                    cache.invalidate_all();
                }
            }
            // A lookup must never see pre-invalidation bytes.
            for key in 0..KEYS as u64 {
                if let Some(d) = cache.get(key) {
                    let got = u64::from_le_bytes(d[8..16].try_into().unwrap());
                    prop_assert_eq!(
                        got, version[key as usize],
                        "key {} served version {} but storage is at {}",
                        key, got, version[key as usize]
                    );
                }
            }
        }
    }

    /// Invalidating key A must neither evict nor stale-gate an
    /// in-flight fill for key B — under any amount of churn on A, and
    /// with a single lock shard so A and B always share a mutex (the
    /// cache-global generation of PR 1 fails this for every A ≠ B).
    #[test]
    fn invalidating_a_never_gates_in_flight_fill_for_b(
        a_churn in 1usize..20,
        a in 0u64..16,
        b in 16u64..32,
        flush_before_begin in 0u8..2,
    ) {
        let cache = BlockCache::new(8, 1);
        if flush_before_begin == 1 {
            cache.invalidate_all();
        }
        cache.invalidate(a); // pre-churn: per-key epochs already diverge
        let epoch_b = cache.fill_epoch(b);
        for _ in 0..a_churn {
            cache.invalidate(a);
            cache.insert(a, Arc::from(a.to_le_bytes().as_slice()));
        }
        prop_assert!(
            cache.insert_if_fresh(b, Arc::from(b.to_le_bytes().as_slice()), epoch_b),
            "fill for B stale-gated by churn on A"
        );
        let served = cache.get(b).expect("B must be cached after its fill");
        prop_assert_eq!(&served[..], &b.to_le_bytes()[..]);
    }

    /// Reads through a CachedDevice return exactly the backing bytes, no
    /// matter the (tiny, thrashing or ample) cache capacity.
    #[test]
    fn cached_device_reads_match_backing(
        blocks in proptest::collection::vec(0u64..16, 1..120),
        cap in 1usize..32,
    ) {
        let mut image = vec![0u8; 16 * 512];
        for (i, b) in image.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image.clone()));
        let mut dev = CachedDevice::new(sim, Arc::new(BlockCache::new(cap, 2)), 512);
        let mut now = 0.0f64;
        for (tag, &blk) in blocks.iter().enumerate() {
            let addr = blk * 512;
            dev.submit(IoRequest { addr, len: 512, tag: tag as u64 }, now);
            now = dev.next_completion_time().unwrap().max(now);
            let mut out = Vec::new();
            dev.poll(now, &mut out);
            prop_assert_eq!(out.len(), 1);
            prop_assert_eq!(out[0].tag, tag as u64);
            prop_assert_eq!(
                &out[0].data[..],
                &image[addr as usize..addr as usize + 512]
            );
        }
        let s = dev.stats();
        prop_assert_eq!(s.cache_hits + s.cache_misses, blocks.len() as u64);
        prop_assert_eq!(s.completed, s.cache_misses);
    }

    /// Below its saturation point the count-min sketch never
    /// under-estimates: a key incremented `c` times estimates at least
    /// `min(c, 16)` (15 from the 4-bit counters + 1 doorkeeper bonus).
    /// Bounded at fewer additions than the sample period so no halving
    /// pass fires mid-count.
    #[test]
    fn cm_sketch_never_underestimates(
        keys in proptest::collection::vec(0u64..64, 1..600),
    ) {
        // `new(1)` → 64 counters → sample period 640 > 599 additions.
        let mut sketch = CmSketch::new(1);
        let mut truth = std::collections::HashMap::new();
        for &k in &keys {
            sketch.increment(k);
            *truth.entry(k).or_insert(0u32) += 1;
        }
        prop_assert_eq!(sketch.additions(), keys.len() as u64);
        for (&k, &count) in &truth {
            let est = sketch.estimate(k);
            prop_assert!(
                est >= count.min(16),
                "key {} incremented {} times but estimates {}",
                k, count, est
            );
        }
    }

    /// The aging step actually ages: after `halve()` every estimate is
    /// at most half its pre-halving value (integer division), the
    /// doorkeeper bonus is gone, and the additions counter is halved.
    #[test]
    fn cm_sketch_halving_bounds_estimates(
        keys in proptest::collection::vec(0u64..64, 1..600),
        halvings in 1usize..4,
    ) {
        let mut sketch = CmSketch::new(1);
        for &k in &keys {
            sketch.increment(k);
        }
        for _ in 0..halvings {
            let before: Vec<(u64, u32)> = (0..64).map(|k| (k, sketch.estimate(k))).collect();
            let additions_before = sketch.additions();
            sketch.halve();
            prop_assert_eq!(sketch.additions(), additions_before / 2);
            for (k, est_before) in before {
                let est_after = sketch.estimate(k);
                prop_assert!(
                    est_after <= est_before / 2,
                    "key {}: estimate {} -> {} after halving (bound {})",
                    k, est_before, est_after, est_before / 2
                );
            }
        }
    }

    /// A single-shard TinyLFU cache (no region split) is observationally
    /// equal to the naive window/probation/protected model: same
    /// hit/miss verdict per get, same membership, same counters.
    #[test]
    fn tiny_lfu_single_shard_matches_reference_model(
        ops in proptest::collection::vec((0u8..2, 0u64..24), 1..300),
        cap in 1usize..12,
    ) {
        let policy = CachePolicy::TinyLfu(TinyLfuConfig::default());
        let cache = BlockCache::with_policy(cap, 1, policy);
        let mut model = ModelTinyLfu::new(cap);
        for &(op, key) in &ops {
            if op == 0 {
                let got = cache.get(key).is_some();
                let want = model.get(key);
                prop_assert_eq!(got, want, "get({}) diverged", key);
            } else {
                cache.insert(key, Arc::from(key.to_le_bytes().as_slice()));
                model.insert(key);
            }
            prop_assert!(cache.len() <= cache.capacity());
            prop_assert_eq!(cache.len(), model.len());
            // Membership agrees exactly (peek touches no state).
            for k in 0u64..24 {
                prop_assert_eq!(
                    cache.peek(k).is_some(),
                    model.contains(k),
                    "membership of {} diverged", k
                );
            }
        }
        prop_assert_eq!(cache.hits(), model.hits);
        prop_assert_eq!(cache.misses(), model.misses);
        prop_assert_eq!(cache.evictions(), model.evictions);
        prop_assert_eq!(cache.admission_rejected(), model.rejected);
    }

    /// Single-flight invariant: any multiset of reads submitted while
    /// their fills are in flight costs exactly one device read per
    /// distinct block — the rest coalesce onto the leader — and every
    /// completion still carries the right bytes for its tag.
    #[test]
    fn concurrent_misses_coalesce_to_one_read_per_block(
        blocks in proptest::collection::vec(0u64..16, 1..80),
        cap in 16usize..32,
    ) {
        let mut image = vec![0u8; 16 * 512];
        for (i, b) in image.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image.clone()));
        let cache = Arc::new(BlockCache::new(cap, 2));
        let mut dev = CachedDevice::new(sim, Arc::clone(&cache), 512);
        dev.set_coalescing(true);
        // Submit the whole multiset before polling anything: the first
        // read of each distinct block leads, every repeat must join it.
        for (tag, &blk) in blocks.iter().enumerate() {
            dev.submit(IoRequest { addr: blk * 512, len: 512, tag: tag as u64 }, 0.0);
        }
        let distinct: std::collections::HashSet<u64> = blocks.iter().copied().collect();
        let mut out = Vec::new();
        while out.len() < blocks.len() {
            let t = dev.next_completion_time().expect("completions pending");
            dev.poll(t, &mut out);
        }
        prop_assert_eq!(out.len(), blocks.len());
        let mut tags_seen = std::collections::HashSet::new();
        for c in &out {
            let blk = blocks[c.tag as usize];
            let addr = (blk * 512) as usize;
            prop_assert_eq!(&c.data[..], &image[addr..addr + 512], "bytes for tag {}", c.tag);
            tags_seen.insert(c.tag);
        }
        prop_assert_eq!(tags_seen.len(), blocks.len(), "every tag completes exactly once");
        let s = dev.stats();
        prop_assert_eq!(s.completed, distinct.len() as u64, "one device read per block");
        prop_assert_eq!(s.coalesced_reads, (blocks.len() - distinct.len()) as u64);
        prop_assert_eq!(cache.coalesced(), s.coalesced_reads);
        prop_assert_eq!(s.cache_misses, blocks.len() as u64);
        prop_assert_eq!(s.cache_hits, 0);
    }
}
