//! Churn suite: sustained delete/reinsert cycles against one shard's
//! index file, with background maintenance running — the space side of
//! the paper's Section 7 online-update story.
//!
//! What is checked (seeded; `E2LSH_TEST_SEED=…` reproduces a CI
//! failure locally):
//!
//! 1. **oracle equivalence** — after many delete/reinsert cycles with
//!    interleaved `maintain` ticks, every surviving object self-queries
//!    at distance 0 (modulo LSH recall) and no deleted id is ever
//!    served again; deletes find their victim in every chain
//!    (`chain_inconsistencies == 0` throughout);
//! 2. **space plateau** — with the live set held constant, `total_bytes`
//!    stops growing once freed blocks start being reused: second-half
//!    growth collapses and the final heap stays within 2× the build
//!    footprint (the bound the `serve_churn` bench enforces end to
//!    end);
//! 3. **filter-bit GC** — deleting half the objects and running a full
//!    maintenance pass clears occupancy-filter bits on storage, so a
//!    reopened index probes measurably fewer buckets
//!    (`occupancy_rate` drops) while survivors stay findable;
//! 4. **no torn blocks** — reader threads walk bucket chains through
//!    their own file handles while the writer churns and compacts;
//!    every block decodes (count within bounds) and every chain
//!    pointer stays block-aligned inside the heap.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;
use e2lsh_storage::build::{build_index, BuildConfig};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::Interface;
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::layout::{BucketBlock, BLOCK_SIZE, ENTRIES_PER_BLOCK};
use e2lsh_storage::query::{run_queries, EngineConfig};
use e2lsh_storage::testutil::temp_path;
use e2lsh_storage::update::Updater;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const DIM: usize = 6;

fn test_seed() -> u64 {
    std::env::var("E2LSH_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

fn random_point(rng: &mut ChaCha8Rng) -> Vec<f32> {
    (0..DIM).map(|_| rng.gen::<f32>() * 10.0).collect()
}

/// `k` ids drawn without replacement (partial Fisher–Yates; the
/// workspace `rand` build has no `seq` module).
fn sample_ids(ids: &[u32], k: usize, rng: &mut ChaCha8Rng) -> Vec<u32> {
    let mut pool = ids.to_vec();
    let k = k.min(pool.len());
    for i in 0..k {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

fn dataset(n: usize, rng: &mut ChaCha8Rng) -> Dataset {
    let mut ds = Dataset::with_capacity(DIM, n);
    for _ in 0..n {
        ds.push(&random_point(rng));
    }
    ds
}

fn params_for(ds: &Dataset) -> E2lshParams {
    E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), DIM)
}

/// Self-query `queries` against the index at `path`, using `data` as
/// the id→coordinates mirror (deleted rows included, like the serving
/// layer keeps them).
fn nn_of(data: &Dataset, queries: &Dataset, path: &Path) -> Vec<Vec<(u32, f32)>> {
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let mut cfg = EngineConfig::simulated(Interface::SPDK, 1);
    cfg.s_override = Some(1_000_000);
    run_queries(&index, data, queries, &cfg, &mut dev)
        .outcomes
        .into_iter()
        .map(|o| o.neighbors)
        .collect()
}

/// Run `cycles` delete/reinsert rounds of `batch` objects each against
/// a freshly built index, with one budgeted maintenance tick per
/// round. Returns `(path, all_rows, live_ids, deleted_ids,
/// total_bytes_per_cycle)`; the caller removes the file.
fn churn_harness(
    seed: u64,
    n0: usize,
    cycles: usize,
    batch: usize,
    maint_budget: usize,
) -> (std::path::PathBuf, Dataset, Vec<u32>, Vec<u32>, Vec<u64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data = dataset(n0, &mut rng);
    let params = params_for(&data);
    let path = temp_path(&format!("churn-{seed}-{n0}-{cycles}.idx"));
    let cfg = BuildConfig {
        capacity: Some(n0 + cycles * batch),
        ..Default::default()
    };
    build_index(&data, &params, &cfg, &path).unwrap();

    // `all` mirrors every id ever assigned (the serving layer keeps
    // deleted rows too); `live` is the oracle's view of what must be
    // findable.
    let mut all = data.clone();
    let mut live: Vec<u32> = (0..n0 as u32).collect();
    let mut deleted: Vec<u32> = Vec::new();
    let mut tb_per_cycle = Vec::with_capacity(cycles);

    let mut up = Updater::open(&path).unwrap();
    for _ in 0..cycles {
        for _ in 0..batch.min(live.len()) {
            let at = rng.gen_range(0..live.len());
            let id = live.swap_remove(at);
            let removed = up.delete(all.point(id as usize), id).unwrap();
            assert_eq!(
                removed,
                params.l * params.num_radii(),
                "delete of live id {id} missed chains (seed {seed})"
            );
            deleted.push(id);
        }
        for _ in 0..batch {
            let p = random_point(&mut rng);
            let id = up.insert(&p).unwrap();
            assert_eq!(id as usize, all.len(), "ids must stay sequential");
            all.push(&p);
            live.push(id);
        }
        up.maintain(maint_budget).unwrap();
        tb_per_cycle.push(up.total_bytes());
    }
    assert_eq!(
        up.trace().chain_inconsistencies,
        0,
        "churn of live ids must never miss a chain (seed {seed})"
    );
    drop(up);
    (path, all, live, deleted, tb_per_cycle)
}

/// 1. Oracle equivalence after churn: survivors findable, deleted ids
///    never served.
#[test]
fn delete_reinsert_cycles_match_oracle() {
    let seed = test_seed();
    let (path, all, live, deleted, _) = churn_harness(seed, 300, 10, 25, 128);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE);
    let sample = sample_ids(&live, 30, &mut rng);
    let mut queries = Dataset::with_capacity(DIM, sample.len());
    for &id in &sample {
        queries.push(all.point(id as usize));
    }
    let res = nn_of(&all, &queries, &path);
    let found = res
        .iter()
        .zip(&sample)
        .filter(|(r, &id)| r.first().is_some_and(|&(got, d)| got == id && d == 0.0))
        .count();
    assert!(
        found * 10 >= sample.len() * 9,
        "only {found}/{} survivors self-found after churn (seed {seed})",
        sample.len()
    );

    // Deleted ids must never be served — their entries are gone from
    // every chain, so even their own coordinates resolve elsewhere.
    let dead_sample = sample_ids(&deleted, 30, &mut rng);
    let mut dead_queries = Dataset::with_capacity(DIM, dead_sample.len());
    for &id in &dead_sample {
        dead_queries.push(all.point(id as usize));
    }
    for (r, &id) in nn_of(&all, &dead_queries, &path).iter().zip(&dead_sample) {
        if let Some(&(got, _)) = r.first() {
            assert_ne!(got, id, "deleted id {id} served after churn (seed {seed})");
        }
    }
    std::fs::remove_file(&path).ok();
}

/// 2. Space plateau: with the live set constant, reclamation caps heap
///    growth — the second half of the run grows far less than the
///    first, and the end state stays within 2× the build footprint.
#[test]
fn total_bytes_plateaus_under_constant_live_set() {
    let seed = test_seed();
    let (path, _, live, _, tb) = churn_harness(seed, 300, 12, 25, 256);
    assert_eq!(live.len(), 300, "live set must be back to n0 each cycle");

    let tb_start = {
        // Build footprint = the bytes a no-churn index of the same
        // live-set size occupies; cycle 0's pre-churn baseline.
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let heap = index.geometry().heap_base();
        // Heap growth is what churn can inflate; fixed regions are
        // identical for any index of this geometry.
        assert!(tb[0] > heap, "heap empty after first cycle?");
        heap
    };
    let mid = tb.len() / 2;
    let first_half = tb[mid - 1].saturating_sub(tb[0]);
    let second_half = tb[tb.len() - 1].saturating_sub(tb[mid - 1]);
    assert!(
        second_half <= first_half / 2 + 8 * BLOCK_SIZE as u64,
        "no plateau: first-half growth {first_half}, second-half {second_half} (seed {seed})"
    );
    // The acceptance bound the serve_churn bench also enforces: the
    // churned heap stays within 2× of the live set's initial heap.
    let heap0 = tb[0] - tb_start;
    let heap_end = tb[tb.len() - 1] - tb_start;
    assert!(
        heap_end <= 2 * heap0,
        "churned heap {heap_end} exceeds 2× initial heap {heap0} (seed {seed})"
    );
    std::fs::remove_file(&path).ok();
}

/// 3. Filter-bit GC: after mass deletion and one full maintenance
///    pass, the on-storage occupancy filters shrink (a reopened index
///    reports lower occupancy) while survivors stay findable.
#[test]
fn filter_occupancy_decays_after_gc() {
    let seed = test_seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF117E5);
    let data = dataset(300, &mut rng);
    let params = params_for(&data);
    let path = temp_path(&format!("churn-gc-{seed}.idx"));
    build_index(&data, &params, &BuildConfig::default(), &path).unwrap();

    let occ_before = {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
        StorageIndex::open(&mut dev).unwrap().occupancy_rate()
    };

    let mut up = Updater::open(&path).unwrap();
    for id in 0..300u32 {
        if id % 2 == 0 {
            up.delete(data.point(id as usize), id).unwrap();
        }
    }
    let rep = up.maintain(usize::MAX).unwrap();
    assert!(rep.completed_pass, "unbounded tick must finish the pass");
    assert!(
        rep.filter_bits_cleared > 0,
        "half the objects gone, yet no filter bit cleared (seed {seed})"
    );
    drop(up);

    // The clears were persisted: a fresh open (which rebuilds the DRAM
    // occupancy from storage) sees the smaller filters.
    let occ_after = {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
        StorageIndex::open(&mut dev).unwrap().occupancy_rate()
    };
    assert!(
        occ_after < occ_before,
        "occupancy {occ_before} -> {occ_after} did not decay (seed {seed})"
    );

    // Survivors still findable through the GC'd filters.
    let sample: Vec<u32> = (1..300).step_by(30).map(|i| i as u32).collect();
    let mut queries = Dataset::with_capacity(DIM, sample.len());
    for &id in &sample {
        queries.push(data.point(id as usize));
    }
    let res = nn_of(&data, &queries, &path);
    let found = res
        .iter()
        .zip(&sample)
        .filter(|(r, &id)| r.first().is_some_and(|&(got, d)| got == id && d == 0.0))
        .count();
    assert!(
        found * 10 >= sample.len() * 9,
        "only {found}/{} survivors found after GC (seed {seed})",
        sample.len()
    );
    std::fs::remove_file(&path).ok();
}

/// 4. No torn blocks: concurrent chain walks through independent file
///    handles stay structurally valid while the writer deletes,
///    reinserts, compacts and reuses blocks. A transiently odd read is
///    re-checked once (page-cache writes are not byte-atomic under
///    `pread`); only a *stable* violation is a failure.
#[test]
fn concurrent_chain_walks_see_no_torn_blocks() {
    let seed = test_seed();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7042);
    let data = dataset(400, &mut rng);
    let params = params_for(&data);
    let path = temp_path(&format!("churn-torn-{seed}.idx"));
    let cfg = BuildConfig {
        capacity: Some(2000),
        ..Default::default()
    };
    build_index(&data, &params, &cfg, &path).unwrap();

    let (geometry, codec) = {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        (index.geometry(), index.codec())
    };
    let stop = AtomicBool::new(false);
    let walks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for t in 0..2u64 {
            let path = path.clone();
            let stop = &stop;
            let walks = &walks;
            readers.push(scope.spawn(move || {
                use std::os::unix::fs::FileExt;
                let file = std::fs::File::open(&path).unwrap();
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0xBEEF + t));
                let heap = geometry.heap_base();
                let read_block = |addr: u64| {
                    let mut buf = vec![0u8; BLOCK_SIZE];
                    file.read_exact_at(&mut buf, addr).unwrap();
                    buf
                };
                while !stop.load(Ordering::Relaxed) {
                    let ri = rng.gen_range(0..geometry.num_radii);
                    let li = rng.gen_range(0..geometry.l);
                    let slot = rng.gen_range(0..geometry.slots());
                    let mut head = [0u8; 8];
                    file.read_exact_at(&mut head, geometry.slot_addr(ri, li, slot))
                        .unwrap();
                    let mut addr = u64::from_le_bytes(head);
                    // Prepend-only chains cannot cycle, but a torn
                    // pointer could; bound the walk regardless.
                    for _ in 0..256 {
                        if addr == 0 {
                            break;
                        }
                        let aligned = addr >= heap && (addr - heap) % BLOCK_SIZE as u64 == 0;
                        assert!(aligned, "chain pointer {addr:#x} off the block grid");
                        let mut block = BucketBlock::decode(&codec, &read_block(addr));
                        if block.entries.len() > ENTRIES_PER_BLOCK
                            || (block.next != 0
                                && (block.next < heap
                                    || !(block.next - heap).is_multiple_of(BLOCK_SIZE as u64)))
                        {
                            // Re-read once: a concurrent in-place
                            // rewrite can expose a transient mix.
                            std::thread::sleep(std::time::Duration::from_millis(1));
                            block = BucketBlock::decode(&codec, &read_block(addr));
                            assert!(
                                block.entries.len() <= ENTRIES_PER_BLOCK,
                                "stable overfull block at {addr:#x}"
                            );
                            assert!(
                                block.next == 0
                                    || (block.next >= heap
                                        && (block.next - heap).is_multiple_of(BLOCK_SIZE as u64)),
                                "stable torn next {:#x} at {addr:#x}",
                                block.next
                            );
                        }
                        addr = block.next;
                    }
                    walks.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }

        // The writer: delete/reinsert churn with compaction, against
        // the same file the readers walk.
        let mut up = Updater::open(&path).unwrap();
        let mut live: Vec<u32> = (0..400).collect();
        let mut all = data.clone();
        for _ in 0..8 {
            for _ in 0..30 {
                let at = rng.gen_range(0..live.len());
                let id = live.swap_remove(at);
                up.delete(all.point(id as usize), id).unwrap();
            }
            for _ in 0..30 {
                let p = random_point(&mut rng);
                let id = up.insert(&p).unwrap();
                all.push(&p);
                live.push(id);
            }
            up.maintain(256).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread saw a torn block");
        }
    });
    assert!(
        walks.load(Ordering::Relaxed) > 0,
        "readers never completed a walk"
    );
    std::fs::remove_file(&path).ok();
}
