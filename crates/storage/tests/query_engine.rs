//! End-to-end tests of the E2LSHoS index: build → open → query, against
//! simulated devices (virtual time) and a real file (wall clock), checking
//! result quality against brute force and equivalence with the in-memory
//! E2LSH index built from the same hash family.

use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist2;
use e2lsh_core::index::MemIndex;
use e2lsh_core::params::E2lshParams;
use e2lsh_core::search::{knn_search, SearchOptions};
use e2lsh_storage::build::{build_index, BuildConfig};
use e2lsh_storage::device::file::FileDevice;
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::Interface;
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::query::{run_queries, EngineConfig};
use e2lsh_storage::testutil::temp_path;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

const SEED: u64 = 4242;

fn make_dataset(n: usize, dim: usize) -> (Dataset, Dataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    // Clustered data so real near neighbors exist.
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 40.0).collect())
        .collect();
    let mut gen_points = |count: usize| {
        let mut ds = Dataset::with_capacity(dim, count);
        let mut p = vec![0.0f32; dim];
        for _ in 0..count {
            let c = &centers[rng.gen_range(0..centers.len())];
            for (v, &cv) in p.iter_mut().zip(c) {
                *v = cv + (rng.gen::<f32>() - 0.5) * 2.0;
            }
            ds.push(&p);
        }
        ds
    };
    (gen_points(n), gen_points(20))
}

struct Fixture {
    data: Dataset,
    queries: Dataset,
    params: E2lshParams,
    path: PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

fn build_fixture(n: usize, dim: usize, name: &str) -> Fixture {
    let (data, queries) = make_dataset(n, dim);
    let params = E2lshParams::derive(n, 2.0, 4.0, 1.0, data.max_abs_coord(), dim);
    let path = temp_path(name);
    let cfg = BuildConfig {
        seed: SEED,
        ..Default::default()
    };
    build_index(&data, &params, &cfg, &path).unwrap();
    Fixture {
        data,
        queries,
        params,
        path,
    }
}

fn brute_nn(data: &Dataset, q: &[f32]) -> (u32, f32) {
    let mut best = (0u32, f32::INFINITY);
    for i in 0..data.len() {
        let d = dist2(q, data.point(i));
        if d < best.1 {
            best = (i as u32, d);
        }
    }
    (best.0, best.1.sqrt())
}

#[test]
fn simulated_query_matches_brute_force_quality() {
    let fx = build_fixture(1500, 16, "sim_quality.idx");
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&fx.path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let cfg = EngineConfig::simulated(Interface::SPDK, 1);
    let report = run_queries(&index, &fx.data, &fx.queries, &cfg, &mut dev);
    assert_eq!(report.outcomes.len(), fx.queries.len());
    let mut ok = 0;
    for (qi, out) in report.outcomes.iter().enumerate() {
        let exact = brute_nn(&fx.data, fx.queries.point(qi));
        if let Some(&(_, d)) = out.neighbors.first() {
            // c²-ANNS guarantee with c = 2: within 4× exact.
            if d <= 4.0 * exact.1.max(1e-3) {
                ok += 1;
            }
        }
    }
    assert!(ok >= 18, "quality held for {ok}/20 queries");
    assert!(report.makespan > 0.0);
    assert!(report.mean_n_io() > 0.0);
}

#[test]
fn storage_results_match_inmemory_results() {
    // Build the in-memory index from the same family seed; with ample
    // budget both must return the same nearest neighbor for nearly every
    // query (the disk index can only see a candidate superset thanks to
    // u-bit slot sharing).
    let fx = build_fixture(1000, 12, "equiv.idx");
    let mut dev = SimStorage::new(DeviceProfile::XLFDD, 1, Backing::open(&fx.path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let mem = MemIndex::build(&fx.data, &fx.params, SEED);

    let mut cfg = EngineConfig::simulated(Interface::XLFDD, 1);
    cfg.s_override = Some(1_000_000);
    let report = run_queries(&index, &fx.data, &fx.queries, &cfg, &mut dev);

    let opts = SearchOptions {
        s_override: Some(1_000_000),
        ..Default::default()
    };
    let mut agree = 0;
    for qi in 0..fx.queries.len() {
        let q = fx.queries.point(qi).to_vec();
        let (mem_res, _) = knn_search(&mem, &fx.data, &q, 1, &opts);
        let disk_res = &report.outcomes[qi].neighbors;
        match (mem_res.first(), disk_res.first()) {
            (Some(&(_, md)), Some(&(_, dd))) => {
                // The disk candidate set is a superset: it can only do
                // at least as well.
                assert!(dd <= md + 1e-4, "query {qi}: disk {dd} worse than mem {md}");
                if (dd - md).abs() < 1e-4 {
                    agree += 1;
                }
            }
            (None, None) => agree += 1,
            (a, b) => panic!("query {qi}: presence mismatch {a:?} vs {b:?}"),
        }
    }
    assert!(agree >= 18, "distance agreement on {agree}/20");
}

#[test]
fn real_file_device_agrees_with_simulated_device() {
    let fx = build_fixture(800, 10, "realfile.idx");
    // Simulated run.
    let mut sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&fx.path).unwrap());
    let index = StorageIndex::open(&mut sim).unwrap();
    let sim_report = run_queries(
        &index,
        &fx.data,
        &fx.queries,
        &EngineConfig::simulated(Interface::SPDK, 3),
        &mut sim,
    );
    // Real I/O through the worker pool.
    let mut file_dev = FileDevice::open(&fx.path, 4).unwrap();
    let index2 = StorageIndex::open(&mut file_dev).unwrap();
    let wall_report = run_queries(
        &index2,
        &fx.data,
        &fx.queries,
        &EngineConfig::wall_clock(3),
        &mut file_dev,
    );
    // Same index, same state machine → identical neighbor sets.
    for qi in 0..fx.queries.len() {
        assert_eq!(
            sim_report.outcomes[qi].neighbors, wall_report.outcomes[qi].neighbors,
            "query {qi} differs between simulated and real I/O"
        );
        assert_eq!(
            sim_report.outcomes[qi].n_io(),
            wall_report.outcomes[qi].n_io(),
            "I/O counts must match"
        );
    }
}

#[test]
fn async_beats_sync_by_an_order_of_magnitude() {
    // Paper Section 6.5: the synchronous implementation is ~20× slower.
    let fx = build_fixture(1200, 12, "sync_async.idx");
    let mut dev = SimStorage::new(DeviceProfile::CSSD, 4, Backing::open(&fx.path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let async_report = run_queries(
        &index,
        &fx.data,
        &fx.queries,
        &EngineConfig::simulated(Interface::IO_URING, 1),
        &mut dev,
    );
    let mut dev2 = SimStorage::new(DeviceProfile::CSSD, 4, Backing::open(&fx.path).unwrap());
    let sync_report = run_queries(
        &index,
        &fx.data,
        &fx.queries,
        &EngineConfig::synchronous(1),
        &mut dev2,
    );
    let speedup = sync_report.mean_query_time() / async_report.mean_query_time();
    assert!(
        speedup > 5.0,
        "async speedup over sync only {speedup:.1}× \
         (async {:.2e}s vs sync {:.2e}s)",
        async_report.mean_query_time(),
        sync_report.mean_query_time()
    );
}

#[test]
fn lighter_interface_is_never_slower() {
    let fx = build_fixture(1200, 12, "interfaces.idx");
    let mut times = Vec::new();
    for iface in [Interface::IO_URING, Interface::SPDK, Interface::XLFDD] {
        let mut dev = SimStorage::new(DeviceProfile::XLFDD, 1, Backing::open(&fx.path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let report = run_queries(
            &index,
            &fx.data,
            &fx.queries,
            &EngineConfig::simulated(iface, 1),
            &mut dev,
        );
        times.push((iface.name, report.mean_query_time()));
    }
    assert!(
        times[0].1 >= times[1].1 && times[1].1 >= times[2].1,
        "interface ordering violated: {times:?}"
    );
}

#[test]
fn faster_device_is_never_slower() {
    let fx = build_fixture(1200, 12, "devices.idx");
    let mut times = Vec::new();
    for profile in [
        DeviceProfile::CSSD,
        DeviceProfile::ESSD,
        DeviceProfile::XLFDD,
    ] {
        let mut dev = SimStorage::new(profile, 1, Backing::open(&fx.path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let report = run_queries(
            &index,
            &fx.data,
            &fx.queries,
            &EngineConfig::simulated(Interface::SPDK, 1),
            &mut dev,
        );
        times.push((profile.name, report.mean_query_time()));
    }
    assert!(
        times[0].1 >= times[1].1 && times[1].1 >= times[2].1,
        "device ordering violated: {times:?}"
    );
}

#[test]
fn occupancy_filter_reduces_ios_without_hurting_results() {
    let fx = build_fixture(900, 10, "filter.idx");
    let run = |filter: bool| {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&fx.path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let mut cfg = EngineConfig::simulated(Interface::SPDK, 1);
        cfg.use_occupancy_filter = filter;
        run_queries(&index, &fx.data, &fx.queries, &cfg, &mut dev)
    };
    let with = run(true);
    let without = run(false);
    assert!(with.mean_n_io() <= without.mean_n_io());
    for qi in 0..fx.queries.len() {
        assert_eq!(
            with.outcomes[qi].neighbors, without.outcomes[qi].neighbors,
            "filter must not change results"
        );
    }
}

#[test]
fn budget_caps_candidates() {
    let fx = build_fixture(900, 10, "budget.idx");
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&fx.path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let mut cfg = EngineConfig::simulated(Interface::SPDK, 1);
    cfg.s_override = Some(5);
    let report = run_queries(&index, &fx.data, &fx.queries, &cfg, &mut dev);
    for out in &report.outcomes {
        assert!(
            out.candidates as usize <= 5 * out.radii_searched as usize,
            "budget is per radius: {} candidates over {} radii",
            out.candidates,
            out.radii_searched
        );
    }
}

#[test]
fn interleaving_raises_queue_depth_and_throughput() {
    let fx = build_fixture(1500, 12, "contexts.idx");
    let run = |contexts: usize| {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&fx.path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let mut cfg = EngineConfig::simulated(Interface::SPDK, 1);
        cfg.contexts = contexts;
        run_queries(&index, &fx.data, &fx.queries, &cfg, &mut dev).qps()
    };
    let qps1 = run(1);
    let qps32 = run(32);
    assert!(
        qps32 > 1.5 * qps1,
        "interleaving should raise throughput: {qps1:.0} → {qps32:.0} qps"
    );
}

#[test]
fn topk_returns_sorted_k_results() {
    let fx = build_fixture(1200, 12, "topk.idx");
    let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&fx.path).unwrap());
    let index = StorageIndex::open(&mut dev).unwrap();
    let cfg = EngineConfig::simulated(Interface::SPDK, 10);
    let report = run_queries(&index, &fx.data, &fx.queries, &cfg, &mut dev);
    for out in &report.outcomes {
        assert!(out.neighbors.len() <= 10);
        for w in out.neighbors.windows(2) {
            assert!(w[0].1 <= w[1].1, "results must be sorted");
        }
        // IDs must be unique.
        let mut ids: Vec<u32> = out.neighbors.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.neighbors.len());
    }
}
