//! On-storage data layout (paper Section 5.1–5.2, Figure 9).
//!
//! The index image is a flat byte address space:
//!
//! ```text
//! ┌───────────────┬────────────────────────────┬─────────────────────┐
//! │ superblock    │ hash tables                │ bucket block heap   │
//! │ (4 KiB)       │ r·L tables × 2^u × 8 bytes │ 512-byte blocks     │
//! └───────────────┴────────────────────────────┴─────────────────────┘
//! ```
//!
//! * Each **hash table** maps the `u`-bit prefix of a 32-bit compound hash
//!   value to the storage address of the first bucket block of its chain
//!   (0 = empty).
//! * Each **bucket block** is 512 bytes — the minimum read unit of a
//!   typical NVMe SSD — holding a 16-byte header (8-byte next-block
//!   address, 2-byte entry count, 6 bytes reserved/padding) and up to
//!   99 five-byte *object info* entries.
//! * An **object info** entry packs the object ID (`⌈log2 n⌉` bits) and a
//!   fingerprint (the remaining `v − u` bits of the 32-bit hash value) into
//!   40 bits, so false collisions introduced by indexing only `u` bits can
//!   be rejected without a distance check.

use bytes::{Buf, BufMut};

/// Bucket block size in bytes (minimum NVMe read unit).
pub const BLOCK_SIZE: usize = 512;
/// Bucket block header size: 8-byte next pointer, 2-byte count, 6 reserved.
pub const HEADER_SIZE: usize = 16;
/// Object info entry size in bytes (40 bits).
pub const ENTRY_SIZE: usize = 5;
/// Entries per bucket block: (512 − 16) / 5 = 99 (paper Section 5.1).
pub const ENTRIES_PER_BLOCK: usize = (BLOCK_SIZE - HEADER_SIZE) / ENTRY_SIZE;
/// Hash value width `v` in bits (paper Section 5.2 uses 32).
pub const HASH_BITS: u32 = 32;
/// Superblock reserved size.
pub const SUPERBLOCK_SIZE: usize = 4096;

/// Geometry of the hash-table region: `r·L` tables of `2^u` 8-byte slots,
/// followed by the DRAM-destined occupancy filters (one bit per
/// `filter_bits`-bit hash prefix per table), followed by the bucket heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableGeometry {
    /// Hash-table index bits `u`.
    pub u_bits: u32,
    /// Occupancy-filter prefix bits (≥ `u_bits`, ≤ 32). A clear filter bit
    /// proves that no object shares the first `filter_bits` bits of the
    /// hash value, so the probe can be skipped without I/O — this is how
    /// E2LSHoS "avoids issuing I/Os for empty buckets" (paper Sec. 4.3)
    /// while keeping only megabytes in DRAM (Table 6's "Index mem").
    pub filter_bits: u32,
    /// Number of radii `r`.
    pub num_radii: usize,
    /// Compound hashes per radius `L`.
    pub l: usize,
}

impl TableGeometry {
    /// Slots per table.
    #[inline]
    pub fn slots(&self) -> u64 {
        1u64 << self.u_bits
    }

    /// Bytes per table.
    #[inline]
    pub fn table_bytes(&self) -> u64 {
        self.slots() * 8
    }

    /// Total number of tables (`r·L`).
    #[inline]
    pub fn num_tables(&self) -> usize {
        self.num_radii * self.l
    }

    /// Byte offset of table `(ri, li)` within the image.
    #[inline]
    pub fn table_base(&self, ri: usize, li: usize) -> u64 {
        debug_assert!(ri < self.num_radii && li < self.l);
        SUPERBLOCK_SIZE as u64 + (ri * self.l + li) as u64 * self.table_bytes()
    }

    /// Byte offset of the slot for hash value `h` (only its low `u` bits
    /// are used) in table `(ri, li)`.
    #[inline]
    pub fn slot_addr(&self, ri: usize, li: usize, h: u64) -> u64 {
        self.table_base(ri, li) + (h & (self.slots() - 1)) * 8
    }

    /// Bytes of one table's occupancy filter (`2^filter_bits` bits).
    #[inline]
    pub fn filter_bytes_per_table(&self) -> u64 {
        (1u64 << self.filter_bits) / 8
    }

    /// Byte offset of the filter for table `(ri, li)`.
    #[inline]
    pub fn filter_base(&self, ri: usize, li: usize) -> u64 {
        SUPERBLOCK_SIZE as u64
            + self.num_tables() as u64 * self.table_bytes()
            + (ri * self.l + li) as u64 * self.filter_bytes_per_table()
    }

    /// First byte of the bucket-block heap.
    #[inline]
    pub fn heap_base(&self) -> u64 {
        SUPERBLOCK_SIZE as u64
            + self.num_tables() as u64 * (self.table_bytes() + self.filter_bytes_per_table())
    }
}

/// Split a `v`-bit hash value into its `u`-bit table index and `(v−u)`-bit
/// fingerprint.
#[inline]
pub fn split_hash(h32: u64, u_bits: u32) -> (u64, u32) {
    debug_assert!(u_bits <= HASH_BITS);
    let table_idx = h32 & ((1u64 << u_bits) - 1);
    let fingerprint = (h32 >> u_bits) as u32; // remaining v−u bits
    (table_idx, fingerprint)
}

/// Packing of (object ID, fingerprint) into a 5-byte object info entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryCodec {
    /// Bits for the object ID: `⌈log2 n⌉`.
    pub id_bits: u32,
    /// Bits for the fingerprint: `v − u`.
    pub fp_bits: u32,
}

impl EntryCodec {
    /// Codec for a database of `n` objects indexed with `u` table bits.
    ///
    /// # Panics
    /// Panics if the two fields cannot fit in 40 bits (paper Section 5.2:
    /// `⌈log2 n⌉ + v − u` must be ≤ 40).
    pub fn new(n: usize, u_bits: u32) -> Self {
        assert!(n >= 1);
        let id_bits = (usize::BITS - (n - 1).leading_zeros()).max(1);
        let fp_bits = HASH_BITS - u_bits.min(HASH_BITS);
        assert!(
            id_bits + fp_bits <= (ENTRY_SIZE * 8) as u32,
            "object info overflow: id_bits {id_bits} + fp_bits {fp_bits} > 40"
        );
        Self { id_bits, fp_bits }
    }

    /// Pack an entry into its 40-bit representation.
    #[inline]
    pub fn pack(&self, id: u32, fingerprint: u32) -> u64 {
        debug_assert!(u64::from(id) < (1u64 << self.id_bits));
        let fp = u64::from(fingerprint) & ((1u64 << self.fp_bits) - 1);
        (fp << self.id_bits) | u64::from(id)
    }

    /// Unpack a 40-bit entry into (object ID, fingerprint).
    #[inline]
    pub fn unpack(&self, packed: u64) -> (u32, u32) {
        let id = (packed & ((1u64 << self.id_bits) - 1)) as u32;
        let fp = (packed >> self.id_bits) as u32;
        (id, fp)
    }

    /// Fingerprint mask (low `fp_bits` bits set).
    #[inline]
    pub fn fp_mask(&self) -> u32 {
        if self.fp_bits >= 32 {
            u32::MAX
        } else {
            (1u32 << self.fp_bits) - 1
        }
    }
}

/// A decoded bucket block.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BucketBlock {
    /// Storage address of the next block in the chain (0 = end).
    pub next: u64,
    /// Entries: `(object id, fingerprint)`.
    pub entries: Vec<(u32, u32)>,
}

impl BucketBlock {
    /// Encode into exactly [`BLOCK_SIZE`] bytes.
    ///
    /// # Panics
    /// Panics if there are more than [`ENTRIES_PER_BLOCK`] entries.
    pub fn encode(&self, codec: &EntryCodec, out: &mut Vec<u8>) {
        assert!(self.entries.len() <= ENTRIES_PER_BLOCK);
        let start = out.len();
        out.put_u64_le(self.next);
        out.put_u16_le(self.entries.len() as u16);
        out.put_slice(&[0u8; 6]); // reserved (paper: debug padding)
        for &(id, fp) in &self.entries {
            let packed = codec.pack(id, fp);
            out.put_slice(&packed.to_le_bytes()[..ENTRY_SIZE]);
        }
        out.resize(start + BLOCK_SIZE, 0);
    }

    /// Decode from a [`BLOCK_SIZE`]-byte buffer.
    pub fn decode(codec: &EntryCodec, mut buf: &[u8]) -> Self {
        assert!(buf.len() >= BLOCK_SIZE, "short bucket block");
        let next = buf.get_u64_le();
        let count = buf.get_u16_le() as usize;
        buf.advance(6);
        assert!(count <= ENTRIES_PER_BLOCK, "corrupt block: count {count}");
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let mut raw = [0u8; 8];
            raw[..ENTRY_SIZE].copy_from_slice(&buf[..ENTRY_SIZE]);
            buf.advance(ENTRY_SIZE);
            entries.push(codec.unpack(u64::from_le_bytes(raw)));
        }
        Self { next, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(BLOCK_SIZE, 512);
        assert_eq!(HEADER_SIZE, 16);
        assert_eq!(ENTRY_SIZE, 5);
        assert_eq!(ENTRIES_PER_BLOCK, 99); // (512-16)/5 per Section 5.1
    }

    #[test]
    fn geometry_addressing() {
        let g = TableGeometry {
            u_bits: 10,
            filter_bits: 13,
            num_radii: 3,
            l: 4,
        };
        assert_eq!(g.slots(), 1024);
        assert_eq!(g.table_bytes(), 8192);
        assert_eq!(g.num_tables(), 12);
        assert_eq!(g.filter_bytes_per_table(), 1024);
        assert_eq!(g.table_base(0, 0), SUPERBLOCK_SIZE as u64);
        assert_eq!(g.table_base(0, 1), SUPERBLOCK_SIZE as u64 + 8192);
        assert_eq!(g.table_base(1, 0), SUPERBLOCK_SIZE as u64 + 4 * 8192);
        assert_eq!(g.filter_base(0, 0), SUPERBLOCK_SIZE as u64 + 12 * 8192);
        assert_eq!(
            g.filter_base(0, 1),
            SUPERBLOCK_SIZE as u64 + 12 * 8192 + 1024
        );
        assert_eq!(g.heap_base(), SUPERBLOCK_SIZE as u64 + 12 * (8192 + 1024));
        // Slot address wraps on u bits.
        assert_eq!(g.slot_addr(0, 0, 0), g.table_base(0, 0));
        assert_eq!(g.slot_addr(0, 0, 1024 + 5), g.table_base(0, 0) + 5 * 8);
    }

    #[test]
    fn split_hash_reassembles() {
        let h: u64 = 0xABCD_1234;
        let (idx, fp) = split_hash(h, 12);
        assert_eq!(idx, h & 0xFFF);
        assert_eq!(u64::from(fp), h >> 12);
        assert_eq!((u64::from(fp) << 12) | idx, h);
    }

    #[test]
    fn entry_codec_roundtrip() {
        let codec = EntryCodec::new(1_000_000, 18); // 20 id bits, 14 fp bits
        assert_eq!(codec.id_bits, 20);
        assert_eq!(codec.fp_bits, 14);
        for &(id, fp) in &[(0u32, 0u32), (999_999, 0x3FFF), (12345, 42)] {
            let (id2, fp2) = codec.unpack(codec.pack(id, fp));
            assert_eq!((id, fp), (id2, fp2));
        }
    }

    #[test]
    fn entry_codec_billion_objects_fits() {
        // Paper: one billion objects, u slightly below log2 n = 30.
        let codec = EntryCodec::new(1_000_000_000, 28);
        assert_eq!(codec.id_bits, 30);
        assert_eq!(codec.fp_bits, 4);
        assert!(codec.id_bits + codec.fp_bits <= 40);
    }

    #[test]
    #[should_panic(expected = "object info overflow")]
    fn entry_codec_overflow_detected() {
        // 30 id bits + 20 fp bits > 40.
        let _ = EntryCodec::new(1_000_000_000, 12);
    }

    #[test]
    fn block_roundtrip() {
        let codec = EntryCodec::new(100_000, 15);
        let block = BucketBlock {
            next: 0xDEAD_BE00,
            entries: (0..99).map(|i| (i * 7, i & codec.fp_mask())).collect(),
        };
        let mut buf = Vec::new();
        block.encode(&codec, &mut buf);
        assert_eq!(buf.len(), BLOCK_SIZE);
        let back = BucketBlock::decode(&codec, &buf);
        assert_eq!(back, block);
    }

    #[test]
    fn empty_block_roundtrip() {
        let codec = EntryCodec::new(10, 2);
        let block = BucketBlock {
            next: 0,
            entries: vec![],
        };
        let mut buf = Vec::new();
        block.encode(&codec, &mut buf);
        let back = BucketBlock::decode(&codec, &buf);
        assert_eq!(back.entries.len(), 0);
        assert_eq!(back.next, 0);
    }

    #[test]
    #[should_panic]
    fn overfull_block_panics() {
        let codec = EntryCodec::new(10, 2);
        let block = BucketBlock {
            next: 0,
            entries: vec![(1, 0); 100],
        };
        let mut buf = Vec::new();
        block.encode(&codec, &mut buf);
    }
}
