//! Storage device abstraction.
//!
//! The query engine talks to storage through the [`Device`] trait, which
//! exposes an asynchronous submit/poll interface (the shape of io_uring,
//! SPDK and the XLFDD interface in the paper). Two families implement it:
//!
//! * [`sim::SimStorage`] — a discrete-event model of the paper's devices
//!   (Table 2) operating in **virtual time**; data is served from a memory
//!   or file backing while completion times come from a per-die service
//!   model. Experiments use this: it reproduces the queue-depth-dependent
//!   IOPS curves that drive the paper's entire analysis.
//! * [`file::FileDevice`] — real positioned reads against an index file
//!   through a worker-thread pool, operating in **wall time**. Tests and
//!   the quickstart example use this to exercise the on-disk format and
//!   the asynchronous engine against a real filesystem.

pub mod cached;
pub mod file;
pub mod sim;

/// An asynchronous read request.
#[derive(Clone, Copy, Debug)]
pub struct IoRequest {
    /// Byte offset into the index address space.
    pub addr: u64,
    /// Read length in bytes.
    pub len: u32,
    /// Caller-chosen identifier returned with the completion.
    pub tag: u64,
}

/// A completed read.
#[derive(Clone, Debug)]
pub struct IoCompletion {
    /// Tag from the originating [`IoRequest`].
    pub tag: u64,
    /// The bytes read.
    pub data: Vec<u8>,
    /// Completion time: virtual seconds for simulated devices, seconds
    /// since engine start for wall-clock devices.
    pub time: f64,
}

/// Cumulative device statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceStats {
    /// I/Os completed.
    pub completed: u64,
    /// Bytes returned.
    pub bytes: u64,
    /// Sum of per-I/O latencies in seconds (completion − submission).
    pub latency_sum: f64,
    /// Sum of device busy time in seconds (for usage accounting; virtual
    /// devices only).
    pub busy_sum: f64,
    /// Block reads served from a DRAM cache (0 without a
    /// [`cached::CachedDevice`]). Per device, so sums over workers
    /// sharing one cache stay correct.
    pub cache_hits: u64,
    /// Block reads that went to the underlying device.
    pub cache_misses: u64,
    /// Cached blocks displaced to make room. A cache-level (not
    /// per-device) quantity: [`cached::CachedDevice::stats`] leaves it 0
    /// and aggregators fill it from
    /// [`cached::BlockCache::evictions`] (the service report does).
    pub cache_evictions: u64,
    /// Cached blocks dropped because their backing storage was
    /// rewritten. Cache-level like evictions; aggregators fill it from
    /// [`cached::BlockCache::invalidations`].
    pub cache_invalidations: u64,
    /// In-flight miss fills discarded because their block was
    /// invalidated between submit and completion. Cache-level;
    /// aggregators fill it from [`cached::BlockCache::stale_fills`].
    pub cache_stale_fills: u64,
    /// Blocks pre-filled from a sibling replica's cache
    /// ([`cached::BlockCache::warm_from`] — replica-aware cache
    /// warming). Cache-level like evictions; aggregators fill it from
    /// [`cached::BlockCache::warmed`].
    pub cache_warmed: u64,
    /// Window candidates the TinyLFU admission filter refused to admit
    /// into the cache's main area (0 under the default LRU policy).
    /// Cache-level; aggregators fill it from
    /// [`cached::BlockCache::admission_rejected`].
    pub cache_admission_rejected: u64,
    /// Cache hits on table-region blocks (hash-table slot reads, below
    /// the region boundary; 0 when the cache is unpartitioned).
    /// Cache-level; from [`cached::BlockCache::table_hits`].
    pub cache_table_hits: u64,
    /// Cache misses on table-region blocks. Cache-level; from
    /// [`cached::BlockCache::table_misses`].
    pub cache_table_misses: u64,
    /// Cache hits on bucket-region blocks (chain reads; all lookups
    /// when unpartitioned). Cache-level; from
    /// [`cached::BlockCache::bucket_hits`].
    pub cache_bucket_hits: u64,
    /// Cache misses on bucket-region blocks. Cache-level; from
    /// [`cached::BlockCache::bucket_misses`].
    pub cache_bucket_misses: u64,
    /// Miss reads that parked on another read's in-flight fill instead
    /// of issuing a duplicate device read
    /// ([`cached::CachedDevice`] single-flight coalescing). Per device
    /// in [`cached::CachedDevice::stats`]; service aggregation fills it
    /// from [`cached::BlockCache::coalesced`].
    pub coalesced_reads: u64,
    /// Bucket blocks returned to the free list by deletes or background
    /// maintenance (empty-block unlink and chain compaction). A
    /// writer-level quantity: devices leave it 0 and the service report
    /// fills it from the per-shard maintenance counters.
    pub blocks_reclaimed: u64,
    /// Occupancy-filter bits cleared by tombstone GC (the bit's bucket
    /// no longer holds live entries). Writer-level like
    /// `blocks_reclaimed`.
    pub filter_bits_cleared: u64,
    /// Bytes made reusable by reclamation (`blocks_reclaimed ×`
    /// block size, plus heap trimmed by cursor rollback). Writer-level.
    pub bytes_reclaimed: u64,
    /// Delete operations that removed fewer entries than the `r·L`
    /// chains they should appear in — the index was already
    /// inconsistent. Writer-level.
    pub chain_inconsistencies: u64,
}

impl DeviceStats {
    /// Mean per-I/O latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.latency_sum / self.completed as f64
        }
    }

    /// Cache hits over all cache lookups (0 when uncached).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Asynchronous block storage.
///
/// `now` arguments carry the caller's virtual clock; wall-clock devices
/// ignore them.
pub trait Device: Send {
    /// Queue a read. The device starts (virtual) service immediately.
    fn submit(&mut self, req: IoRequest, now: f64);

    /// Drain completions whose completion time is ≤ `now` (wall-clock
    /// devices drain everything currently finished).
    fn poll(&mut self, now: f64, out: &mut Vec<IoCompletion>);

    /// Earliest pending completion time, if this device runs in virtual
    /// time and has I/Os in flight. Wall-clock devices return `None`.
    fn next_completion_time(&self) -> Option<f64>;

    /// Block until at least one completion is available (wall-clock
    /// devices). No-op for virtual devices.
    fn wait(&mut self);

    /// I/Os submitted but not yet delivered through [`Device::poll`].
    fn inflight(&self) -> usize;

    /// Synchronous read outside the simulation (superblock loading, table
    /// scans at open, tests). Does not affect timing statistics.
    fn read_sync(&mut self, addr: u64, len: u32) -> Vec<u8>;

    /// Cumulative statistics.
    fn stats(&self) -> DeviceStats;
}

/// Storage access interface profile: the per-I/O CPU cost `T_request`
/// (paper Table 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interface {
    /// Human-readable name.
    pub name: &'static str,
    /// CPU time one core spends issuing a single I/O, in seconds.
    pub t_request: f64,
}

impl Interface {
    /// io_uring v2.0: 1.0 µs per I/O (1.0 MIOPS/core).
    pub const IO_URING: Interface = Interface {
        name: "io_uring",
        t_request: 1.0e-6,
    };
    /// SPDK 21.10: 350 ns per I/O (2.9 MIOPS/core).
    pub const SPDK: Interface = Interface {
        name: "SPDK",
        t_request: 350.0e-9,
    };
    /// XLFDD lightweight interface: 50 ns per I/O (20 MIOPS/core).
    pub const XLFDD: Interface = Interface {
        name: "XLFDD",
        t_request: 50.0e-9,
    };
    /// Synchronous memory-mapped I/O through the page cache (paper
    /// Section 6.5): the CPU-side cost per fault-and-fill is far higher
    /// than any asynchronous interface. The ~2.5 µs figure reflects the
    /// paper's breakdown (page-cache CPU overhead ≈ 40% of a ~6 µs
    /// per-I/O budget).
    pub const MMAP_SYNC: Interface = Interface {
        name: "mmap(sync)",
        t_request: 2.5e-6,
    };
}
