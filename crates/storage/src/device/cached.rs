//! DRAM block cache in front of any [`Device`].
//!
//! E2LSHoS keeps the hash index on storage to scale past DRAM, but real
//! query streams are skewed: hot buckets (popular hash prefixes, repeated
//! or clustered queries) are read over and over. [`CachedDevice`] wraps
//! any device with a sharded LRU cache over 512-byte blocks so repeated
//! reads of hash-table slots and bucket blocks are served from DRAM with
//! zero device time, while cold reads pass through and fill the cache on
//! completion.
//!
//! The cache itself ([`BlockCache`]) is shared: the serving layer hands
//! one `Arc<BlockCache>` per dataset shard to every worker driving that
//! shard, so a block fetched by one worker is a DRAM hit for all of them.
//! Shard-level mutexes keep cross-worker contention low (each lock guards
//! `1/num_shards` of the key space).
//!
//! Hits, misses and evictions are surfaced through
//! [`DeviceStats::cache_hits`] / [`DeviceStats::cache_misses`] /
//! [`DeviceStats::cache_evictions`], so every report that prints device
//! statistics can report cache effectiveness too.

use super::{Device, DeviceStats, IoCompletion, IoRequest};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const NIL: usize = usize::MAX;

/// One LRU segment: an intrusive doubly-linked list over a slab of
/// nodes, most-recently-used at `head`.
struct LruShard {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

struct Node {
    key: u64,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<[u8]>> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(&self.nodes[i].data))
    }

    /// Insert (or refresh) a block; returns true when an older block was
    /// evicted to make room.
    fn insert(&mut self, key: u64, data: Arc<[u8]>) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].data = data;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A sharded LRU cache over fixed-address blocks, shareable across
/// worker threads.
pub struct BlockCache {
    shards: Vec<Mutex<LruShard>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Bumped by every invalidation; in-flight miss fills started under
    /// an older generation are discarded (the check runs under the shard
    /// lock in [`BlockCache::insert_if_generation`]), so a completion
    /// racing an invalidation can never re-populate the cache with stale
    /// bytes — even through a *different* [`CachedDevice`] sharing this
    /// cache. Deliberately coarse: one invalidation discards *all*
    /// in-flight fills, not just the rewritten key's. Fills are cheap to
    /// retry (the next miss re-reads the block) and index updates are
    /// rare next to reads, so correctness is bought with at most one
    /// extra device read per in-flight block per update.
    generation: AtomicU64,
}

impl BlockCache {
    /// Cache holding at most `capacity_blocks` blocks, striped over
    /// `num_shards` independently locked LRU segments. The capacity is
    /// exact: it is distributed over the segments as evenly as possible
    /// (both arguments are clamped to at least 1, and the segment count
    /// to at most the capacity).
    pub fn new(capacity_blocks: usize, num_shards: usize) -> Self {
        let capacity = capacity_blocks.max(1);
        let num_shards = num_shards.max(1).min(capacity);
        let base = capacity / num_shards;
        let extra = capacity % num_shards;
        Self {
            shards: (0..num_shards)
                .map(|s| Mutex::new(LruShard::new(base + usize::from(s < extra))))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, key: u64) -> &Mutex<LruShard> {
        // Fibonacci hashing spreads block addresses (which share low
        // zero bits) across shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Look up a block, promoting it to most-recently-used. Counts a hit
    /// or a miss.
    pub fn get(&self, key: u64) -> Option<Arc<[u8]>> {
        let got = self.shard_for(key).lock().unwrap().get(key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Insert a block read from the device.
    pub fn insert(&self, key: u64, data: Arc<[u8]>) {
        if self.shard_for(key).lock().unwrap().insert(key, data) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Insert only if no invalidation happened since `gen` (a value from
    /// [`BlockCache::generation`] taken when the read was submitted).
    /// The check runs under the shard lock, so an invalidation
    /// concurrent with this call either bumps the generation first (the
    /// fill is skipped) or removes the entry afterwards — a stale fill
    /// can never survive.
    pub fn insert_if_generation(&self, key: u64, data: Arc<[u8]>, gen: u64) {
        let mut shard = self.shard_for(key).lock().unwrap();
        if self.generation.load(Ordering::Acquire) != gen {
            return;
        }
        if shard.insert(key, data) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drop one block (call when its backing storage is rewritten, e.g.
    /// by [`Updater`]); counts neither a hit nor an eviction.
    ///
    /// [`Updater`]: crate::update::Updater
    pub fn invalidate(&self, key: u64) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        let mut shard = self.shard_for(key).lock().unwrap();
        if let Some(&i) = shard.map.get(&key) {
            shard.unlink(i);
            shard.map.remove(&key);
            shard.nodes[i].data = Arc::from(&[][..]); // release the bytes now
            shard.free.push(i);
        }
    }

    /// Drop every cached block (coarse invalidation after bulk updates).
    pub fn clear(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            let cap = s.capacity;
            *s = LruShard::new(cap);
        }
    }

    /// Invalidation epoch (see the `generation` field).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum blocks the cache will hold (sum over shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from DRAM.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that went to the device.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Blocks displaced to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits over all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// A [`Device`] wrapper serving repeated block reads from a shared DRAM
/// [`BlockCache`].
///
/// Cache hits complete at the submission timestamp (a DRAM copy costs no
/// device time — the CPU-side cost is already charged by the engine's
/// `T_request` model); misses pass through to the inner device and fill
/// the cache when they complete. Only whole-block reads are cached;
/// other lengths (superblock, filter scans at open) bypass the cache.
///
/// **Writes are not observed.** The [`Device`] trait is read-only, so a
/// writer mutating the index underneath (e.g.
/// [`Updater`](crate::update::Updater)) must tell the cache: call
/// [`CachedDevice::invalidate`] per rewritten block, or
/// [`BlockCache::clear`] after a bulk update — otherwise subsequent
/// hits serve the pre-update bytes. Invalidation also discards miss
/// fills that were in flight when it happened (generation-gated), on
/// every device sharing the cache.
pub struct CachedDevice<D: Device> {
    inner: D,
    cache: Arc<BlockCache>,
    block_size: u32,
    /// Completions served from DRAM, delivered on the next poll.
    hit_queue: Vec<IoCompletion>,
    /// tag → (block key, cache generation at submit) for in-flight
    /// misses (tags are unique per in-flight I/O: one engine context
    /// never has two same-kind I/Os for the same probe in flight). The
    /// generation gates the fill: an invalidation between submit and
    /// completion discards it.
    pending_fills: HashMap<u64, (u64, u64)>,
    /// This device's own cache hits (the shared [`BlockCache`] counters
    /// span every device on the cache; per-device stats must stay
    /// summable across workers).
    local_hits: u64,
    /// This device's own cache misses.
    local_misses: u64,
}

impl<D: Device> CachedDevice<D> {
    /// Wrap `inner`, serving `block_size`-byte aligned reads from
    /// `cache`.
    pub fn new(inner: D, cache: Arc<BlockCache>, block_size: u32) -> Self {
        assert!(block_size > 0);
        Self {
            inner,
            cache,
            block_size,
            hit_queue: Vec::new(),
            pending_fills: HashMap::new(),
            local_hits: 0,
            local_misses: 0,
        }
    }

    /// Convenience: wrap with a fresh private cache of
    /// `capacity_blocks` × [`BLOCK_SIZE`] blocks.
    ///
    /// [`BLOCK_SIZE`]: crate::layout::BLOCK_SIZE
    pub fn with_capacity(inner: D, capacity_blocks: usize) -> Self {
        Self::new(
            inner,
            Arc::new(BlockCache::new(capacity_blocks, 8)),
            crate::layout::BLOCK_SIZE as u32,
        )
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Drop the cached copy of the block containing `addr` (call after
    /// rewriting it on storage).
    pub fn invalidate(&self, addr: u64) {
        let aligned = addr - addr % u64::from(self.block_size);
        self.cache.invalidate(self.key_of(aligned));
    }

    #[inline]
    fn cacheable(&self, req: &IoRequest) -> bool {
        req.len == self.block_size && req.addr.is_multiple_of(u64::from(self.block_size))
    }

    #[inline]
    fn key_of(&self, addr: u64) -> u64 {
        addr / u64::from(self.block_size)
    }
}

impl<D: Device> Device for CachedDevice<D> {
    fn submit(&mut self, req: IoRequest, now: f64) {
        if self.cacheable(&req) {
            let key = self.key_of(req.addr);
            if let Some(data) = self.cache.get(key) {
                // DRAM hit: complete at the submission timestamp.
                self.local_hits += 1;
                self.hit_queue.push(IoCompletion {
                    tag: req.tag,
                    data: data.to_vec(),
                    time: now,
                });
                return;
            }
            self.local_misses += 1;
            let prev = self
                .pending_fills
                .insert(req.tag, (key, self.cache.generation()));
            debug_assert!(prev.is_none(), "duplicate in-flight tag {:#x}", req.tag);
        }
        self.inner.submit(req, now);
    }

    fn poll(&mut self, now: f64, out: &mut Vec<IoCompletion>) {
        // Hits first: they completed at submission time, which is never
        // after `now`.
        out.append(&mut self.hit_queue);
        let start = out.len();
        self.inner.poll(now, out);
        for comp in &out[start..] {
            if let Some((key, gen)) = self.pending_fills.remove(&comp.tag) {
                // Fills that raced an invalidation are discarded (checked
                // atomically with the insert): the bytes were read before
                // the rewrite and must not re-enter.
                self.cache
                    .insert_if_generation(key, Arc::from(comp.data.as_slice()), gen);
            }
        }
    }

    fn next_completion_time(&self) -> Option<f64> {
        let hit = self
            .hit_queue
            .iter()
            .map(|c| c.time)
            .fold(f64::INFINITY, f64::min);
        match self.inner.next_completion_time() {
            Some(t) => Some(t.min(hit)),
            None if !self.hit_queue.is_empty() => Some(hit),
            None => None,
        }
    }

    fn wait(&mut self) {
        if self.hit_queue.is_empty() {
            self.inner.wait();
        }
    }

    fn inflight(&self) -> usize {
        self.hit_queue.len() + self.inner.inflight()
    }

    fn read_sync(&mut self, addr: u64, len: u32) -> Vec<u8> {
        self.inner.read_sync(addr, len)
    }

    fn stats(&self) -> DeviceStats {
        // `completed`/`bytes` count only what the underlying device
        // served; DRAM hits are reported separately via the cache
        // counters. Hits/misses are *this device's own* lookups so that
        // summing worker stats never multiplies shared-cache totals.
        // Evictions are a property of the (possibly shared) cache, not
        // of any one device — read them from [`BlockCache::evictions`].
        let mut s = self.inner.stats();
        s.cache_hits = self.local_hits;
        s.cache_misses = self.local_misses;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::sim::{Backing, DeviceProfile, SimStorage};
    use crate::layout::BLOCK_SIZE;

    fn image(blocks: usize) -> Vec<u8> {
        let mut v = vec![0u8; blocks * BLOCK_SIZE];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (i / BLOCK_SIZE) as u8;
        }
        v
    }

    fn read_block(dev: &mut dyn Device, addr: u64, now: f64) -> (Vec<u8>, f64) {
        dev.submit(
            IoRequest {
                addr,
                len: BLOCK_SIZE as u32,
                tag: addr,
            },
            now,
        );
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1);
        (out.pop().unwrap().data, t)
    }

    #[test]
    fn hit_serves_same_bytes_instantly() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        let (cold, t_cold) = read_block(&mut dev, 512, 0.0);
        assert!(t_cold > 0.0, "cold read takes device time");
        let (warm, t_warm) = read_block(&mut dev, 512, t_cold);
        assert_eq!(cold, warm);
        assert_eq!(t_warm, t_cold, "hit completes at submission time");
        let s = dev.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.completed, 1, "only the cold read touched the device");
    }

    #[test]
    fn unaligned_or_oversize_reads_bypass_cache() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        dev.submit(
            IoRequest {
                addr: 100, // unaligned
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(dev.stats().cache_hits + dev.stats().cache_misses, 0);
        assert!(dev.cache().is_empty());
    }

    #[test]
    fn capacity_never_exceeded_and_evictions_counted() {
        let cache = BlockCache::new(8, 2);
        for i in 0..100u64 {
            cache.insert(i, Arc::from(vec![0u8; 4].as_slice()));
            assert!(
                cache.len() <= cache.capacity(),
                "len {} at i {i}",
                cache.len()
            );
        }
        assert!(cache.evictions() > 0);
        assert_eq!(cache.len() as u64 + cache.evictions(), 100);
    }

    #[test]
    fn lru_order_within_shard() {
        // Single shard so the eviction order is the global LRU order.
        let cache = BlockCache::new(2, 1);
        cache.insert(1, Arc::from([1u8].as_slice()));
        cache.insert(2, Arc::from([2u8].as_slice()));
        assert!(cache.get(1).is_some()); // 1 becomes MRU
        cache.insert(3, Arc::from([3u8].as_slice())); // evicts 2
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn capacity_is_exact_even_when_striped() {
        let cache = BlockCache::new(10, 8);
        assert_eq!(cache.capacity(), 10);
        for i in 0..200u64 {
            cache.insert(i, Arc::from(vec![0u8; 1].as_slice()));
            assert!(cache.len() <= 10, "len {} > 10", cache.len());
        }
    }

    #[test]
    fn invalidate_drops_stale_block_and_clear_empties() {
        let cache = BlockCache::new(8, 2);
        cache.insert(1, Arc::from([1u8].as_slice()));
        cache.insert(2, Arc::from([2u8].as_slice()));
        assert!(cache.get(1).is_some());
        cache.invalidate(1);
        assert!(cache.get(1).is_none(), "invalidated block still served");
        cache.invalidate(99); // unknown key: no-op
        assert!(cache.get(2).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(2).is_none());
        // Invalidation and clearing count neither hits nor evictions.
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cached_device_invalidate_realigns_addr() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        let (before, t) = read_block(&mut dev, 1024, 0.0);
        // Invalidate via an interior address of the same block.
        dev.invalidate(1024 + 77);
        let (after, _) = read_block(&mut dev, 1024, t);
        assert_eq!(before, after);
        let s = dev.stats();
        assert_eq!(s.cache_hits, 0, "second read had to miss");
        assert_eq!(s.cache_misses, 2);
    }

    #[test]
    fn invalidation_discards_in_flight_fill() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        // Miss in flight…
        dev.submit(
            IoRequest {
                addr: 512,
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        // …then the block is rewritten and invalidated before the read
        // completes.
        dev.invalidate(512);
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1, "completion still delivered to the engine");
        assert!(
            dev.cache().is_empty(),
            "stale in-flight fill must not re-populate the cache"
        );
        // The next read goes to the device again (fresh bytes).
        let (_, _) = read_block(&mut dev, 512, t);
        assert_eq!(dev.stats().cache_hits, 0);
    }

    #[test]
    fn counters_consistent() {
        // Capacity exceeds the working set so the cyclic scan hits after
        // the first pass (an LRU thrashes on cycles larger than itself).
        let cache = BlockCache::new(8, 2);
        let mut expect_hits = 0;
        let mut expect_misses = 0;
        for i in 0..50u64 {
            let key = i % 6;
            if cache.get(key).is_some() {
                expect_hits += 1;
            } else {
                expect_misses += 1;
                cache.insert(key, Arc::from(key.to_le_bytes().as_slice()));
            }
        }
        assert_eq!(cache.hits(), expect_hits);
        assert_eq!(cache.misses(), expect_misses);
        assert_eq!(cache.hits() + cache.misses(), 50);
        assert!(cache.hit_rate() > 0.0 && cache.hit_rate() < 1.0);
    }

    #[test]
    fn shared_cache_across_devices() {
        let cache = Arc::new(BlockCache::new(64, 4));
        let mk = || SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut a = CachedDevice::new(mk(), Arc::clone(&cache), BLOCK_SIZE as u32);
        let mut b = CachedDevice::new(mk(), Arc::clone(&cache), BLOCK_SIZE as u32);
        let (bytes_a, _) = read_block(&mut a, 1024, 0.0); // miss, fills shared cache
        let (bytes_b, _) = read_block(&mut b, 1024, 0.0); // hit via the other device
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
