//! DRAM block cache in front of any [`Device`].
//!
//! E2LSHoS keeps the hash index on storage to scale past DRAM, but real
//! query streams are skewed: hot buckets (popular hash prefixes, repeated
//! or clustered queries) are read over and over. [`CachedDevice`] wraps
//! any device with a sharded LRU cache over 512-byte blocks so repeated
//! reads of hash-table slots and bucket blocks are served from DRAM with
//! zero device time, while cold reads pass through and fill the cache on
//! completion.
//!
//! The cache itself ([`BlockCache`]) is shared: the serving layer hands
//! one `Arc<BlockCache>` per dataset shard to every worker driving that
//! shard, so a block fetched by one worker is a DRAM hit for all of them.
//! Shard-level mutexes keep cross-worker contention low (each lock guards
//! `1/num_shards` of the key space).
//!
//! Hits, misses, evictions, invalidations and discarded stale fills are
//! surfaced through [`DeviceStats::cache_hits`] /
//! [`DeviceStats::cache_misses`] / [`DeviceStats::cache_evictions`] /
//! [`DeviceStats::cache_invalidations`] /
//! [`DeviceStats::cache_stale_fills`], so every report that prints
//! device statistics can report cache effectiveness too.
//!
//! Writers (the online update path) invalidate exactly the blocks they
//! rewrite; per-key epochs make sure a racing miss fill for an
//! invalidated block is discarded while fills for unrelated blocks
//! survive (see [`BlockCache`]).

use super::{Device, DeviceStats, IoCompletion, IoRequest};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const NIL: usize = usize::MAX;

/// One LRU segment: an intrusive doubly-linked list over a slab of
/// nodes, most-recently-used at `head`.
struct LruShard {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    /// Per-key invalidation counters (sparse: only keys invalidated
    /// since this segment's last flush appear). Guarded by the same
    /// mutex as the entries, so epoch reads/bumps are atomic with entry
    /// removal and with fill insertion. Bounded: when the map outgrows
    /// [`LruShard::epoch_bound`], the segment's `flush` epoch is bumped
    /// and the map dropped — every in-flight fill into this segment is
    /// then conservatively discarded, which is the old cache-global
    /// behaviour for one rare moment instead of on every write.
    epochs: HashMap<u64, u64>,
    /// This segment's flush epoch: bumped by
    /// [`BlockCache::invalidate_all`] and by epoch-map overflow; gates
    /// every in-flight fill into the segment.
    flush: u64,
}

struct Node {
    key: u64,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            epochs: HashMap::new(),
            flush: 0,
        }
    }

    /// Epoch snapshot for a fill of `key` beginning now.
    fn fill_epoch(&self, key: u64) -> FillEpoch {
        FillEpoch {
            key_epoch: self.epochs.get(&key).copied().unwrap_or(0),
            flush_epoch: self.flush,
        }
    }

    /// True when `epoch` is still current for `key`.
    fn is_fresh(&self, key: u64, epoch: FillEpoch) -> bool {
        self.fill_epoch(key) == epoch
    }

    /// Cap on the sparse epoch map before it is traded for a segment
    /// flush (memory bound: a long-lived cache under a sustained write
    /// stream would otherwise accumulate one entry per distinct block
    /// ever invalidated).
    fn epoch_bound(&self) -> usize {
        (self.capacity * 4).max(1024)
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: u64) -> Option<Arc<[u8]>> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(&self.nodes[i].data))
    }

    /// Insert (or refresh) a block; returns true when an older block was
    /// evicted to make room.
    fn insert(&mut self, key: u64, data: Arc<[u8]>) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].data = data;
            self.unlink(i);
            self.push_front(i);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.map.remove(&self.nodes[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Snapshot of a key's invalidation state, taken when a miss read is
/// submitted and checked (under the key's shard lock) when the fill
/// lands. A fill is discarded when *that key* was invalidated in
/// between, or when the whole cache was flushed — invalidations of
/// other keys do not touch it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillEpoch {
    /// The key's per-key invalidation count at submit.
    key_epoch: u64,
    /// The key's lock-segment flush count at submit (bumped by
    /// whole-cache invalidation and by epoch-map overflow).
    flush_epoch: u64,
}

/// A sharded LRU cache over fixed-address blocks, shareable across
/// worker threads.
///
/// ## Invalidation epochs
///
/// A writer rewriting a block calls [`BlockCache::invalidate`], which
/// drops the cached entry *and* bumps that key's epoch. Miss fills
/// snapshot the key's epoch at submit ([`BlockCache::fill_epoch`]) and
/// insert through [`BlockCache::insert_if_fresh`], which re-checks the
/// epoch under the shard lock — so a completion racing an invalidation
/// can never re-populate the cache with pre-rewrite bytes, even through
/// a *different* [`CachedDevice`] sharing this cache. Epochs are
/// **per key**: invalidating key A never discards an in-flight fill for
/// key B (the PR-1 design used one cache-global generation, which did).
/// [`BlockCache::invalidate_all`] bumps per-segment flush epochs that
/// gate every in-flight fill, for bulk updates and index rebuilds; the
/// same mechanism caps the sparse per-key maps — on overflow a segment
/// trades its map for one flush bump, so memory stays bounded no matter
/// how many distinct blocks a long write stream rewrites.
pub struct BlockCache {
    shards: Vec<Mutex<LruShard>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Single-key invalidations performed (diagnostic counter).
    invalidations: AtomicU64,
    /// In-flight fills discarded because their key was invalidated (or
    /// the cache flushed) between submit and completion.
    stale_fills: AtomicU64,
    /// Blocks copied in from a sibling cache by [`BlockCache::warm_from`].
    warmed: AtomicU64,
}

impl BlockCache {
    /// Cache holding at most `capacity_blocks` blocks, striped over
    /// `num_shards` independently locked LRU segments. The capacity is
    /// exact: it is distributed over the segments as evenly as possible
    /// (both arguments are clamped to at least 1, and the segment count
    /// to at most the capacity).
    pub fn new(capacity_blocks: usize, num_shards: usize) -> Self {
        let capacity = capacity_blocks.max(1);
        let num_shards = num_shards.max(1).min(capacity);
        let base = capacity / num_shards;
        let extra = capacity % num_shards;
        Self {
            shards: (0..num_shards)
                .map(|s| Mutex::new(LruShard::new(base + usize::from(s < extra))))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            stale_fills: AtomicU64::new(0),
            warmed: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, key: u64) -> &Mutex<LruShard> {
        // Fibonacci hashing spreads block addresses (which share low
        // zero bits) across shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Look up a block, promoting it to most-recently-used. Counts a hit
    /// or a miss.
    pub fn get(&self, key: u64) -> Option<Arc<[u8]>> {
        let got = self.shard_for(key).lock().unwrap().get(key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Look up a block; on a miss, return the epoch a fill beginning
    /// now must present to [`BlockCache::insert_if_fresh`]. One lock
    /// acquisition for the whole miss path (a separate
    /// [`BlockCache::get`] + [`BlockCache::fill_epoch`] pair would lock
    /// the segment twice at exactly the moments of peak cache traffic).
    pub fn get_or_begin_fill(&self, key: u64) -> Result<Arc<[u8]>, FillEpoch> {
        let mut shard = self.shard_for(key).lock().unwrap();
        match shard.get(key) {
            Some(data) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(data)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Err(shard.fill_epoch(key))
            }
        }
    }

    /// Insert a block read from the device.
    pub fn insert(&self, key: u64, data: Arc<[u8]>) {
        if self.shard_for(key).lock().unwrap().insert(key, data) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot `key`'s invalidation epoch without a lookup (the
    /// miss path uses [`BlockCache::get_or_begin_fill`] instead, which
    /// returns the epoch from the same critical section as the miss).
    pub fn fill_epoch(&self, key: u64) -> FillEpoch {
        self.shard_for(key).lock().unwrap().fill_epoch(key)
    }

    /// Insert a miss fill only if `key` was not invalidated (and its
    /// segment not flushed) since `epoch` was taken. The check runs
    /// under the key's shard lock, so an invalidation concurrent with
    /// this call either bumps the epoch first (the fill is skipped) or
    /// removes the entry afterwards — a stale fill can never survive.
    /// Returns whether the fill was accepted.
    pub fn insert_if_fresh(&self, key: u64, data: Arc<[u8]>, epoch: FillEpoch) -> bool {
        let mut shard = self.shard_for(key).lock().unwrap();
        if !shard.is_fresh(key, epoch) {
            self.stale_fills.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        if shard.insert(key, data) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Drop one block and bump *its* epoch (call when its backing
    /// storage is rewritten, e.g. by [`Updater`]); in-flight fills for
    /// this key are discarded on completion, in-flight fills for every
    /// other key are untouched — unless the segment's epoch map
    /// overflows its bound, in which case the segment flushes its map
    /// and conservatively gates all of its in-flight fills. Counts
    /// neither a hit nor an eviction.
    ///
    /// [`Updater`]: crate::update::Updater
    pub fn invalidate(&self, key: u64) {
        let mut shard = self.shard_for(key).lock().unwrap();
        *shard.epochs.entry(key).or_insert(0) += 1;
        if shard.epochs.len() > shard.epoch_bound() {
            // Trade the oversized map for one segment flush: every
            // in-flight fill into this segment is discarded on
            // completion (conservative, cheap to retry), and the map
            // starts over.
            shard.flush += 1;
            shard.epochs = HashMap::new();
        }
        if let Some(&i) = shard.map.get(&key) {
            shard.unlink(i);
            shard.map.remove(&key);
            shard.nodes[i].data = Arc::from(&[][..]); // release the bytes now
            shard.free.push(i);
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every cached block and discard every in-flight fill (coarse
    /// invalidation after bulk updates or an index rebuild).
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            // The flush bump gates all in-flight fills into this
            // segment, so the per-key epoch map can be dropped with the
            // entries: a fill holding an older flush epoch fails the
            // freshness check even with its key epoch reset to 0.
            let (cap, flush) = (s.capacity, s.flush + 1);
            *s = LruShard::new(cap);
            s.flush = flush;
        }
    }

    /// Alias of [`BlockCache::invalidate_all`].
    pub fn clear(&self) {
        self.invalidate_all();
    }

    /// Single-key invalidations performed.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// In-flight miss fills discarded because their key was invalidated
    /// (or the cache flushed) between submit and completion.
    pub fn stale_fills(&self) -> u64 {
        self.stale_fills.load(Ordering::Relaxed)
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum blocks the cache will hold (sum over shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Independently locked LRU segments the key space is striped over.
    pub fn lock_shards(&self) -> usize {
        self.shards.len()
    }

    /// A fresh, empty cache with this cache's capacity and lock
    /// striping — the constructor replica groups use to give each
    /// replica of a shard its own private cache of identical shape.
    pub fn new_like(&self) -> Self {
        Self::new(self.capacity(), self.lock_shards())
    }

    /// The hottest (most-recently-used) cached blocks, up to
    /// `max_blocks`, as `(key, bytes)` pairs. Per-segment MRU lists are
    /// merged round-robin, so the result approximates the global
    /// recency order while holding each segment lock once. Counts
    /// neither hits nor misses.
    pub fn hottest(&self, max_blocks: usize) -> Vec<(u64, Arc<[u8]>)> {
        let per_segment: Vec<Vec<(u64, Arc<[u8]>)>> = self
            .shards
            .iter()
            .map(|m| {
                let s = m.lock().unwrap();
                let mut list = Vec::new();
                let mut i = s.head;
                while i != NIL && list.len() < max_blocks {
                    list.push((s.nodes[i].key, Arc::clone(&s.nodes[i].data)));
                    i = s.nodes[i].next;
                }
                list
            })
            .collect();
        let mut out = Vec::new();
        let mut rank = 0;
        while out.len() < max_blocks {
            let mut any = false;
            for seg in &per_segment {
                if let Some(entry) = seg.get(rank) {
                    out.push(entry.clone());
                    any = true;
                    if out.len() >= max_blocks {
                        break;
                    }
                }
            }
            if !any {
                break;
            }
            rank += 1;
        }
        out
    }

    /// Pre-fill this cache with up to `max_blocks` of `donor`'s hottest
    /// blocks (replica-aware cache warming: a fresh or unfenced replica
    /// copies a live sibling's working set instead of starting cold).
    /// Keys already present here are skipped; each copy is epoch-gated
    /// ([`BlockCache::insert_if_fresh`]) so an invalidation racing the
    /// warm pass discards the affected block instead of resurrecting
    /// pre-write bytes. Returns the number of blocks copied (also
    /// accumulated in [`BlockCache::warmed`]).
    ///
    /// The donor's entries are valid by construction (writers invalidate
    /// rewritten blocks in every replica cache), but the copy is not
    /// atomic with the donor's invalidation sweep: run warming while the
    /// shard has no active writer (the serving layer warms at session
    /// start, before its writers accept work).
    pub fn warm_from(&self, donor: &BlockCache, max_blocks: usize) -> usize {
        let mut copied = 0;
        for (key, data) in donor.hottest(max_blocks) {
            // Snapshot the target epoch *before* taking the bytes: an
            // invalidation of `key` between here and the insert bumps
            // the epoch and the stale copy is rejected.
            let epoch = self.fill_epoch(key);
            if self.shard_for(key).lock().unwrap().map.contains_key(&key) {
                continue; // already cached (counts no hit)
            }
            if self.insert_if_fresh(key, data, epoch) {
                copied += 1;
            }
        }
        self.warmed.fetch_add(copied as u64, Ordering::Relaxed);
        copied
    }

    /// Blocks copied in from sibling caches by [`BlockCache::warm_from`].
    pub fn warmed(&self) -> u64 {
        self.warmed.load(Ordering::Relaxed)
    }

    /// Lookups served from DRAM.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that went to the device.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Blocks displaced to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits over all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// A [`Device`] wrapper serving repeated block reads from a shared DRAM
/// [`BlockCache`].
///
/// Cache hits complete at the submission timestamp (a DRAM copy costs no
/// device time — the CPU-side cost is already charged by the engine's
/// `T_request` model); misses pass through to the inner device and fill
/// the cache when they complete. Only whole-block reads are cached;
/// other lengths (superblock, filter scans at open) bypass the cache.
///
/// **Writes are not observed.** The [`Device`] trait is read-only, so a
/// writer mutating the index underneath (e.g.
/// [`Updater`](crate::update::Updater)) must tell the cache: call
/// [`CachedDevice::invalidate`] per rewritten block, or
/// [`BlockCache::invalidate_all`] after a bulk update — otherwise
/// subsequent hits serve the pre-update bytes. Invalidating a block
/// also discards miss fills for *that block* that were in flight when
/// it happened (epoch-gated), on every device sharing the cache;
/// in-flight fills for other blocks are untouched.
pub struct CachedDevice<D: Device> {
    inner: D,
    cache: Arc<BlockCache>,
    block_size: u32,
    /// Completions served from DRAM, delivered on the next poll.
    hit_queue: Vec<IoCompletion>,
    /// tag → (block key, key epoch at submit) for in-flight misses
    /// (tags are unique per in-flight I/O: one engine context never has
    /// two same-kind I/Os for the same probe in flight). The epoch
    /// gates the fill: an invalidation of this key between submit and
    /// completion discards it.
    pending_fills: HashMap<u64, (u64, FillEpoch)>,
    /// This device's own cache hits (the shared [`BlockCache`] counters
    /// span every device on the cache; per-device stats must stay
    /// summable across workers).
    local_hits: u64,
    /// This device's own cache misses.
    local_misses: u64,
}

impl<D: Device> CachedDevice<D> {
    /// Wrap `inner`, serving `block_size`-byte aligned reads from
    /// `cache`.
    pub fn new(inner: D, cache: Arc<BlockCache>, block_size: u32) -> Self {
        assert!(block_size > 0);
        Self {
            inner,
            cache,
            block_size,
            hit_queue: Vec::new(),
            pending_fills: HashMap::new(),
            local_hits: 0,
            local_misses: 0,
        }
    }

    /// Convenience: wrap with a fresh private cache of
    /// `capacity_blocks` × [`BLOCK_SIZE`] blocks.
    ///
    /// [`BLOCK_SIZE`]: crate::layout::BLOCK_SIZE
    pub fn with_capacity(inner: D, capacity_blocks: usize) -> Self {
        Self::new(
            inner,
            Arc::new(BlockCache::new(capacity_blocks, 8)),
            crate::layout::BLOCK_SIZE as u32,
        )
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Drop the cached copy of the block containing `addr` (call after
    /// rewriting it on storage).
    pub fn invalidate(&self, addr: u64) {
        let aligned = addr - addr % u64::from(self.block_size);
        self.cache.invalidate(self.key_of(aligned));
    }

    #[inline]
    fn cacheable(&self, req: &IoRequest) -> bool {
        req.len == self.block_size && req.addr.is_multiple_of(u64::from(self.block_size))
    }

    #[inline]
    fn key_of(&self, addr: u64) -> u64 {
        addr / u64::from(self.block_size)
    }
}

impl<D: Device> Device for CachedDevice<D> {
    fn submit(&mut self, req: IoRequest, now: f64) {
        if self.cacheable(&req) {
            let key = self.key_of(req.addr);
            match self.cache.get_or_begin_fill(key) {
                Ok(data) => {
                    // DRAM hit: complete at the submission timestamp.
                    self.local_hits += 1;
                    self.hit_queue.push(IoCompletion {
                        tag: req.tag,
                        data: data.to_vec(),
                        time: now,
                    });
                    return;
                }
                Err(epoch) => {
                    self.local_misses += 1;
                    let prev = self.pending_fills.insert(req.tag, (key, epoch));
                    debug_assert!(prev.is_none(), "duplicate in-flight tag {:#x}", req.tag);
                }
            }
        }
        self.inner.submit(req, now);
    }

    fn poll(&mut self, now: f64, out: &mut Vec<IoCompletion>) {
        // Hits first: they completed at submission time, which is never
        // after `now`.
        out.append(&mut self.hit_queue);
        let start = out.len();
        self.inner.poll(now, out);
        for comp in &out[start..] {
            if let Some((key, epoch)) = self.pending_fills.remove(&comp.tag) {
                // Fills that raced an invalidation of their own key are
                // discarded (checked atomically with the insert): the
                // bytes were read before the rewrite and must not
                // re-enter. Fills for other keys are unaffected.
                self.cache
                    .insert_if_fresh(key, Arc::from(comp.data.as_slice()), epoch);
            }
        }
    }

    fn next_completion_time(&self) -> Option<f64> {
        let hit = self
            .hit_queue
            .iter()
            .map(|c| c.time)
            .fold(f64::INFINITY, f64::min);
        match self.inner.next_completion_time() {
            Some(t) => Some(t.min(hit)),
            None if !self.hit_queue.is_empty() => Some(hit),
            None => None,
        }
    }

    fn wait(&mut self) {
        if self.hit_queue.is_empty() {
            self.inner.wait();
        }
    }

    fn inflight(&self) -> usize {
        self.hit_queue.len() + self.inner.inflight()
    }

    fn read_sync(&mut self, addr: u64, len: u32) -> Vec<u8> {
        self.inner.read_sync(addr, len)
    }

    fn stats(&self) -> DeviceStats {
        // `completed`/`bytes` count only what the underlying device
        // served; DRAM hits are reported separately via the cache
        // counters. Hits/misses are *this device's own* lookups so that
        // summing worker stats never multiplies shared-cache totals.
        // Evictions are a property of the (possibly shared) cache, not
        // of any one device — read them from [`BlockCache::evictions`].
        let mut s = self.inner.stats();
        s.cache_hits = self.local_hits;
        s.cache_misses = self.local_misses;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::sim::{Backing, DeviceProfile, SimStorage};
    use crate::layout::BLOCK_SIZE;

    fn image(blocks: usize) -> Vec<u8> {
        let mut v = vec![0u8; blocks * BLOCK_SIZE];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (i / BLOCK_SIZE) as u8;
        }
        v
    }

    fn read_block(dev: &mut dyn Device, addr: u64, now: f64) -> (Vec<u8>, f64) {
        dev.submit(
            IoRequest {
                addr,
                len: BLOCK_SIZE as u32,
                tag: addr,
            },
            now,
        );
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1);
        (out.pop().unwrap().data, t)
    }

    #[test]
    fn hit_serves_same_bytes_instantly() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        let (cold, t_cold) = read_block(&mut dev, 512, 0.0);
        assert!(t_cold > 0.0, "cold read takes device time");
        let (warm, t_warm) = read_block(&mut dev, 512, t_cold);
        assert_eq!(cold, warm);
        assert_eq!(t_warm, t_cold, "hit completes at submission time");
        let s = dev.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.completed, 1, "only the cold read touched the device");
    }

    #[test]
    fn unaligned_or_oversize_reads_bypass_cache() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        dev.submit(
            IoRequest {
                addr: 100, // unaligned
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(dev.stats().cache_hits + dev.stats().cache_misses, 0);
        assert!(dev.cache().is_empty());
    }

    #[test]
    fn capacity_never_exceeded_and_evictions_counted() {
        let cache = BlockCache::new(8, 2);
        for i in 0..100u64 {
            cache.insert(i, Arc::from(vec![0u8; 4].as_slice()));
            assert!(
                cache.len() <= cache.capacity(),
                "len {} at i {i}",
                cache.len()
            );
        }
        assert!(cache.evictions() > 0);
        assert_eq!(cache.len() as u64 + cache.evictions(), 100);
    }

    #[test]
    fn lru_order_within_shard() {
        // Single shard so the eviction order is the global LRU order.
        let cache = BlockCache::new(2, 1);
        cache.insert(1, Arc::from([1u8].as_slice()));
        cache.insert(2, Arc::from([2u8].as_slice()));
        assert!(cache.get(1).is_some()); // 1 becomes MRU
        cache.insert(3, Arc::from([3u8].as_slice())); // evicts 2
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn capacity_is_exact_even_when_striped() {
        let cache = BlockCache::new(10, 8);
        assert_eq!(cache.capacity(), 10);
        for i in 0..200u64 {
            cache.insert(i, Arc::from(vec![0u8; 1].as_slice()));
            assert!(cache.len() <= 10, "len {} > 10", cache.len());
        }
    }

    #[test]
    fn invalidate_drops_stale_block_and_clear_empties() {
        let cache = BlockCache::new(8, 2);
        cache.insert(1, Arc::from([1u8].as_slice()));
        cache.insert(2, Arc::from([2u8].as_slice()));
        assert!(cache.get(1).is_some());
        cache.invalidate(1);
        assert!(cache.get(1).is_none(), "invalidated block still served");
        cache.invalidate(99); // unknown key: no-op
        assert!(cache.get(2).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(2).is_none());
        // Invalidation and clearing count neither hits nor evictions.
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cached_device_invalidate_realigns_addr() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        let (before, t) = read_block(&mut dev, 1024, 0.0);
        // Invalidate via an interior address of the same block.
        dev.invalidate(1024 + 77);
        let (after, _) = read_block(&mut dev, 1024, t);
        assert_eq!(before, after);
        let s = dev.stats();
        assert_eq!(s.cache_hits, 0, "second read had to miss");
        assert_eq!(s.cache_misses, 2);
    }

    #[test]
    fn invalidation_discards_in_flight_fill() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        // Miss in flight…
        dev.submit(
            IoRequest {
                addr: 512,
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        // …then the block is rewritten and invalidated before the read
        // completes.
        dev.invalidate(512);
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1, "completion still delivered to the engine");
        assert!(
            dev.cache().is_empty(),
            "stale in-flight fill must not re-populate the cache"
        );
        // The next read goes to the device again (fresh bytes).
        let (_, _) = read_block(&mut dev, 512, t);
        assert_eq!(dev.stats().cache_hits, 0);
    }

    /// The per-key-epoch acceptance scenario: an in-flight miss fill for
    /// block B must complete, enter the cache and serve the next read as
    /// a hit even though an unrelated block A was invalidated while the
    /// fill was in flight. The PR-1 cache-global generation provably
    /// fails this (any invalidation discarded every in-flight fill); the
    /// single lock shard below makes A and B share one mutex, so even a
    /// per-lock-shard epoch would fail it.
    #[test]
    fn in_flight_fill_for_other_key_survives_invalidation() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let cache = Arc::new(BlockCache::new(4, 1));
        let mut dev = CachedDevice::new(sim, Arc::clone(&cache), BLOCK_SIZE as u32);
        // Miss for block B (addr 1024) in flight…
        dev.submit(
            IoRequest {
                addr: 1024,
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        // …while block A (addr 512) is rewritten and invalidated.
        dev.invalidate(512);
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            cache.len(),
            1,
            "fill for B must survive the invalidation of A"
        );
        assert_eq!(cache.stale_fills(), 0);
        assert_eq!(cache.invalidations(), 1);
        // The next read of B is a DRAM hit.
        let (_, _) = read_block(&mut dev, 1024, t);
        assert_eq!(dev.stats().cache_hits, 1);
        assert_eq!(
            dev.stats().completed,
            1,
            "only the first read hit the device"
        );
    }

    #[test]
    fn stale_fill_counted_and_discarded_per_key() {
        let cache = BlockCache::new(8, 1);
        let ea = cache.fill_epoch(1);
        let eb = cache.fill_epoch(2);
        cache.invalidate(1);
        assert!(
            !cache.insert_if_fresh(1, Arc::from([0u8].as_slice()), ea),
            "fill for the invalidated key must be rejected"
        );
        assert!(
            cache.insert_if_fresh(2, Arc::from([2u8].as_slice()), eb),
            "fill for an unrelated key must be accepted"
        );
        assert_eq!(cache.stale_fills(), 1);
        // A fresh epoch taken after the invalidation fills fine.
        let ea2 = cache.fill_epoch(1);
        assert!(cache.insert_if_fresh(1, Arc::from([1u8].as_slice()), ea2));
        // invalidate_all gates every epoch taken before it, even for
        // keys never individually invalidated.
        let e3 = cache.fill_epoch(3);
        cache.invalidate_all();
        assert!(!cache.insert_if_fresh(3, Arc::from([3u8].as_slice()), e3));
        assert!(cache.is_empty());
        assert_eq!(cache.stale_fills(), 2);
    }

    /// Epoch-map overflow: invalidating more distinct keys than the
    /// segment bound trades the map for one segment flush — fills that
    /// were in flight are conservatively discarded, the map stays
    /// bounded, and the cache keeps serving afterwards.
    #[test]
    fn epoch_map_overflow_flushes_segment_conservatively() {
        let cache = BlockCache::new(4, 1); // bound = max(4*4, 1024) = 1024
        let victim_key = 2_000_000u64;
        let epoch = cache.fill_epoch(victim_key);
        for k in 0..1100u64 {
            cache.invalidate(k);
        }
        assert!(
            !cache.insert_if_fresh(victim_key, Arc::from([1u8].as_slice()), epoch),
            "fill spanning an epoch-map overflow must be discarded"
        );
        assert_eq!(cache.stale_fills(), 1);
        // A fresh fill after the overflow is accepted and served.
        let epoch = cache.fill_epoch(victim_key);
        assert!(cache.insert_if_fresh(victim_key, Arc::from([2u8].as_slice()), epoch));
        assert!(cache.get(victim_key).is_some());
    }

    #[test]
    fn warm_from_copies_mru_first_and_is_epoch_gated() {
        let donor = BlockCache::new(8, 1);
        for k in 0..6u64 {
            donor.insert(k, Arc::from([k as u8].as_slice()));
        }
        donor.get(2); // 2 becomes MRU
        let hot = donor.hottest(3);
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0].0, 2, "MRU block leads the hottest list");

        let fresh = donor.new_like();
        let copied = fresh.warm_from(&donor, 4);
        assert_eq!(copied, 4);
        assert_eq!(fresh.warmed(), 4);
        assert_eq!(fresh.len(), 4);
        // Warmed blocks serve as hits with the donor's exact bytes.
        assert_eq!(fresh.get(2).unwrap().as_ref(), &[2u8][..]);
        // Re-warming skips blocks already present.
        assert_eq!(fresh.warm_from(&donor, 4), 0);
        // A block invalidated in the target mid-warm stays out: the copy
        // is epoch-gated exactly like a miss fill.
        let cold = donor.new_like();
        let epoch = cold.fill_epoch(5);
        cold.invalidate(5);
        assert!(!cold.insert_if_fresh(5, Arc::from([9u8].as_slice()), epoch));
    }

    #[test]
    fn hottest_caps_and_handles_empty() {
        let cache = BlockCache::new(16, 4);
        assert!(cache.hottest(8).is_empty());
        for k in 0..10u64 {
            cache.insert(k, Arc::from([0u8].as_slice()));
        }
        assert_eq!(cache.hottest(4).len(), 4);
        assert_eq!(cache.hottest(100).len(), 10);
    }

    #[test]
    fn counters_consistent() {
        // Capacity exceeds the working set so the cyclic scan hits after
        // the first pass (an LRU thrashes on cycles larger than itself).
        let cache = BlockCache::new(8, 2);
        let mut expect_hits = 0;
        let mut expect_misses = 0;
        for i in 0..50u64 {
            let key = i % 6;
            if cache.get(key).is_some() {
                expect_hits += 1;
            } else {
                expect_misses += 1;
                cache.insert(key, Arc::from(key.to_le_bytes().as_slice()));
            }
        }
        assert_eq!(cache.hits(), expect_hits);
        assert_eq!(cache.misses(), expect_misses);
        assert_eq!(cache.hits() + cache.misses(), 50);
        assert!(cache.hit_rate() > 0.0 && cache.hit_rate() < 1.0);
    }

    #[test]
    fn shared_cache_across_devices() {
        let cache = Arc::new(BlockCache::new(64, 4));
        let mk = || SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut a = CachedDevice::new(mk(), Arc::clone(&cache), BLOCK_SIZE as u32);
        let mut b = CachedDevice::new(mk(), Arc::clone(&cache), BLOCK_SIZE as u32);
        let (bytes_a, _) = read_block(&mut a, 1024, 0.0); // miss, fills shared cache
        let (bytes_b, _) = read_block(&mut b, 1024, 0.0); // hit via the other device
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
