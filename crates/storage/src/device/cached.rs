//! DRAM block cache in front of any [`Device`].
//!
//! E2LSHoS keeps the hash index on storage to scale past DRAM, but real
//! query streams are skewed: hot buckets (popular hash prefixes, repeated
//! or clustered queries) are read over and over. [`CachedDevice`] wraps
//! any device with a sharded cache over 512-byte blocks so repeated
//! reads of hash-table slots and bucket blocks are served from DRAM with
//! zero device time, while cold reads pass through and fill the cache on
//! completion.
//!
//! The cache itself ([`BlockCache`]) is shared: the serving layer hands
//! one `Arc<BlockCache>` per dataset shard to every worker driving that
//! shard, so a block fetched by one worker is a DRAM hit for all of them.
//! Shard-level mutexes keep cross-worker contention low (each lock guards
//! `1/num_shards` of the key space).
//!
//! ## Replacement policies
//!
//! Two policies are available through [`CachePolicy`]:
//!
//! * [`CachePolicy::Lru`] (the default) — one recency list per lock
//!   shard, admit everything. Bit-exact with the original PR-1 cache.
//! * [`CachePolicy::TinyLfu`] — W-TinyLFU: a small LRU *window*
//!   (~1% of capacity) absorbs arrivals; overflow candidates are
//!   admitted into a segmented main area (probation + protected) only
//!   when a 4-bit count-min frequency sketch ([`CmSketch`], with a
//!   doorkeeper bloom filter and periodic halving) estimates them hotter
//!   than the eviction victim. One-hit-wonder blocks from scans and
//!   churn die in the window instead of displacing proven-hot blocks.
//!   Optionally the capacity is **region-partitioned**: hash-table-slot
//!   blocks (addresses below [`TinyLfuConfig::region_boundary`]) and
//!   bucket-chain blocks each get their own budget, so a deep chain walk
//!   can never flush the small, ultra-hot table blocks.
//!
//! Hits, misses, evictions, invalidations, discarded stale fills,
//! admission rejections, per-region hits/misses and coalesced reads are
//! surfaced through the corresponding [`DeviceStats`] fields, so every
//! report that prints device statistics can report cache effectiveness
//! too.
//!
//! Writers (the online update path) invalidate exactly the blocks they
//! rewrite; per-key epochs make sure a racing miss fill for an
//! invalidated block is discarded while fills for unrelated blocks
//! survive (see [`BlockCache`]). [`CachedDevice`] can additionally
//! **coalesce** concurrent misses on one key into a single device read
//! (single-flight): waiters park on the leader's in-flight fill and
//! receive its bytes at the leader's completion time.

use super::{Device, DeviceStats, IoCompletion, IoRequest};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const NIL: usize = usize::MAX;

/// Region indices: hash-table-slot blocks vs bucket-chain blocks.
const TABLE: usize = 0;
const BUCKET: usize = 1;

/// Segment indices within a region.
const SEG_WINDOW: usize = 0;
const SEG_PROBATION: usize = 1;
const SEG_PROTECTED: usize = 2;

/// Replacement/admission policy of a [`BlockCache`].
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum CachePolicy {
    /// Plain sharded LRU, admit everything (the PR-1 cache, bit-exact).
    #[default]
    Lru,
    /// W-TinyLFU: frequency-gated admission with a recency window, plus
    /// optional table/bucket region partitioning.
    TinyLfu(TinyLfuConfig),
}

/// Tuning knobs of [`CachePolicy::TinyLfu`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TinyLfuConfig {
    /// Fraction of each region's capacity given to the admission window
    /// (clamped to at least one block). Caffeine's default is 1%.
    pub window_fraction: f64,
    /// Fraction of the main (non-window) area reserved for the
    /// protected segment; blocks re-referenced while on probation are
    /// promoted into it. Caffeine's default is 80%.
    pub protected_fraction: f64,
    /// First bucket-region block key (block units, i.e.
    /// `heap_base / BLOCK_SIZE`): keys below it are table-region, keys
    /// at or above it bucket-region. 0 disables partitioning (single
    /// region) — the serving layer fills this in from the shard's
    /// geometry.
    pub region_boundary: u64,
    /// Fraction of total capacity budgeted to the table region when
    /// `region_boundary > 0` (clamped so both regions keep at least one
    /// block, and to the actual number of table blocks striped onto
    /// each lock shard).
    pub table_fraction: f64,
}

impl Default for TinyLfuConfig {
    fn default() -> Self {
        Self {
            window_fraction: 0.01,
            protected_fraction: 0.8,
            region_boundary: 0,
            table_fraction: 0.2,
        }
    }
}

/// A 4-bit count-min frequency sketch with a doorkeeper bloom filter and
/// periodic halving (TinyLFU aging), deterministic in its inputs.
///
/// The first occurrence of a key lands in the doorkeeper; repeats
/// increment four 4-bit counters (saturating at 15). When the number of
/// additions reaches the sample period (10× the counter count) every
/// counter is halved and the doorkeeper cleared, so old popularity decays
/// and the estimate tracks *recent* frequency. [`CmSketch::estimate`]
/// returns the counter minimum plus one when the doorkeeper holds the
/// key — an upper bound on the true (post-halving) count.
pub struct CmSketch {
    /// 4-bit counters packed 16 per word.
    table: Vec<u64>,
    /// Counter-index mask (`counters − 1`, power of two).
    mask: u64,
    /// Doorkeeper bloom bits.
    doorkeeper: Vec<u64>,
    /// Doorkeeper bit-index mask (power-of-two bit count − 1).
    dk_mask: u64,
    additions: u64,
    sample_period: u64,
}

impl CmSketch {
    const SEEDS: [u64; 4] = [
        0xA076_1D64_78BD_642F,
        0xE703_7ED1_A0B4_28DB,
        0x8EBC_6AF0_9C88_C6E3,
        0x5899_65CC_7537_4CC3,
    ];

    /// Sketch sized for roughly `capacity` distinct hot keys (at least
    /// 64 counters, rounded up to a power of two).
    pub fn new(capacity: usize) -> Self {
        let counters = capacity.max(64).next_power_of_two();
        let dk_bits = (counters * 8).next_power_of_two();
        Self {
            table: vec![0; counters / 16],
            mask: (counters - 1) as u64,
            doorkeeper: vec![0; dk_bits / 64],
            dk_mask: (dk_bits - 1) as u64,
            additions: 0,
            sample_period: 10 * counters as u64,
        }
    }

    #[inline]
    fn spread(key: u64, seed: u64) -> u64 {
        let mut h = key ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^ (h >> 33)
    }

    #[inline]
    fn counter_at(&self, key: u64, seed: u64) -> (usize, u32) {
        let c = Self::spread(key, seed) & self.mask;
        ((c / 16) as usize, ((c % 16) * 4) as u32)
    }

    fn dk_contains(&self, key: u64) -> bool {
        Self::SEEDS[..2].iter().all(|&s| {
            let b = Self::spread(key, s.rotate_left(17)) & self.dk_mask;
            self.doorkeeper[(b / 64) as usize] & (1 << (b % 64)) != 0
        })
    }

    fn dk_set(&mut self, key: u64) {
        for &s in &Self::SEEDS[..2] {
            let b = Self::spread(key, s.rotate_left(17)) & self.dk_mask;
            self.doorkeeper[(b / 64) as usize] |= 1 << (b % 64);
        }
    }

    /// Record one occurrence of `key`. Triggers a halving pass when the
    /// additions counter reaches the sample period.
    pub fn increment(&mut self, key: u64) {
        if self.dk_contains(key) {
            for &seed in &Self::SEEDS {
                let (w, shift) = self.counter_at(key, seed);
                if (self.table[w] >> shift) & 0xF < 15 {
                    self.table[w] += 1 << shift;
                }
            }
        } else {
            self.dk_set(key);
        }
        self.additions += 1;
        if self.additions >= self.sample_period {
            self.halve();
        }
    }

    /// Estimated occurrence count of `key` since the last few halvings:
    /// minimum over the four counters, plus one when the doorkeeper
    /// holds the key.
    pub fn estimate(&self, key: u64) -> u32 {
        let mut min = u32::MAX;
        for &seed in &Self::SEEDS {
            let (w, shift) = self.counter_at(key, seed);
            min = min.min(((self.table[w] >> shift) & 0xF) as u32);
        }
        min + u32::from(self.dk_contains(key))
    }

    /// The aging step: halve every counter and clear the doorkeeper
    /// (public so tests and benches can force an aging boundary).
    pub fn halve(&mut self) {
        for w in &mut self.table {
            *w = (*w >> 1) & 0x7777_7777_7777_7777;
        }
        self.doorkeeper.iter_mut().for_each(|w| *w = 0);
        self.additions /= 2;
    }

    /// Occurrences recorded since roughly the last halving.
    pub fn additions(&self) -> u64 {
        self.additions
    }
}

/// One intrusive doubly-linked list over the shard's node slab.
#[derive(Clone, Copy)]
struct Dll {
    head: usize,
    tail: usize,
    len: usize,
}

impl Dll {
    fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// One capacity region (table or bucket) of a lock shard: window,
/// probation and protected segments with their budgets.
struct Region {
    lists: [Dll; 3],
    total_cap: usize,
    window_cap: usize,
    protected_cap: usize,
}

impl Region {
    fn empty() -> Self {
        Self {
            lists: [Dll::new(); 3],
            total_cap: 0,
            window_cap: 0,
            protected_cap: 0,
        }
    }

    /// Plain LRU: the whole region is one window list.
    fn lru(cap: usize) -> Self {
        Self {
            lists: [Dll::new(); 3],
            total_cap: cap,
            window_cap: cap,
            protected_cap: 0,
        }
    }

    fn tiny_lfu(cap: usize, window_fraction: f64, protected_fraction: f64) -> Self {
        let window = (((cap as f64) * window_fraction).round() as usize).clamp(1, cap);
        let main = cap - window;
        let protected = ((main as f64) * protected_fraction).floor() as usize;
        Self {
            lists: [Dll::new(); 3],
            total_cap: cap,
            window_cap: window,
            protected_cap: protected,
        }
    }

    fn len(&self) -> usize {
        self.lists.iter().map(|l| l.len).sum()
    }

    fn main_cap(&self) -> usize {
        self.total_cap - self.window_cap
    }
}

struct Node {
    key: u64,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
    region: u8,
    seg: u8,
}

/// Evictions and admission rejections one insert caused (folded into the
/// cache-level counters outside the shard lock).
#[derive(Default, Clone, Copy)]
struct InsertOutcome {
    evicted: u64,
    rejected: u64,
}

/// One lock shard: a slab of nodes shared by up to two regions × three
/// segments, the policy's frequency sketch, and the per-key invalidation
/// epochs.
struct CacheShard {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    regions: [Region; 2],
    /// `Some` under TinyLFU (the admission filter), `None` under LRU.
    sketch: Option<CmSketch>,
    /// Budget-partition boundary in block units (0 = single region).
    boundary: u64,
    capacity: usize,
    /// Per-key invalidation counters (sparse: only keys invalidated
    /// since this segment's last flush appear). Guarded by the same
    /// mutex as the entries, so epoch reads/bumps are atomic with entry
    /// removal and with fill insertion. Bounded: when the map outgrows
    /// [`CacheShard::epoch_bound`], the segment's `flush` epoch is
    /// bumped and the map dropped — every in-flight fill into this
    /// segment is then conservatively discarded, which is the old
    /// cache-global behaviour for one rare moment instead of on every
    /// write.
    epochs: HashMap<u64, u64>,
    /// This segment's flush epoch: bumped by
    /// [`BlockCache::invalidate_all`] and by epoch-map overflow; gates
    /// every in-flight fill into the segment.
    flush: u64,
}

impl CacheShard {
    fn new(capacity: usize, policy: CachePolicy, table_blocks_hint: usize) -> Self {
        let mut regions = [Region::empty(), Region::empty()];
        let mut sketch = None;
        let mut boundary = 0u64;
        match policy {
            CachePolicy::Lru => {
                regions[BUCKET] = Region::lru(capacity);
            }
            CachePolicy::TinyLfu(cfg) => {
                let wf = cfg.window_fraction.clamp(0.0, 1.0);
                let pf = cfg.protected_fraction.clamp(0.0, 1.0);
                let tf = cfg.table_fraction.clamp(0.0, 1.0);
                let partitioned = cfg.region_boundary > 0 && tf > 0.0 && capacity >= 2;
                if partitioned {
                    let want = ((capacity as f64) * tf).round() as usize;
                    let table_cap = want.clamp(1, capacity - 1).min(table_blocks_hint.max(1));
                    regions[TABLE] = Region::tiny_lfu(table_cap, wf, pf);
                    regions[BUCKET] = Region::tiny_lfu(capacity - table_cap, wf, pf);
                    boundary = cfg.region_boundary;
                } else {
                    regions[BUCKET] = Region::tiny_lfu(capacity, wf, pf);
                }
                sketch = Some(CmSketch::new(capacity));
            }
        }
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            regions,
            sketch,
            boundary,
            capacity,
            epochs: HashMap::new(),
            flush: 0,
        }
    }

    /// Epoch snapshot for a fill of `key` beginning now.
    fn fill_epoch(&self, key: u64) -> FillEpoch {
        FillEpoch {
            key_epoch: self.epochs.get(&key).copied().unwrap_or(0),
            flush_epoch: self.flush,
        }
    }

    /// True when `epoch` is still current for `key`.
    fn is_fresh(&self, key: u64, epoch: FillEpoch) -> bool {
        self.fill_epoch(key) == epoch
    }

    /// Cap on the sparse epoch map before it is traded for a segment
    /// flush (memory bound: a long-lived cache under a sustained write
    /// stream would otherwise accumulate one entry per distinct block
    /// ever invalidated).
    fn epoch_bound(&self) -> usize {
        (self.capacity * 4).max(1024)
    }

    #[inline]
    fn region_of(&self, key: u64) -> usize {
        if self.boundary > 0 && key < self.boundary {
            TABLE
        } else {
            BUCKET
        }
    }

    fn unlink(&mut self, i: usize) {
        let (r, seg) = (self.nodes[i].region as usize, self.nodes[i].seg as usize);
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.regions[r].lists[seg].head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.regions[r].lists[seg].tail = prev;
        }
        self.regions[r].lists[seg].len -= 1;
    }

    fn push_front(&mut self, i: usize, r: usize, seg: usize) {
        self.nodes[i].region = r as u8;
        self.nodes[i].seg = seg as u8;
        let head = self.regions[r].lists[seg].head;
        self.nodes[i].prev = NIL;
        self.nodes[i].next = head;
        if head != NIL {
            self.nodes[head].prev = i;
        }
        self.regions[r].lists[seg].head = i;
        if self.regions[r].lists[seg].tail == NIL {
            self.regions[r].lists[seg].tail = i;
        }
        self.regions[r].lists[seg].len += 1;
    }

    fn alloc(&mut self, key: u64, data: Arc<[u8]>) -> usize {
        let node = Node {
            key,
            data,
            prev: NIL,
            next: NIL,
            region: BUCKET as u8,
            seg: SEG_WINDOW as u8,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Unlink a resident entry and return its slab slot to the free
    /// list (eviction and invalidation both end here).
    fn remove_node(&mut self, i: usize) {
        self.unlink(i);
        self.map.remove(&self.nodes[i].key);
        self.nodes[i].data = Arc::from(&[][..]); // release the bytes now
        self.free.push(i);
    }

    /// Remove `key` if resident (invalidation path).
    fn remove_key(&mut self, key: u64) {
        if let Some(&i) = self.map.get(&key) {
            self.remove_node(i);
        }
    }

    fn freq(&self, key: u64) -> u32 {
        self.sketch.as_ref().map_or(0, |s| s.estimate(key))
    }

    /// Record one access in the admission filter (TinyLFU only).
    fn record_access(&mut self, key: u64) {
        if let Some(s) = &mut self.sketch {
            s.increment(key);
        }
    }

    /// A hit's segment transition.
    fn promote(&mut self, i: usize) {
        let r = self.nodes[i].region as usize;
        if self.sketch.is_none() {
            // Plain LRU: refresh recency in the single window list.
            self.unlink(i);
            self.push_front(i, r, SEG_WINDOW);
            return;
        }
        match self.nodes[i].seg as usize {
            // Window and protected hits refresh recency in place.
            SEG_WINDOW => {
                self.unlink(i);
                self.push_front(i, r, SEG_WINDOW);
            }
            SEG_PROTECTED => {
                self.unlink(i);
                self.push_front(i, r, SEG_PROTECTED);
            }
            // A probation hit proves reuse: promote into protected,
            // demoting that segment's LRU back to probation when over
            // budget (it keeps a second chance instead of dying).
            _ => {
                self.unlink(i);
                self.push_front(i, r, SEG_PROTECTED);
                while self.regions[r].lists[SEG_PROTECTED].len > self.regions[r].protected_cap {
                    let demote = self.regions[r].lists[SEG_PROTECTED].tail;
                    self.unlink(demote);
                    self.push_front(demote, r, SEG_PROBATION);
                }
            }
        }
    }

    /// Look up a block, promoting it and (under TinyLFU) recording the
    /// access in the frequency sketch — also on a miss, so the later
    /// insert of the fill competes with an up-to-date estimate.
    fn get(&mut self, key: u64) -> Option<Arc<[u8]>> {
        self.record_access(key);
        let &i = self.map.get(&key)?;
        self.promote(i);
        Some(Arc::clone(&self.nodes[i].data))
    }

    /// Look up a block without promoting it, touching the sketch or the
    /// counters (scan reads — see [`BlockCache::peek`]).
    fn peek(&self, key: u64) -> Option<Arc<[u8]>> {
        self.map.get(&key).map(|&i| Arc::clone(&self.nodes[i].data))
    }

    fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Insert (or refresh) a block. `privileged` inserts (replica cache
    /// warming) bypass the frequency gate: the donated block goes
    /// straight to probation MRU, so a cold sketch cannot reject a
    /// donor's proven-hot working set.
    fn insert(&mut self, key: u64, data: Arc<[u8]>, privileged: bool) -> InsertOutcome {
        let mut out = InsertOutcome::default();
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].data = data;
            self.promote(i);
            return out;
        }
        if self.sketch.is_none() {
            // Plain LRU, bit-exact with the original cache: evict the
            // single list's tail when full, then insert at MRU.
            if self.map.len() >= self.capacity {
                let victim = self.regions[BUCKET].lists[SEG_WINDOW].tail;
                debug_assert_ne!(victim, NIL);
                self.remove_node(victim);
                out.evicted += 1;
            }
            let i = self.alloc(key, data);
            self.map.insert(key, i);
            self.push_front(i, BUCKET, SEG_WINDOW);
            return out;
        }
        let r = self.region_of(key);
        if self.regions[r].total_cap == 0 {
            out.rejected += 1;
            return out;
        }
        if privileged {
            // Warmed blocks carry a sibling's recency, not this cache's
            // history: seed the sketch so they survive the first
            // admission contest after warming.
            self.record_access(key);
            let i = self.alloc(key, data);
            self.map.insert(key, i);
            self.push_front(i, r, SEG_PROBATION);
            while self.regions[r].len() > self.regions[r].total_cap {
                let v = self.coldest_excluding(r, i);
                self.remove_node(v);
                out.evicted += 1;
                if v == i {
                    break;
                }
            }
            return out;
        }
        let i = self.alloc(key, data);
        self.map.insert(key, i);
        self.push_front(i, r, SEG_WINDOW);
        self.rebalance_window(r, &mut out);
        out
    }

    /// Drain window overflow into the main area: candidates are admitted
    /// while the main area has room, and afterwards only when the sketch
    /// estimates them strictly hotter than the probation-tail victim
    /// (the W-TinyLFU admission contest).
    fn rebalance_window(&mut self, r: usize, out: &mut InsertOutcome) {
        while self.regions[r].lists[SEG_WINDOW].len > self.regions[r].window_cap {
            let cand = self.regions[r].lists[SEG_WINDOW].tail;
            if self.regions[r].main_cap() == 0 {
                // Degenerate region (window == whole budget): the
                // window tail is simply the LRU victim.
                self.remove_node(cand);
                out.evicted += 1;
                continue;
            }
            let main_len =
                self.regions[r].lists[SEG_PROBATION].len + self.regions[r].lists[SEG_PROTECTED].len;
            if main_len < self.regions[r].main_cap() {
                self.unlink(cand);
                self.push_front(cand, r, SEG_PROBATION);
                continue;
            }
            let victim = if self.regions[r].lists[SEG_PROBATION].tail != NIL {
                self.regions[r].lists[SEG_PROBATION].tail
            } else {
                self.regions[r].lists[SEG_PROTECTED].tail
            };
            debug_assert_ne!(victim, NIL);
            if self.freq(self.nodes[cand].key) > self.freq(self.nodes[victim].key) {
                self.remove_node(victim);
                out.evicted += 1;
                self.unlink(cand);
                self.push_front(cand, r, SEG_PROBATION);
            } else {
                self.remove_node(cand);
                out.rejected += 1;
            }
        }
    }

    /// Coldest resident entry of region `r` other than `exclude`
    /// (window LRU first, then probation, then protected); `exclude`
    /// itself when it is the only entry left.
    fn coldest_excluding(&self, r: usize, exclude: usize) -> usize {
        for seg in [SEG_WINDOW, SEG_PROBATION, SEG_PROTECTED] {
            let mut t = self.regions[r].lists[seg].tail;
            while t != NIL {
                if t != exclude {
                    return t;
                }
                t = self.nodes[t].prev;
            }
        }
        exclude
    }

    /// Cached blocks of this shard, hottest first: protected segments
    /// (proven reuse), then probation, then the recency window, table
    /// region before bucket region within each tier, MRU→LRU within
    /// each list. Under LRU everything lives in one window list, so
    /// this is exactly the recency order.
    fn hot_blocks(&self, max: usize) -> Vec<(u64, Arc<[u8]>)> {
        let mut list = Vec::new();
        for seg in [SEG_PROTECTED, SEG_PROBATION, SEG_WINDOW] {
            for r in [TABLE, BUCKET] {
                let mut i = self.regions[r].lists[seg].head;
                while i != NIL && list.len() < max {
                    list.push((self.nodes[i].key, Arc::clone(&self.nodes[i].data)));
                    i = self.nodes[i].next;
                }
            }
        }
        list
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Snapshot of a key's invalidation state, taken when a miss read is
/// submitted and checked (under the key's shard lock) when the fill
/// lands. A fill is discarded when *that key* was invalidated in
/// between, or when the whole cache was flushed — invalidations of
/// other keys do not touch it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillEpoch {
    /// The key's per-key invalidation count at submit.
    key_epoch: u64,
    /// The key's lock-segment flush count at submit (bumped by
    /// whole-cache invalidation and by epoch-map overflow).
    flush_epoch: u64,
}

/// A sharded cache over fixed-address blocks, shareable across worker
/// threads, with a pluggable replacement policy ([`CachePolicy`]).
///
/// ## Invalidation epochs
///
/// A writer rewriting a block calls [`BlockCache::invalidate`], which
/// drops the cached entry *and* bumps that key's epoch. Miss fills
/// snapshot the key's epoch at submit ([`BlockCache::fill_epoch`]) and
/// insert through [`BlockCache::insert_if_fresh`], which re-checks the
/// epoch under the shard lock — so a completion racing an invalidation
/// can never re-populate the cache with pre-rewrite bytes, even through
/// a *different* [`CachedDevice`] sharing this cache. Epochs are
/// **per key**: invalidating key A never discards an in-flight fill for
/// key B (the PR-1 design used one cache-global generation, which did).
/// [`BlockCache::invalidate_all`] bumps per-segment flush epochs that
/// gate every in-flight fill, for bulk updates and index rebuilds; the
/// same mechanism caps the sparse per-key maps — on overflow a segment
/// trades its map for one flush bump, so memory stays bounded no matter
/// how many distinct blocks a long write stream rewrites.
pub struct BlockCache {
    shards: Vec<Mutex<CacheShard>>,
    capacity: usize,
    policy: CachePolicy,
    /// Table/bucket split used for the per-region hit/miss counters
    /// (block units; 0 = everything counts as bucket-region).
    counter_boundary: u64,
    /// Per-lock-shard table-block estimate, kept for shard rebuilds.
    table_hint: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Single-key invalidations performed (diagnostic counter).
    invalidations: AtomicU64,
    /// In-flight fills discarded because their key was invalidated (or
    /// the cache flushed) between submit and completion.
    stale_fills: AtomicU64,
    /// Blocks copied in from a sibling cache by [`BlockCache::warm_from`].
    warmed: AtomicU64,
    /// Window candidates the TinyLFU filter refused to admit into the
    /// main area (always 0 under LRU).
    admission_rejected: AtomicU64,
    /// Lookups of table-region blocks (keys below the region boundary).
    table_hits: AtomicU64,
    table_misses: AtomicU64,
    /// Lookups of bucket-region blocks (everything else).
    bucket_hits: AtomicU64,
    bucket_misses: AtomicU64,
    /// Miss reads that parked on another read's in-flight fill instead
    /// of touching the device ([`CachedDevice`] single-flight
    /// coalescing).
    coalesced: AtomicU64,
}

impl BlockCache {
    /// LRU cache holding at most `capacity_blocks` blocks, striped over
    /// `num_shards` independently locked segments. The capacity is
    /// exact: it is distributed over the segments as evenly as possible
    /// (both arguments are clamped to at least 1, and the segment count
    /// to at most the capacity).
    pub fn new(capacity_blocks: usize, num_shards: usize) -> Self {
        Self::with_policy(capacity_blocks, num_shards, CachePolicy::Lru)
    }

    /// Like [`BlockCache::new`] with an explicit replacement policy.
    pub fn with_policy(capacity_blocks: usize, num_shards: usize, policy: CachePolicy) -> Self {
        let capacity = capacity_blocks.max(1);
        let num_shards = num_shards.max(1).min(capacity);
        let base = capacity / num_shards;
        let extra = capacity % num_shards;
        let counter_boundary = match policy {
            CachePolicy::TinyLfu(cfg) => cfg.region_boundary,
            CachePolicy::Lru => 0,
        };
        let table_hint = if counter_boundary == 0 {
            0
        } else {
            (counter_boundary as usize).div_ceil(num_shards)
        };
        Self {
            shards: (0..num_shards)
                .map(|s| {
                    Mutex::new(CacheShard::new(
                        base + usize::from(s < extra),
                        policy,
                        table_hint,
                    ))
                })
                .collect(),
            capacity,
            policy,
            counter_boundary,
            table_hint,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            stale_fills: AtomicU64::new(0),
            warmed: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            table_hits: AtomicU64::new(0),
            table_misses: AtomicU64::new(0),
            bucket_hits: AtomicU64::new(0),
            bucket_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard_for(&self, key: u64) -> &Mutex<CacheShard> {
        // Fibonacci hashing spreads block addresses (which share low
        // zero bits) across shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Fold one lookup into the global and per-region counters.
    fn note_lookup(&self, key: u64, hit: bool) {
        let table = self.counter_boundary > 0 && key < self.counter_boundary;
        let (global, regional) = if hit {
            (
                &self.hits,
                if table {
                    &self.table_hits
                } else {
                    &self.bucket_hits
                },
            )
        } else {
            (
                &self.misses,
                if table {
                    &self.table_misses
                } else {
                    &self.bucket_misses
                },
            )
        };
        global.fetch_add(1, Ordering::Relaxed);
        regional.fetch_add(1, Ordering::Relaxed);
    }

    fn note_outcome(&self, out: InsertOutcome) {
        if out.evicted > 0 {
            self.evictions.fetch_add(out.evicted, Ordering::Relaxed);
        }
        if out.rejected > 0 {
            self.admission_rejected
                .fetch_add(out.rejected, Ordering::Relaxed);
        }
    }

    /// Look up a block, promoting it to most-recently-used. Counts a hit
    /// or a miss.
    pub fn get(&self, key: u64) -> Option<Arc<[u8]>> {
        let got = self.shard_for(key).lock().unwrap().get(key);
        self.note_lookup(key, got.is_some());
        got
    }

    /// Look up a block **without** promoting it, feeding the frequency
    /// sketch, or counting a hit/miss. The scan read-through: background
    /// maintenance walking every chain can reuse cached bytes without
    /// polluting the recency/frequency state queries depend on.
    pub fn peek(&self, key: u64) -> Option<Arc<[u8]>> {
        self.shard_for(key).lock().unwrap().peek(key)
    }

    /// Look up a block; on a miss, return the epoch a fill beginning
    /// now must present to [`BlockCache::insert_if_fresh`]. One lock
    /// acquisition for the whole miss path (a separate
    /// [`BlockCache::get`] + [`BlockCache::fill_epoch`] pair would lock
    /// the segment twice at exactly the moments of peak cache traffic).
    pub fn get_or_begin_fill(&self, key: u64) -> Result<Arc<[u8]>, FillEpoch> {
        let mut shard = self.shard_for(key).lock().unwrap();
        match shard.get(key) {
            Some(data) => {
                drop(shard);
                self.note_lookup(key, true);
                Ok(data)
            }
            None => {
                let epoch = shard.fill_epoch(key);
                drop(shard);
                self.note_lookup(key, false);
                Err(epoch)
            }
        }
    }

    /// Insert a block read from the device.
    pub fn insert(&self, key: u64, data: Arc<[u8]>) {
        let out = self.shard_for(key).lock().unwrap().insert(key, data, false);
        self.note_outcome(out);
    }

    /// Snapshot `key`'s invalidation epoch without a lookup (the
    /// miss path uses [`BlockCache::get_or_begin_fill`] instead, which
    /// returns the epoch from the same critical section as the miss).
    pub fn fill_epoch(&self, key: u64) -> FillEpoch {
        self.shard_for(key).lock().unwrap().fill_epoch(key)
    }

    /// Insert a miss fill only if `key` was not invalidated (and its
    /// segment not flushed) since `epoch` was taken. The check runs
    /// under the key's shard lock, so an invalidation concurrent with
    /// this call either bumps the epoch first (the fill is skipped) or
    /// removes the entry afterwards — a stale fill can never survive.
    /// Returns whether the fill was accepted (under TinyLFU a fill can
    /// also be *admitted then rejected at the window boundary later*;
    /// acceptance here only means the epoch check passed).
    pub fn insert_if_fresh(&self, key: u64, data: Arc<[u8]>, epoch: FillEpoch) -> bool {
        self.insert_if_fresh_inner(key, data, epoch, false)
    }

    /// [`BlockCache::insert_if_fresh`] for replica cache warming: the
    /// fill bypasses the TinyLFU frequency gate (straight to probation,
    /// sketch seeded) so a cold admission filter cannot reject a
    /// donor's proven-hot blocks. Epoch-gated exactly like a miss fill.
    pub fn warm_insert_if_fresh(&self, key: u64, data: Arc<[u8]>, epoch: FillEpoch) -> bool {
        self.insert_if_fresh_inner(key, data, epoch, true)
    }

    fn insert_if_fresh_inner(
        &self,
        key: u64,
        data: Arc<[u8]>,
        epoch: FillEpoch,
        privileged: bool,
    ) -> bool {
        let mut shard = self.shard_for(key).lock().unwrap();
        if !shard.is_fresh(key, epoch) {
            self.stale_fills.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let out = shard.insert(key, data, privileged);
        drop(shard);
        self.note_outcome(out);
        true
    }

    /// Drop one block and bump *its* epoch (call when its backing
    /// storage is rewritten, e.g. by [`Updater`]); in-flight fills for
    /// this key are discarded on completion, in-flight fills for every
    /// other key are untouched — unless the segment's epoch map
    /// overflows its bound, in which case the segment flushes its map
    /// and conservatively gates all of its in-flight fills. Counts
    /// neither a hit nor an eviction.
    ///
    /// [`Updater`]: crate::update::Updater
    pub fn invalidate(&self, key: u64) {
        let mut shard = self.shard_for(key).lock().unwrap();
        *shard.epochs.entry(key).or_insert(0) += 1;
        if shard.epochs.len() > shard.epoch_bound() {
            // Trade the oversized map for one segment flush: every
            // in-flight fill into this segment is discarded on
            // completion (conservative, cheap to retry), and the map
            // starts over.
            shard.flush += 1;
            shard.epochs = HashMap::new();
        }
        shard.remove_key(key);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every cached block and discard every in-flight fill (coarse
    /// invalidation after bulk updates or an index rebuild). Policy
    /// state (segment budgets, frequency sketch) restarts cold.
    pub fn invalidate_all(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            // The flush bump gates all in-flight fills into this
            // segment, so the per-key epoch map can be dropped with the
            // entries: a fill holding an older flush epoch fails the
            // freshness check even with its key epoch reset to 0.
            let (cap, flush) = (s.capacity, s.flush + 1);
            *s = CacheShard::new(cap, self.policy, self.table_hint);
            s.flush = flush;
        }
    }

    /// Alias of [`BlockCache::invalidate_all`].
    pub fn clear(&self) {
        self.invalidate_all();
    }

    /// Single-key invalidations performed.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// In-flight miss fills discarded because their key was invalidated
    /// (or the cache flushed) between submit and completion.
    pub fn stale_fills(&self) -> u64 {
        self.stale_fills.load(Ordering::Relaxed)
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum blocks the cache will hold (sum over shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Independently locked segments the key space is striped over.
    pub fn lock_shards(&self) -> usize {
        self.shards.len()
    }

    /// The replacement policy this cache was built with.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// A fresh, empty cache with this cache's capacity, lock striping
    /// and policy — the constructor replica groups use to give each
    /// replica of a shard its own private cache of identical shape.
    pub fn new_like(&self) -> Self {
        Self::with_policy(self.capacity(), self.lock_shards(), self.policy)
    }

    /// The hottest cached blocks, up to `max_blocks`, as `(key, bytes)`
    /// pairs. Per-segment hot lists (protected → probation → window
    /// under TinyLFU, plain MRU order under LRU) are merged round-robin,
    /// so the result approximates the global heat order while holding
    /// each segment lock once. Counts neither hits nor misses.
    pub fn hottest(&self, max_blocks: usize) -> Vec<(u64, Arc<[u8]>)> {
        let per_segment: Vec<Vec<(u64, Arc<[u8]>)>> = self
            .shards
            .iter()
            .map(|m| m.lock().unwrap().hot_blocks(max_blocks))
            .collect();
        let mut out = Vec::new();
        let mut rank = 0;
        while out.len() < max_blocks {
            let mut any = false;
            for seg in &per_segment {
                if let Some(entry) = seg.get(rank) {
                    out.push(entry.clone());
                    any = true;
                    if out.len() >= max_blocks {
                        break;
                    }
                }
            }
            if !any {
                break;
            }
            rank += 1;
        }
        out
    }

    /// Pre-fill this cache with up to `max_blocks` of `donor`'s hottest
    /// blocks (replica-aware cache warming: a fresh or unfenced replica
    /// copies a live sibling's working set instead of starting cold).
    /// Keys already present here are skipped; each copy is epoch-gated
    /// ([`BlockCache::warm_insert_if_fresh`]) so an invalidation racing
    /// the warm pass discards the affected block instead of resurrecting
    /// pre-write bytes, and **bypasses the admission filter** — a cold
    /// TinyLFU sketch would otherwise reject every donated block.
    /// Returns the number of blocks copied (also accumulated in
    /// [`BlockCache::warmed`]).
    ///
    /// The donor's entries are valid by construction (writers invalidate
    /// rewritten blocks in every replica cache), but the copy is not
    /// atomic with the donor's invalidation sweep: run warming while the
    /// shard has no active writer (the serving layer warms at session
    /// start, before its writers accept work).
    pub fn warm_from(&self, donor: &BlockCache, max_blocks: usize) -> usize {
        let mut copied = 0;
        for (key, data) in donor.hottest(max_blocks) {
            // Snapshot the target epoch *before* taking the bytes: an
            // invalidation of `key` between here and the insert bumps
            // the epoch and the stale copy is rejected.
            let epoch = self.fill_epoch(key);
            if self.shard_for(key).lock().unwrap().contains(key) {
                continue; // already cached (counts no hit)
            }
            if self.warm_insert_if_fresh(key, data, epoch) {
                copied += 1;
            }
        }
        self.warmed.fetch_add(copied as u64, Ordering::Relaxed);
        copied
    }

    /// Blocks copied in from sibling caches by [`BlockCache::warm_from`].
    pub fn warmed(&self) -> u64 {
        self.warmed.load(Ordering::Relaxed)
    }

    /// Lookups served from DRAM.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that went to the device.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Blocks displaced to make room (TinyLFU: admitted candidates'
    /// victims; rejected candidates count in
    /// [`BlockCache::admission_rejected`] instead).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Window candidates the TinyLFU admission filter refused (0 under
    /// LRU).
    pub fn admission_rejected(&self) -> u64 {
        self.admission_rejected.load(Ordering::Relaxed)
    }

    /// Hits on table-region blocks (keys below the region boundary; 0
    /// when unpartitioned — everything counts as bucket-region then).
    pub fn table_hits(&self) -> u64 {
        self.table_hits.load(Ordering::Relaxed)
    }

    /// Misses on table-region blocks.
    pub fn table_misses(&self) -> u64 {
        self.table_misses.load(Ordering::Relaxed)
    }

    /// Hits on bucket-region blocks.
    pub fn bucket_hits(&self) -> u64 {
        self.bucket_hits.load(Ordering::Relaxed)
    }

    /// Misses on bucket-region blocks.
    pub fn bucket_misses(&self) -> u64 {
        self.bucket_misses.load(Ordering::Relaxed)
    }

    /// Miss reads that shared another read's in-flight fill instead of
    /// touching the device (accumulated by every [`CachedDevice`] with
    /// coalescing enabled on this cache).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Hits over all lookups (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// A [`Device`] wrapper serving repeated block reads from a shared DRAM
/// [`BlockCache`].
///
/// Cache hits complete at the submission timestamp (a DRAM copy costs no
/// device time — the CPU-side cost is already charged by the engine's
/// `T_request` model); misses pass through to the inner device and fill
/// the cache when they complete. Only whole-block reads are cached;
/// other lengths (superblock, filter scans at open) bypass the cache.
///
/// With [`CachedDevice::set_coalescing`] enabled, a miss for a key that
/// already has a fill in flight **on this device** parks on that fill
/// instead of issuing a duplicate device read (single-flight): the
/// waiter's completion is delivered with the leader's bytes at the
/// leader's completion time. The reactor serving layer drives hundreds
/// of interleaved query contexts through one `CachedDevice`, which is
/// exactly where concurrent same-block misses arise. Coalescing is
/// epoch-guarded: a waiter only joins a leader whose fill epoch is still
/// current, so a block invalidated mid-flight is re-read rather than
/// served pre-rewrite bytes.
///
/// **Writes are not observed.** The [`Device`] trait is read-only, so a
/// writer mutating the index underneath (e.g.
/// [`Updater`](crate::update::Updater)) must tell the cache: call
/// [`CachedDevice::invalidate`] per rewritten block, or
/// [`BlockCache::invalidate_all`] after a bulk update — otherwise
/// subsequent hits serve the pre-update bytes. Invalidating a block
/// also discards miss fills for *that block* that were in flight when
/// it happened (epoch-gated), on every device sharing the cache;
/// in-flight fills for other blocks are untouched.
pub struct CachedDevice<D: Device> {
    inner: D,
    cache: Arc<BlockCache>,
    block_size: u32,
    /// Completions served from DRAM, delivered on the next poll.
    hit_queue: Vec<IoCompletion>,
    /// tag → (block key, key epoch at submit) for in-flight misses
    /// (tags are unique per in-flight I/O: one engine context never has
    /// two same-kind I/Os for the same probe in flight). The epoch
    /// gates the fill: an invalidation of this key between submit and
    /// completion discards it.
    pending_fills: HashMap<u64, (u64, FillEpoch)>,
    /// Single-flight coalescing of concurrent same-key misses (off by
    /// default: it changes completion timing, and the default suites
    /// are bit-exact against the uncoalesced cache).
    coalesce: bool,
    /// key → leader tag of the in-flight fill coalescable misses join.
    leaders: HashMap<u64, u64>,
    /// leader tag → tags parked on that fill.
    waiters: HashMap<u64, Vec<u64>>,
    /// Parked waiter count (they occupy no slot in the inner device but
    /// are in flight from the engine's point of view).
    parked: usize,
    /// This device's own cache hits (the shared [`BlockCache`] counters
    /// span every device on the cache; per-device stats must stay
    /// summable across workers).
    local_hits: u64,
    /// This device's own cache misses.
    local_misses: u64,
    /// This device's own coalesced reads.
    local_coalesced: u64,
}

impl<D: Device> CachedDevice<D> {
    /// Wrap `inner`, serving `block_size`-byte aligned reads from
    /// `cache`.
    pub fn new(inner: D, cache: Arc<BlockCache>, block_size: u32) -> Self {
        assert!(block_size > 0);
        Self {
            inner,
            cache,
            block_size,
            hit_queue: Vec::new(),
            pending_fills: HashMap::new(),
            coalesce: false,
            leaders: HashMap::new(),
            waiters: HashMap::new(),
            parked: 0,
            local_hits: 0,
            local_misses: 0,
            local_coalesced: 0,
        }
    }

    /// Convenience: wrap with a fresh private cache of
    /// `capacity_blocks` × [`BLOCK_SIZE`] blocks.
    ///
    /// [`BLOCK_SIZE`]: crate::layout::BLOCK_SIZE
    pub fn with_capacity(inner: D, capacity_blocks: usize) -> Self {
        Self::new(
            inner,
            Arc::new(BlockCache::new(capacity_blocks, 8)),
            crate::layout::BLOCK_SIZE as u32,
        )
    }

    /// Enable or disable single-flight coalescing of concurrent
    /// same-key misses on this device.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// Whether single-flight coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Drop the cached copy of the block containing `addr` (call after
    /// rewriting it on storage).
    pub fn invalidate(&self, addr: u64) {
        let aligned = addr - addr % u64::from(self.block_size);
        self.cache.invalidate(self.key_of(aligned));
    }

    #[inline]
    fn cacheable(&self, req: &IoRequest) -> bool {
        req.len == self.block_size && req.addr.is_multiple_of(u64::from(self.block_size))
    }

    #[inline]
    fn key_of(&self, addr: u64) -> u64 {
        addr / u64::from(self.block_size)
    }
}

impl<D: Device> Device for CachedDevice<D> {
    fn submit(&mut self, req: IoRequest, now: f64) {
        if self.cacheable(&req) {
            let key = self.key_of(req.addr);
            match self.cache.get_or_begin_fill(key) {
                Ok(data) => {
                    // DRAM hit: complete at the submission timestamp.
                    self.local_hits += 1;
                    self.hit_queue.push(IoCompletion {
                        tag: req.tag,
                        data: data.to_vec(),
                        time: now,
                    });
                    return;
                }
                Err(epoch) => {
                    self.local_misses += 1;
                    if self.coalesce {
                        if let Some(&leader) = self.leaders.get(&key) {
                            // Join the leader only while its fill is
                            // still fresh: if the key was invalidated
                            // since the leader submitted, its bytes
                            // pre-date the rewrite and this read must
                            // fetch its own.
                            if self.pending_fills.get(&leader).map(|&(_, e)| e) == Some(epoch) {
                                self.waiters.entry(leader).or_default().push(req.tag);
                                self.parked += 1;
                                self.local_coalesced += 1;
                                self.cache.coalesced.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                        self.leaders.insert(key, req.tag);
                    }
                    let prev = self.pending_fills.insert(req.tag, (key, epoch));
                    debug_assert!(prev.is_none(), "duplicate in-flight tag {:#x}", req.tag);
                }
            }
        }
        self.inner.submit(req, now);
    }

    fn poll(&mut self, now: f64, out: &mut Vec<IoCompletion>) {
        // Hits first: they completed at submission time, which is never
        // after `now`.
        out.append(&mut self.hit_queue);
        let start = out.len();
        self.inner.poll(now, out);
        let mut released: Vec<IoCompletion> = Vec::new();
        for comp in &out[start..] {
            if let Some((key, epoch)) = self.pending_fills.remove(&comp.tag) {
                // Fills that raced an invalidation of their own key are
                // discarded (checked atomically with the insert): the
                // bytes were read before the rewrite and must not
                // re-enter. Fills for other keys are unaffected.
                self.cache
                    .insert_if_fresh(key, Arc::from(comp.data.as_slice()), epoch);
                if self.coalesce {
                    // A stale leader (superseded after an invalidation)
                    // no longer owns the key entry.
                    if self.leaders.get(&key) == Some(&comp.tag) {
                        self.leaders.remove(&key);
                    }
                    if let Some(tags) = self.waiters.remove(&comp.tag) {
                        self.parked -= tags.len();
                        for tag in tags {
                            released.push(IoCompletion {
                                tag,
                                data: comp.data.clone(),
                                time: comp.time,
                            });
                        }
                    }
                }
            }
        }
        out.append(&mut released);
    }

    fn next_completion_time(&self) -> Option<f64> {
        let hit = self
            .hit_queue
            .iter()
            .map(|c| c.time)
            .fold(f64::INFINITY, f64::min);
        match self.inner.next_completion_time() {
            Some(t) => Some(t.min(hit)),
            None if !self.hit_queue.is_empty() => Some(hit),
            None => None,
        }
    }

    fn wait(&mut self) {
        if self.hit_queue.is_empty() {
            self.inner.wait();
        }
    }

    fn inflight(&self) -> usize {
        // Parked waiters hold no device slot but are outstanding from
        // the engine's point of view until their leader completes.
        self.hit_queue.len() + self.parked + self.inner.inflight()
    }

    fn read_sync(&mut self, addr: u64, len: u32) -> Vec<u8> {
        self.inner.read_sync(addr, len)
    }

    fn stats(&self) -> DeviceStats {
        // `completed`/`bytes` count only what the underlying device
        // served; DRAM hits are reported separately via the cache
        // counters. Hits/misses/coalesced are *this device's own*
        // lookups so that summing worker stats never multiplies
        // shared-cache totals. Evictions are a property of the (possibly
        // shared) cache, not of any one device — read them from
        // [`BlockCache::evictions`].
        let mut s = self.inner.stats();
        s.cache_hits = self.local_hits;
        s.cache_misses = self.local_misses;
        s.coalesced_reads = self.local_coalesced;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::sim::{Backing, DeviceProfile, SimStorage};
    use crate::layout::BLOCK_SIZE;

    fn image(blocks: usize) -> Vec<u8> {
        let mut v = vec![0u8; blocks * BLOCK_SIZE];
        for (i, b) in v.iter_mut().enumerate() {
            *b = (i / BLOCK_SIZE) as u8;
        }
        v
    }

    fn read_block(dev: &mut dyn Device, addr: u64, now: f64) -> (Vec<u8>, f64) {
        dev.submit(
            IoRequest {
                addr,
                len: BLOCK_SIZE as u32,
                tag: addr,
            },
            now,
        );
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1);
        (out.pop().unwrap().data, t)
    }

    #[test]
    fn hit_serves_same_bytes_instantly() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        let (cold, t_cold) = read_block(&mut dev, 512, 0.0);
        assert!(t_cold > 0.0, "cold read takes device time");
        let (warm, t_warm) = read_block(&mut dev, 512, t_cold);
        assert_eq!(cold, warm);
        assert_eq!(t_warm, t_cold, "hit completes at submission time");
        let s = dev.stats();
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.completed, 1, "only the cold read touched the device");
    }

    #[test]
    fn unaligned_or_oversize_reads_bypass_cache() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        dev.submit(
            IoRequest {
                addr: 100, // unaligned
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(dev.stats().cache_hits + dev.stats().cache_misses, 0);
        assert!(dev.cache().is_empty());
    }

    #[test]
    fn capacity_never_exceeded_and_evictions_counted() {
        let cache = BlockCache::new(8, 2);
        for i in 0..100u64 {
            cache.insert(i, Arc::from(vec![0u8; 4].as_slice()));
            assert!(
                cache.len() <= cache.capacity(),
                "len {} at i {i}",
                cache.len()
            );
        }
        assert!(cache.evictions() > 0);
        assert_eq!(cache.len() as u64 + cache.evictions(), 100);
    }

    #[test]
    fn lru_order_within_shard() {
        // Single shard so the eviction order is the global LRU order.
        let cache = BlockCache::new(2, 1);
        cache.insert(1, Arc::from([1u8].as_slice()));
        cache.insert(2, Arc::from([2u8].as_slice()));
        assert!(cache.get(1).is_some()); // 1 becomes MRU
        cache.insert(3, Arc::from([3u8].as_slice())); // evicts 2
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn capacity_is_exact_even_when_striped() {
        let cache = BlockCache::new(10, 8);
        assert_eq!(cache.capacity(), 10);
        for i in 0..200u64 {
            cache.insert(i, Arc::from(vec![0u8; 1].as_slice()));
            assert!(cache.len() <= 10, "len {} > 10", cache.len());
        }
    }

    #[test]
    fn invalidate_drops_stale_block_and_clear_empties() {
        let cache = BlockCache::new(8, 2);
        cache.insert(1, Arc::from([1u8].as_slice()));
        cache.insert(2, Arc::from([2u8].as_slice()));
        assert!(cache.get(1).is_some());
        cache.invalidate(1);
        assert!(cache.get(1).is_none(), "invalidated block still served");
        cache.invalidate(99); // unknown key: no-op
        assert!(cache.get(2).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get(2).is_none());
        // Invalidation and clearing count neither hits nor evictions.
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cached_device_invalidate_realigns_addr() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        let (before, t) = read_block(&mut dev, 1024, 0.0);
        // Invalidate via an interior address of the same block.
        dev.invalidate(1024 + 77);
        let (after, _) = read_block(&mut dev, 1024, t);
        assert_eq!(before, after);
        let s = dev.stats();
        assert_eq!(s.cache_hits, 0, "second read had to miss");
        assert_eq!(s.cache_misses, 2);
    }

    #[test]
    fn invalidation_discards_in_flight_fill() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        // Miss in flight…
        dev.submit(
            IoRequest {
                addr: 512,
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        // …then the block is rewritten and invalidated before the read
        // completes.
        dev.invalidate(512);
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1, "completion still delivered to the engine");
        assert!(
            dev.cache().is_empty(),
            "stale in-flight fill must not re-populate the cache"
        );
        // The next read goes to the device again (fresh bytes).
        let (_, _) = read_block(&mut dev, 512, t);
        assert_eq!(dev.stats().cache_hits, 0);
    }

    /// The per-key-epoch acceptance scenario: an in-flight miss fill for
    /// block B must complete, enter the cache and serve the next read as
    /// a hit even though an unrelated block A was invalidated while the
    /// fill was in flight. The PR-1 cache-global generation provably
    /// fails this (any invalidation discarded every in-flight fill); the
    /// single lock shard below makes A and B share one mutex, so even a
    /// per-lock-shard epoch would fail it.
    #[test]
    fn in_flight_fill_for_other_key_survives_invalidation() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let cache = Arc::new(BlockCache::new(4, 1));
        let mut dev = CachedDevice::new(sim, Arc::clone(&cache), BLOCK_SIZE as u32);
        // Miss for block B (addr 1024) in flight…
        dev.submit(
            IoRequest {
                addr: 1024,
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        // …while block A (addr 512) is rewritten and invalidated.
        dev.invalidate(512);
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            cache.len(),
            1,
            "fill for B must survive the invalidation of A"
        );
        assert_eq!(cache.stale_fills(), 0);
        assert_eq!(cache.invalidations(), 1);
        // The next read of B is a DRAM hit.
        let (_, _) = read_block(&mut dev, 1024, t);
        assert_eq!(dev.stats().cache_hits, 1);
        assert_eq!(
            dev.stats().completed,
            1,
            "only the first read hit the device"
        );
    }

    #[test]
    fn stale_fill_counted_and_discarded_per_key() {
        let cache = BlockCache::new(8, 1);
        let ea = cache.fill_epoch(1);
        let eb = cache.fill_epoch(2);
        cache.invalidate(1);
        assert!(
            !cache.insert_if_fresh(1, Arc::from([0u8].as_slice()), ea),
            "fill for the invalidated key must be rejected"
        );
        assert!(
            cache.insert_if_fresh(2, Arc::from([2u8].as_slice()), eb),
            "fill for an unrelated key must be accepted"
        );
        assert_eq!(cache.stale_fills(), 1);
        // A fresh epoch taken after the invalidation fills fine.
        let ea2 = cache.fill_epoch(1);
        assert!(cache.insert_if_fresh(1, Arc::from([1u8].as_slice()), ea2));
        // invalidate_all gates every epoch taken before it, even for
        // keys never individually invalidated.
        let e3 = cache.fill_epoch(3);
        cache.invalidate_all();
        assert!(!cache.insert_if_fresh(3, Arc::from([3u8].as_slice()), e3));
        assert!(cache.is_empty());
        assert_eq!(cache.stale_fills(), 2);
    }

    /// Epoch-map overflow: invalidating more distinct keys than the
    /// segment bound trades the map for one segment flush — fills that
    /// were in flight are conservatively discarded, the map stays
    /// bounded, and the cache keeps serving afterwards.
    #[test]
    fn epoch_map_overflow_flushes_segment_conservatively() {
        let cache = BlockCache::new(4, 1); // bound = max(4*4, 1024) = 1024
        let victim_key = 2_000_000u64;
        let epoch = cache.fill_epoch(victim_key);
        for k in 0..1100u64 {
            cache.invalidate(k);
        }
        assert!(
            !cache.insert_if_fresh(victim_key, Arc::from([1u8].as_slice()), epoch),
            "fill spanning an epoch-map overflow must be discarded"
        );
        assert_eq!(cache.stale_fills(), 1);
        // A fresh fill after the overflow is accepted and served.
        let epoch = cache.fill_epoch(victim_key);
        assert!(cache.insert_if_fresh(victim_key, Arc::from([2u8].as_slice()), epoch));
        assert!(cache.get(victim_key).is_some());
    }

    #[test]
    fn warm_from_copies_mru_first_and_is_epoch_gated() {
        let donor = BlockCache::new(8, 1);
        for k in 0..6u64 {
            donor.insert(k, Arc::from([k as u8].as_slice()));
        }
        donor.get(2); // 2 becomes MRU
        let hot = donor.hottest(3);
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0].0, 2, "MRU block leads the hottest list");

        let fresh = donor.new_like();
        let copied = fresh.warm_from(&donor, 4);
        assert_eq!(copied, 4);
        assert_eq!(fresh.warmed(), 4);
        assert_eq!(fresh.len(), 4);
        // Warmed blocks serve as hits with the donor's exact bytes.
        assert_eq!(fresh.get(2).unwrap().as_ref(), &[2u8][..]);
        // Re-warming skips blocks already present.
        assert_eq!(fresh.warm_from(&donor, 4), 0);
        // A block invalidated in the target mid-warm stays out: the copy
        // is epoch-gated exactly like a miss fill.
        let cold = donor.new_like();
        let epoch = cold.fill_epoch(5);
        cold.invalidate(5);
        assert!(!cold.insert_if_fresh(5, Arc::from([9u8].as_slice()), epoch));
    }

    #[test]
    fn hottest_caps_and_handles_empty() {
        let cache = BlockCache::new(16, 4);
        assert!(cache.hottest(8).is_empty());
        for k in 0..10u64 {
            cache.insert(k, Arc::from([0u8].as_slice()));
        }
        assert_eq!(cache.hottest(4).len(), 4);
        assert_eq!(cache.hottest(100).len(), 10);
    }

    #[test]
    fn counters_consistent() {
        // Capacity exceeds the working set so the cyclic scan hits after
        // the first pass (an LRU thrashes on cycles larger than itself).
        let cache = BlockCache::new(8, 2);
        let mut expect_hits = 0;
        let mut expect_misses = 0;
        for i in 0..50u64 {
            let key = i % 6;
            if cache.get(key).is_some() {
                expect_hits += 1;
            } else {
                expect_misses += 1;
                cache.insert(key, Arc::from(key.to_le_bytes().as_slice()));
            }
        }
        assert_eq!(cache.hits(), expect_hits);
        assert_eq!(cache.misses(), expect_misses);
        assert_eq!(cache.hits() + cache.misses(), 50);
        assert!(cache.hit_rate() > 0.0 && cache.hit_rate() < 1.0);
        // Unpartitioned: every lookup counts as bucket-region.
        assert_eq!(cache.bucket_hits() + cache.bucket_misses(), 50);
        assert_eq!(cache.table_hits() + cache.table_misses(), 0);
    }

    #[test]
    fn shared_cache_across_devices() {
        let cache = Arc::new(BlockCache::new(64, 4));
        let mk = || SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut a = CachedDevice::new(mk(), Arc::clone(&cache), BLOCK_SIZE as u32);
        let mut b = CachedDevice::new(mk(), Arc::clone(&cache), BLOCK_SIZE as u32);
        let (bytes_a, _) = read_block(&mut a, 1024, 0.0); // miss, fills shared cache
        let (bytes_b, _) = read_block(&mut b, 1024, 0.0); // hit via the other device
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    // ── TinyLFU admission ────────────────────────────────────────────

    fn tinylfu(capacity: usize, shards: usize, boundary: u64) -> BlockCache {
        BlockCache::with_policy(
            capacity,
            shards,
            CachePolicy::TinyLfu(TinyLfuConfig {
                region_boundary: boundary,
                ..TinyLfuConfig::default()
            }),
        )
    }

    /// Miss-then-insert, the way a device fill reaches the cache.
    fn access(cache: &BlockCache, key: u64) -> bool {
        if cache.get(key).is_some() {
            true
        } else {
            cache.insert(key, Arc::from(key.to_le_bytes().as_slice()));
            false
        }
    }

    #[test]
    fn tinylfu_scan_cannot_displace_hot_blocks() {
        let cache = tinylfu(8, 1, 0);
        // Heat four blocks until they sit in the main area with real
        // frequency history.
        for _ in 0..5 {
            for k in 1..=4u64 {
                access(&cache, k);
            }
        }
        assert!((1..=4).all(|k| cache.peek(k).is_some()));
        // A one-shot scan: 30 blocks seen exactly once each.
        for k in 100..130u64 {
            access(&cache, k);
        }
        assert!(
            (1..=4).all(|k| cache.peek(k).is_some()),
            "one-hit-wonder scan displaced the proven-hot working set"
        );
        assert!(cache.admission_rejected() > 0, "no admission contest ran");
        assert!(cache.len() <= cache.capacity());
        // The same scan against plain LRU flushes the hot set.
        let lru = BlockCache::new(8, 1);
        for _ in 0..5 {
            for k in 1..=4u64 {
                access(&lru, k);
            }
        }
        for k in 100..130u64 {
            access(&lru, k);
        }
        assert!((1..=4).all(|k| lru.peek(k).is_none()));
        assert_eq!(lru.admission_rejected(), 0);
    }

    #[test]
    fn tinylfu_probation_hit_promotes_to_protected() {
        let cache = tinylfu(16, 1, 0);
        // First pass: keys land in window → probation.
        for k in 0..4u64 {
            access(&cache, k);
        }
        // Second pass: probation hits promote to protected, so the
        // hottest list leads with protected entries.
        for k in 0..4u64 {
            assert!(access(&cache, k), "resident key must hit");
        }
        let hot: Vec<u64> = cache.hottest(16).iter().map(|&(k, _)| k).collect();
        assert!(!hot.is_empty());
        // All four re-referenced keys outrank any window-only key.
        for k in 0..4u64 {
            assert!(hot.contains(&k));
        }
    }

    #[test]
    fn peek_promotes_and_counts_nothing() {
        let cache = BlockCache::new(2, 1);
        cache.insert(1, Arc::from([1u8].as_slice()));
        cache.insert(2, Arc::from([2u8].as_slice()));
        assert!(cache.peek(1).is_some());
        assert!(cache.peek(99).is_none());
        assert_eq!(cache.hits() + cache.misses(), 0, "peek counts no lookup");
        // peek(1) did not refresh 1's recency: it is still the LRU
        // victim (a get(1) would have saved it).
        cache.insert(3, Arc::from([3u8].as_slice()));
        assert!(cache.peek(1).is_none(), "peek must not promote");
        assert!(cache.peek(2).is_some());
    }

    #[test]
    fn region_partition_protects_table_blocks() {
        // Keys 0..4 are table-region; budget = round(8 * 0.2) = 2.
        let cache = BlockCache::with_policy(
            8,
            1,
            CachePolicy::TinyLfu(TinyLfuConfig {
                region_boundary: 4,
                table_fraction: 0.25,
                ..TinyLfuConfig::default()
            }),
        );
        access(&cache, 0);
        access(&cache, 1);
        assert_eq!(cache.table_misses(), 2);
        // Hammer the bucket region with far more traffic than its
        // budget: the table entries must be untouchable.
        for k in 100..200u64 {
            access(&cache, k);
        }
        assert!(
            cache.peek(0).is_some(),
            "bucket churn evicted a table block"
        );
        assert!(cache.peek(1).is_some());
        assert!(cache.len() <= cache.capacity());
        assert_eq!(cache.bucket_misses(), 100);
        assert!(cache.get(0).is_some());
        assert_eq!(cache.table_hits(), 1);
    }

    #[test]
    fn warm_insert_bypasses_cold_admission_filter() {
        // A hot donor (any policy) warms a cold TinyLFU sibling: the
        // sibling's sketch has never seen the keys, so the normal
        // admission path would strand every copy in the 1-block window.
        let donor = BlockCache::new(32, 1);
        for _ in 0..3 {
            for k in 0..16u64 {
                access(&donor, k);
            }
        }
        let fresh = tinylfu(32, 1, 0);
        let copied = fresh.warm_from(&donor, 12);
        assert_eq!(copied, 12);
        assert_eq!(fresh.len(), 12);
        assert_eq!(fresh.warmed(), 12);
        // Every donated block is resident and served as a hit.
        let warmed_keys: Vec<u64> = donor.hottest(12).iter().map(|&(k, _)| k).collect();
        for k in warmed_keys {
            assert!(fresh.get(k).is_some(), "warmed block {k} not resident");
        }
    }

    #[test]
    fn tinylfu_policy_shapes_survive_new_like_and_clear() {
        let cache = tinylfu(64, 4, 0);
        assert_eq!(cache.policy(), cache.new_like().policy());
        for k in 0..32u64 {
            access(&cache, k);
        }
        cache.clear();
        assert!(cache.is_empty());
        // Still admits and serves after the rebuild.
        access(&cache, 7);
        assert!(cache.get(7).is_some());
    }

    // ── Count-min sketch ─────────────────────────────────────────────

    #[test]
    fn sketch_estimate_upper_bounds_true_count() {
        let mut s = CmSketch::new(256);
        for _ in 0..9 {
            s.increment(42);
        }
        assert!(s.estimate(42) >= 9);
        // Saturation: counters cap at 15 (+1 doorkeeper).
        for _ in 0..100 {
            s.increment(42);
        }
        assert!(s.estimate(42) >= 15);
        assert!(s.estimate(42) <= 16);
        // An unseen key can only be inflated by collisions, never
        // deflated below zero.
        assert!(s.estimate(7777) <= s.estimate(42));
    }

    #[test]
    fn sketch_halving_decays_and_clears_doorkeeper() {
        let mut s = CmSketch::new(256);
        for _ in 0..10 {
            s.increment(5);
        }
        let before = s.estimate(5);
        s.halve();
        let after = s.estimate(5);
        assert!(
            after <= before / 2,
            "halve must at least halve ({before} → {after})"
        );
        // Automatic aging: the sample period bounds additions.
        let mut auto = CmSketch::new(64); // period = 10 * 64
        for k in 0..2000u64 {
            auto.increment(k % 50);
        }
        assert!(auto.additions() < 640, "sample period never triggered");
    }

    // ── Single-flight coalescing ─────────────────────────────────────

    #[test]
    fn concurrent_misses_coalesce_to_one_device_read() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let cache = Arc::new(BlockCache::new(4, 1));
        let mut dev = CachedDevice::new(sim, Arc::clone(&cache), BLOCK_SIZE as u32);
        dev.set_coalescing(true);
        // Three concurrent misses on one block before any completes.
        for tag in 1..=3u64 {
            dev.submit(
                IoRequest {
                    addr: 1024,
                    len: BLOCK_SIZE as u32,
                    tag,
                },
                0.0,
            );
        }
        assert_eq!(dev.inflight(), 3, "waiters count as in flight");
        let t = dev.next_completion_time().unwrap();
        let mut out = Vec::new();
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 3, "every request gets its completion");
        assert!(out.iter().all(|c| c.data == out[0].data));
        assert!(
            out.iter().all(|c| c.time == t),
            "waiters share the leader's time"
        );
        let tags: std::collections::HashSet<u64> = out.iter().map(|c| c.tag).collect();
        assert_eq!(tags.len(), 3);
        assert_eq!(dev.stats().completed, 1, "one device read served all three");
        assert_eq!(dev.stats().coalesced_reads, 2);
        assert_eq!(cache.coalesced(), 2);
        assert_eq!(dev.inflight(), 0);
        // The block is cached: the next read is a DRAM hit.
        let (_, _) = read_block(&mut dev, 1024, t);
        assert_eq!(dev.stats().cache_hits, 1);
    }

    #[test]
    fn invalidation_mid_flight_prevents_coalescing() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let cache = Arc::new(BlockCache::new(4, 1));
        let mut dev = CachedDevice::new(sim, Arc::clone(&cache), BLOCK_SIZE as u32);
        dev.set_coalescing(true);
        dev.submit(
            IoRequest {
                addr: 512,
                len: BLOCK_SIZE as u32,
                tag: 1,
            },
            0.0,
        );
        // The block is rewritten while the leader is in flight: a new
        // miss must fetch its own (fresh) bytes, not the leader's.
        dev.invalidate(512);
        dev.submit(
            IoRequest {
                addr: 512,
                len: BLOCK_SIZE as u32,
                tag: 2,
            },
            0.0,
        );
        let mut out = Vec::new();
        while out.len() < 2 {
            let t = dev.next_completion_time().unwrap();
            dev.poll(t, &mut out);
        }
        assert_eq!(
            dev.stats().completed,
            2,
            "post-invalidation miss must not coalesce"
        );
        assert_eq!(dev.stats().coalesced_reads, 0);
        // The stale leader's fill was discarded; the fresh read filled.
        assert_eq!(cache.stale_fills(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn coalescing_disabled_by_default_issues_every_read() {
        let sim = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image(8)));
        let mut dev = CachedDevice::with_capacity(sim, 4);
        assert!(!dev.coalescing());
        for tag in 1..=2u64 {
            dev.submit(
                IoRequest {
                    addr: 1024,
                    len: BLOCK_SIZE as u32,
                    tag,
                },
                0.0,
            );
        }
        let mut out = Vec::new();
        while out.len() < 2 {
            let t = dev.next_completion_time().unwrap();
            dev.poll(t, &mut out);
        }
        assert_eq!(dev.stats().completed, 2);
        assert_eq!(dev.stats().coalesced_reads, 0);
    }
}
