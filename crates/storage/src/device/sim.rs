//! Discrete-event storage device model (substitute for the paper's real
//! drives; see `DESIGN.md` §2).
//!
//! A device is a set of `D` parallel service units ("dies"); each I/O
//! occupies one die for a fixed service time `t_s`. By Little's law the
//! model reproduces both calibration points of the paper's Table 2:
//!
//! * queue depth 1 → throughput `1/t_s` (the submitter waits for each
//!   completion, so only one die is ever busy);
//! * large queue depth → throughput `D/t_s`, with per-I/O latency growing
//!   as the queue saturates — exactly the latency-vs-usage trade-off of
//!   the paper's Figure 15.
//!
//! Data is served from a [`Backing`] (RAM image or index file) so the
//! simulated device returns *real* index bytes while its timing comes from
//! the model.

use super::{Device, DeviceStats, IoCompletion, IoRequest};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::path::Path;

/// Random-read performance profile of a storage device (paper Table 2,
/// measured at 512-byte reads).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name.
    pub name: &'static str,
    /// Random-read kIOPS at queue depth 1.
    pub qd1_kiops: f64,
    /// Random-read kIOPS at queue depth 128 (saturation).
    pub max_kiops: f64,
}

impl DeviceProfile {
    /// Consumer NVMe SSD (KIOXIA XG5): 7.2 → 273 kIOPS.
    pub const CSSD: DeviceProfile = DeviceProfile {
        name: "cSSD",
        qd1_kiops: 7.2,
        max_kiops: 273.0,
    };
    /// Enterprise low-latency NVMe SSD (KIOXIA FL6): 27.6 → 1400 kIOPS.
    pub const ESSD: DeviceProfile = DeviceProfile {
        name: "eSSD",
        qd1_kiops: 27.6,
        max_kiops: 1400.0,
    };
    /// XL-FLASH demo drive: 132.3 → 3860 kIOPS.
    pub const XLFDD: DeviceProfile = DeviceProfile {
        name: "XLFDD",
        qd1_kiops: 132.3,
        max_kiops: 3860.0,
    };
    /// 7200 rpm hard disk (reference only in the paper): 0.21 → 0.54 kIOPS.
    pub const HDD: DeviceProfile = DeviceProfile {
        name: "HDD",
        qd1_kiops: 0.21,
        max_kiops: 0.54,
    };

    /// Number of parallel service units: `round(max/qd1)`, at least 1.
    pub fn dies(&self) -> usize {
        ((self.max_kiops / self.qd1_kiops).round() as usize).max(1)
    }

    /// Per-die service time so that `dies / t_s = max_kiops`.
    pub fn service_time(&self) -> f64 {
        self.dies() as f64 / (self.max_kiops * 1e3)
    }
}

/// Where the simulated device gets its bytes.
pub enum Backing {
    /// Whole index image in memory.
    Mem(Vec<u8>),
    /// Index file on the host filesystem, read with `pread`.
    File(File),
}

impl Backing {
    /// Open a file backing.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        Ok(Backing::File(File::open(path)?))
    }

    /// Read `len` bytes at `addr`. Reads past the end are zero-filled
    /// (reads of the last, partially-written block).
    pub fn read(&self, addr: u64, len: u32) -> Vec<u8> {
        let mut buf = vec![0u8; len as usize];
        match self {
            Backing::Mem(image) => {
                let start = (addr as usize).min(image.len());
                let end = (addr as usize + len as usize).min(image.len());
                if start < end {
                    buf[..end - start].copy_from_slice(&image[start..end]);
                }
            }
            Backing::File(f) => {
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    let mut read = 0usize;
                    while read < buf.len() {
                        match f.read_at(&mut buf[read..], addr + read as u64) {
                            Ok(0) => break, // EOF: rest stays zero
                            Ok(k) => read += k,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(e) => panic!("index read failed at {addr}: {e}"),
                        }
                    }
                }
                #[cfg(not(unix))]
                {
                    let mut f2 = f;
                    use std::io::Seek;
                    let _ = f2;
                    unimplemented!("file backing requires unix");
                }
            }
        }
        buf
    }
}

/// Totally-ordered f64 for time-ordered heaps.
#[derive(Clone, Copy, PartialEq, Debug)]
struct Time(f64);
impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One device's die-level timing model.
struct DieModel {
    service: f64,
    /// Min-heap of per-die next-free times.
    free_at: BinaryHeap<Reverse<Time>>,
}

impl DieModel {
    fn new(profile: DeviceProfile) -> Self {
        let mut free_at = BinaryHeap::new();
        for _ in 0..profile.dies() {
            free_at.push(Reverse(Time(0.0)));
        }
        Self {
            service: profile.service_time(),
            free_at,
        }
    }

    /// Accept one I/O at `now`; returns `(start, completion)` times.
    fn accept(&mut self, now: f64) -> (f64, f64) {
        let Reverse(Time(free)) = self.free_at.pop().expect("dies exist");
        let start = now.max(free);
        let done = start + self.service;
        self.free_at.push(Reverse(Time(done)));
        (start, done)
    }
}

/// Pending completion ordered by completion time.
struct Pending {
    done: Time,
    seq: u64,
    tag: u64,
    data: Vec<u8>,
}
impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.done == other.done && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.done.cmp(&other.done).then(self.seq.cmp(&other.seq))
    }
}

/// A simulated storage array: one or more identical devices striped over
/// 512-byte blocks, sharing one [`Backing`].
pub struct SimStorage {
    devices: Vec<DieModel>,
    backing: Backing,
    pending: BinaryHeap<Reverse<Pending>>,
    seq: u64,
    stats: DeviceStats,
    profile: DeviceProfile,
}

impl SimStorage {
    /// Create an array of `num_devices` identical devices over `backing`.
    pub fn new(profile: DeviceProfile, num_devices: usize, backing: Backing) -> Self {
        assert!(num_devices >= 1);
        Self {
            devices: (0..num_devices).map(|_| DieModel::new(profile)).collect(),
            backing,
            pending: BinaryHeap::new(),
            seq: 0,
            stats: DeviceStats::default(),
            profile,
        }
    }

    /// The device profile.
    pub fn profile(&self) -> DeviceProfile {
        self.profile
    }

    /// Number of devices in the array.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Aggregate maximum random-read IOPS of the array.
    pub fn max_iops(&self) -> f64 {
        self.devices.len() as f64 * self.profile.max_kiops * 1e3
    }

    fn route(&self, addr: u64) -> usize {
        ((addr / crate::layout::BLOCK_SIZE as u64) % self.devices.len() as u64) as usize
    }
}

impl Device for SimStorage {
    fn submit(&mut self, req: IoRequest, now: f64) {
        let dev = self.route(req.addr);
        let (start, done) = self.devices[dev].accept(now);
        let data = self.backing.read(req.addr, req.len);
        self.stats.completed += 1;
        self.stats.bytes += u64::from(req.len);
        self.stats.latency_sum += done - now;
        self.stats.busy_sum += done - start;
        self.seq += 1;
        self.pending.push(Reverse(Pending {
            done: Time(done),
            seq: self.seq,
            tag: req.tag,
            data,
        }));
    }

    fn poll(&mut self, now: f64, out: &mut Vec<IoCompletion>) {
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.done.0 > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked");
            out.push(IoCompletion {
                tag: p.tag,
                data: p.data,
                time: p.done.0,
            });
        }
    }

    fn next_completion_time(&self) -> Option<f64> {
        self.pending.peek().map(|Reverse(p)| p.done.0)
    }

    fn wait(&mut self) {}

    fn inflight(&self) -> usize {
        self.pending.len()
    }

    fn read_sync(&mut self, addr: u64, len: u32) -> Vec<u8> {
        self.backing.read(addr, len)
    }

    fn stats(&self) -> DeviceStats {
        self.stats
    }
}

/// Measure the random-read IOPS of a profile at a given queue depth by
/// driving the model directly (regenerates the paper's Table 2).
pub fn measure_iops(profile: DeviceProfile, num_devices: usize, queue_depth: usize) -> f64 {
    let image = vec![0u8; 1 << 20];
    let mut dev = SimStorage::new(profile, num_devices, Backing::Mem(image));
    let total_ios = 20_000usize.max(queue_depth * 50);
    let mut submitted = 0usize;
    let mut completed = 0usize;
    let mut now = 0.0f64;
    let mut out = Vec::new();
    // Simple closed-loop driver with `queue_depth` outstanding I/Os.
    let mut next_addr = 0u64;
    while completed < total_ios {
        while submitted - completed < queue_depth && submitted < total_ios {
            // Spread addresses over devices round-robin like random reads.
            next_addr = next_addr.wrapping_add(512 * 7919);
            dev.submit(
                IoRequest {
                    addr: next_addr % (1 << 30),
                    len: 512,
                    tag: submitted as u64,
                },
                now,
            );
            submitted += 1;
        }
        if let Some(t) = dev.next_completion_time() {
            now = now.max(t);
        }
        out.clear();
        dev.poll(now, &mut out);
        completed += out.len();
    }
    total_ios as f64 / now
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_reproduce_table2_qd1() {
        for p in [
            DeviceProfile::CSSD,
            DeviceProfile::ESSD,
            DeviceProfile::XLFDD,
        ] {
            let iops = measure_iops(p, 1, 1);
            let expect = p.qd1_kiops * 1e3;
            // QD1 throughput equals 1/t_s; with the integer die count the
            // model deviates from the nominal value by < 15%.
            assert!(
                (iops - expect).abs() / expect < 0.15,
                "{}: qd1 {iops} vs {expect}",
                p.name
            );
        }
    }

    #[test]
    fn profiles_reproduce_table2_qd128() {
        for p in [
            DeviceProfile::CSSD,
            DeviceProfile::ESSD,
            DeviceProfile::XLFDD,
            DeviceProfile::HDD,
        ] {
            let iops = measure_iops(p, 1, 128);
            let expect = p.max_kiops * 1e3;
            assert!(
                (iops - expect).abs() / expect < 0.10,
                "{}: qd128 {iops} vs {expect}",
                p.name
            );
        }
    }

    #[test]
    fn multiple_devices_scale_iops() {
        let one = measure_iops(DeviceProfile::CSSD, 1, 128);
        let four = measure_iops(DeviceProfile::CSSD, 4, 512);
        assert!(four > 3.5 * one, "4 devices: {four} vs 1: {one}");
    }

    #[test]
    fn latency_grows_with_queue_depth() {
        let lat = |qd: usize| {
            let image = vec![0u8; 1 << 20];
            let mut dev = SimStorage::new(DeviceProfile::CSSD, 1, Backing::Mem(image));
            let mut now = 0.0;
            let mut out = Vec::new();
            for i in 0..2000u64 {
                dev.submit(
                    IoRequest {
                        addr: (i * 512 * 13) % (1 << 20),
                        len: 512,
                        tag: i,
                    },
                    now,
                );
                if dev.inflight() >= qd {
                    now = dev.next_completion_time().unwrap();
                    dev.poll(now, &mut out);
                }
            }
            dev.stats().mean_latency()
        };
        assert!(lat(256) > 2.0 * lat(4), "latency must grow when saturated");
    }

    #[test]
    fn completions_ordered_and_data_served() {
        let mut image = vec![0u8; 4096];
        image[512..516].copy_from_slice(&[1, 2, 3, 4]);
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(image));
        dev.submit(
            IoRequest {
                addr: 512,
                len: 512,
                tag: 7,
            },
            0.0,
        );
        let mut out = Vec::new();
        let t = dev.next_completion_time().unwrap();
        assert!(t > 0.0);
        dev.poll(t, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tag, 7);
        assert_eq!(&out[0].data[..4], &[1, 2, 3, 4]);
        assert_eq!(dev.inflight(), 0);
    }

    #[test]
    fn reads_past_end_zero_filled() {
        let backing = Backing::Mem(vec![9u8; 100]);
        let buf = backing.read(90, 20);
        assert_eq!(&buf[..10], &[9u8; 10]);
        assert_eq!(&buf[10..], &[0u8; 10]);
    }

    #[test]
    fn dies_match_littles_law() {
        assert_eq!(DeviceProfile::CSSD.dies(), 38);
        assert_eq!(DeviceProfile::ESSD.dies(), 51);
        assert_eq!(DeviceProfile::XLFDD.dies(), 29);
        assert!(DeviceProfile::HDD.dies() >= 2);
    }
}
