//! Real asynchronous file I/O through a worker-thread pool.
//!
//! The paper issues NVMe reads through io_uring / SPDK / the XLFDD
//! interface; this environment has a plain filesystem, so asynchrony is
//! provided by a small pool of worker threads performing positioned reads
//! (`pread`). The submit/poll surface is identical to the simulated
//! devices, so the query engine runs unchanged against real storage —
//! this is what the integration tests and the quickstart example use.

use super::{Device, DeviceStats, IoCompletion, IoRequest};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::fs::File;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

enum Job {
    Read { addr: u64, len: u32, tag: u64 },
    Stop,
}

/// Wall-clock asynchronous reader over an index file.
pub struct FileDevice {
    tx: Sender<Job>,
    rx: Receiver<IoCompletion>,
    workers: Vec<std::thread::JoinHandle<()>>,
    file: Arc<File>,
    /// Submitted but not yet handed to the caller via `poll`.
    inflight: usize,
    /// Completions pulled off the channel by `wait`, awaiting `poll`.
    pending_after_wait: Vec<IoCompletion>,
    start: Instant,
    stats: DeviceStats,
}

impl FileDevice {
    /// Open `path` with `workers` reader threads (the effective queue
    /// depth presented to the OS).
    pub fn open<P: AsRef<Path>>(path: P, workers: usize) -> std::io::Result<Self> {
        assert!(workers >= 1);
        let file = Arc::new(File::open(path)?);
        let (tx, job_rx) = unbounded::<Job>();
        let (done_tx, rx) = unbounded::<IoCompletion>();
        let start = Instant::now();
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let file = Arc::clone(&file);
            let t0 = start;
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    match job {
                        Job::Stop => break,
                        Job::Read { addr, len, tag } => {
                            let data = read_at(&file, addr, len);
                            let time = t0.elapsed().as_secs_f64();
                            // Receiver may be gone during shutdown.
                            let _ = done_tx.send(IoCompletion { tag, data, time });
                        }
                    }
                }
            }));
        }
        Ok(Self {
            tx,
            rx,
            workers: handles,
            file,
            inflight: 0,
            pending_after_wait: Vec::new(),
            start,
            stats: DeviceStats::default(),
        })
    }
}

fn read_at(file: &File, addr: u64, len: u32) -> Vec<u8> {
    let mut buf = vec![0u8; len as usize];
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        let mut read = 0usize;
        while read < buf.len() {
            match file.read_at(&mut buf[read..], addr + read as u64) {
                Ok(0) => break,
                Ok(k) => read += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => panic!("read failed at {addr}: {e}"),
            }
        }
    }
    #[cfg(not(unix))]
    {
        let _ = file;
        unimplemented!("FileDevice requires unix");
    }
    buf
}

impl Device for FileDevice {
    fn submit(&mut self, req: IoRequest, _now: f64) {
        self.inflight += 1;
        self.stats.completed += 1;
        self.stats.bytes += u64::from(req.len);
        self.tx
            .send(Job::Read {
                addr: req.addr,
                len: req.len,
                tag: req.tag,
            })
            .expect("worker pool alive");
    }

    fn poll(&mut self, _now: f64, out: &mut Vec<IoCompletion>) {
        for c in self.pending_after_wait.drain(..) {
            self.inflight -= 1;
            out.push(c);
        }
        while let Ok(c) = self.rx.try_recv() {
            self.inflight -= 1;
            out.push(c);
        }
    }

    fn next_completion_time(&self) -> Option<f64> {
        None
    }

    fn wait(&mut self) {
        if self.inflight == 0 || !self.pending_after_wait.is_empty() {
            return;
        }
        if let Ok(c) = self.rx.recv() {
            // Still counts as inflight until the caller polls it.
            self.pending_after_wait.push(c);
        }
    }

    fn inflight(&self) -> usize {
        self.inflight
    }

    fn read_sync(&mut self, addr: u64, len: u32) -> Vec<u8> {
        read_at(&self.file, addr, len)
    }

    fn stats(&self) -> DeviceStats {
        let mut s = self.stats;
        s.latency_sum = self.start.elapsed().as_secs_f64();
        s
    }
}

impl Drop for FileDevice {
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.tx.send(Job::Stop);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}
