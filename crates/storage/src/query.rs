//! Asynchronous E2LSHoS query processing (paper Section 5.4, Figure 10).
//!
//! Each query is a small state machine: per search radius it (1) computes
//! its `L` compound hash values, (2) issues reads for the hash-table slots
//! of the non-empty buckets, (3) on each slot completion issues a read for
//! the first bucket block, (4) on each block completion fingerprint-filters
//! the entries, distance-checks the survivors against the DRAM-resident
//! coordinates, and follows the chain pointer while the candidate budget
//! `S` lasts. When all `L` probes of a radius finish, the `(R, c)`-NN
//! success test either ends the query or escalates the radius.
//!
//! Multiple queries are interleaved (the paper's "context switching") so
//! many I/Os are in flight at once, which is what lets flash devices reach
//! their saturated random-read IOPS.
//!
//! The engine is generic over [`Device`], so the same state machine runs
//! against the virtual-time simulated devices (experiments) and against a
//! real index file through the worker-pool [`FileDevice`]
//! (tests, examples).
//!
//! [`FileDevice`]: crate::device::file::FileDevice

use crate::device::{Device, DeviceStats, Interface, IoCompletion, IoRequest};
use crate::engine::CostModel;
use crate::index::StorageIndex;
use crate::layout::{split_hash, BucketBlock, BLOCK_SIZE};
use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist2;
use e2lsh_core::fxhash::FxHashSet;
use e2lsh_core::lsh::hash_v_bits;
use e2lsh_core::search::TopK;
use std::time::Instant;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Queries processed concurrently (the paper interleaves queries to
    /// raise the queue depth).
    pub contexts: usize,
    /// Maximum outstanding I/Os per query; `L` probes are issued eagerly
    /// up to this limit. 0 means unlimited. Set to 1 together with
    /// [`Interface::MMAP_SYNC`] to model the paper's synchronous
    /// memory-mapped baseline (Section 6.5).
    pub per_query_io_limit: usize,
    /// Storage interface (per-I/O CPU overhead `T_request`, Table 3).
    pub interface: Interface,
    /// CPU cost model; [`CostModel::zero`] for wall-clock runs.
    pub cost: CostModel,
    /// Neighbors to return per query.
    pub k: usize,
    /// Candidate budget override (default `params.s_for_k(k)`).
    pub s_override: Option<usize>,
    /// Radius cap (default: the full schedule).
    pub max_radii: Option<usize>,
    /// Skip I/Os for slots the occupancy bitmap marks empty (paper
    /// Section 4.3); disable to measure the unfiltered I/O count.
    pub use_occupancy_filter: bool,
    /// True = virtual-time simulation; false = wall-clock execution.
    pub virtual_time: bool,
}

impl EngineConfig {
    /// Virtual-time configuration with deterministic costs (experiments).
    pub fn simulated(interface: Interface, k: usize) -> Self {
        Self {
            contexts: 64,
            per_query_io_limit: 0,
            interface,
            cost: CostModel::deterministic(),
            k,
            s_override: None,
            max_radii: None,
            use_occupancy_filter: true,
            virtual_time: true,
        }
    }

    /// Wall-clock configuration (real I/O through a [`FileDevice`]).
    ///
    /// [`FileDevice`]: crate::device::file::FileDevice
    pub fn wall_clock(k: usize) -> Self {
        Self {
            contexts: 16,
            per_query_io_limit: 0,
            interface: Interface {
                name: "thread-pool",
                t_request: 0.0,
            },
            cost: CostModel::zero(),
            k,
            s_override: None,
            max_radii: None,
            use_occupancy_filter: true,
            virtual_time: false,
        }
    }

    /// The paper's synchronous baseline: one query at a time, one I/O at a
    /// time, heavyweight per-I/O CPU cost (Section 6.5).
    pub fn synchronous(k: usize) -> Self {
        Self {
            contexts: 1,
            per_query_io_limit: 1,
            interface: Interface::MMAP_SYNC,
            cost: CostModel::deterministic(),
            k,
            s_override: None,
            max_radii: None,
            use_occupancy_filter: true,
            virtual_time: true,
        }
    }
}

/// Per-query results and counters.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// Up to `k` neighbors `(id, distance)`, ascending.
    pub neighbors: Vec<(u32, f32)>,
    /// Hash-table slot reads issued.
    pub table_reads: u32,
    /// Bucket block reads issued.
    pub block_reads: u32,
    /// Radii searched.
    pub radii_searched: u32,
    /// Fingerprint-matching candidates examined (counts toward `S`).
    pub candidates: u32,
    /// Distinct objects distance-checked.
    pub dist_comps: u32,
    /// Entries skipped by the fingerprint check.
    pub fp_rejects: u32,
    /// Query admission time (seconds, virtual or wall).
    pub start_time: f64,
    /// Query completion time.
    pub finish_time: f64,
}

impl QueryOutcome {
    /// Total I/Os this query issued (`N_IO`).
    pub fn n_io(&self) -> u32 {
        self.table_reads + self.block_reads
    }
}

/// Aggregate batch results.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-query outcomes in query order.
    pub outcomes: Vec<QueryOutcome>,
    /// End-to-end time for the whole batch (virtual or wall seconds).
    pub makespan: f64,
    /// CPU time spent on computation (hashing, scanning, distances).
    pub cpu_compute: f64,
    /// CPU time spent issuing I/Os (`N_IO · T_request`) — the paper's
    /// "I/O cost" in Figure 12.
    pub cpu_io: f64,
    /// Device-side statistics.
    pub device: DeviceStats,
}

impl BatchReport {
    /// Queries per second over the batch.
    pub fn qps(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.outcomes.len() as f64 / self.makespan
        }
    }

    /// Mean per-query time (the paper's "query time" under interleaving:
    /// batch time divided by query count).
    pub fn mean_query_time(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.makespan / self.outcomes.len() as f64
        }
    }

    /// Mean per-query latency (admission → completion).
    pub fn mean_latency(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.finish_time - o.start_time)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Mean I/Os per query (`N_IO` of the cost model).
    pub fn mean_n_io(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.n_io() as f64).sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Mean radii searched (`r̄` of Table 4).
    pub fn mean_radii(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.radii_searched as f64)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }
}

const KIND_TABLE: u64 = 0;
const KIND_BUCKET: u64 = 1;

#[inline]
fn make_tag(ctx: usize, kind: u64, li: usize) -> u64 {
    ((ctx as u64) << 32) | (kind << 31) | li as u64
}

#[inline]
fn parse_tag(tag: u64) -> (usize, u64, usize) {
    (
        (tag >> 32) as usize,
        (tag >> 31) & 1,
        (tag & 0x7fff_ffff) as usize,
    )
}

/// One in-flight query's state.
struct Ctx {
    qi: usize,
    active: bool,
    radius_idx: usize,
    /// Per-l (slot, fingerprint) for the current radius.
    /// Per-l 32-bit hash value of the query at the current radius
    /// (slot index and fingerprint both derive from it).
    probes: Vec<u64>,
    next_l: usize,
    outstanding: u32,
    examined: usize,
    budget: usize,
    seen: FxHashSet<u32>,
    topk: TopK,
    out: QueryOutcome,
}

/// Run a batch of queries against an opened index.
///
/// `dataset` supplies the DRAM-resident coordinates for distance checks
/// (the paper keeps the database in memory; only the hash index is on
/// storage).
pub fn run_queries(
    index: &StorageIndex,
    dataset: &Dataset,
    queries: &Dataset,
    config: &EngineConfig,
    device: &mut dyn Device,
) -> BatchReport {
    assert_eq!(dataset.len(), index.len(), "dataset/index mismatch");
    assert_eq!(dataset.dim(), index.dim());
    assert_eq!(queries.dim(), index.dim());
    assert!(config.contexts >= 1 && config.k >= 1);

    let params = index.params();
    let geometry = index.geometry();
    let codec = index.codec();
    let num_radii = params
        .num_radii()
        .min(config.max_radii.unwrap_or(usize::MAX));
    let budget = config.s_override.unwrap_or_else(|| params.s_for_k(config.k));
    let io_limit = if config.per_query_io_limit == 0 {
        u32::MAX
    } else {
        config.per_query_io_limit as u32
    };

    let mut outcomes: Vec<QueryOutcome> = vec![QueryOutcome::default(); queries.len()];
    let mut clock = 0.0f64;
    let mut cpu_compute = 0.0f64;
    let mut cpu_io = 0.0f64;
    let wall_start = Instant::now();
    let mut scratch: Vec<i32> = Vec::new();
    let mut next_query = 0usize;

    let nctx = config.contexts.min(queries.len().max(1));
    let mut ctxs: Vec<Ctx> = (0..nctx)
        .map(|_| Ctx {
            qi: 0,
            active: false,
            radius_idx: 0,
            probes: Vec::with_capacity(params.l),
            next_l: 0,
            outstanding: 0,
            examined: 0,
            budget,
            seen: FxHashSet::default(),
            topk: TopK::new(config.k),
            out: QueryOutcome::default(),
        })
        .collect();

    // --- helpers as closures over the engine state ---------------------

    macro_rules! charge_compute {
        ($cost:expr) => {{
            let c = $cost;
            clock += c;
            cpu_compute += c;
        }};
    }
    macro_rules! charge_io {
        () => {{
            clock += config.interface.t_request;
            cpu_io += config.interface.t_request;
        }};
    }

    // Start (or restart at the next radius) a context; issues I/Os or
    // completes the query. Returns true if the query finished.
    #[allow(clippy::too_many_arguments)]
    fn begin_radius(
        ctx: &mut Ctx,
        index: &StorageIndex,
        queries: &Dataset,
        config: &EngineConfig,
        scratch: &mut Vec<i32>,
        clock: &mut f64,
        cpu_compute: &mut f64,
    ) {
        let params = index.params();
        let family = index.family();
        let q = queries.point(ctx.qi);
        let radius = family.radius(ctx.radius_idx);
        ctx.probes.clear();
        for li in 0..params.l {
            let key64 = family.compound(ctx.radius_idx, li).hash64(q, radius, scratch);
            ctx.probes.push(hash_v_bits(key64, crate::layout::HASH_BITS));
        }
        let c = params.l as f64 * config.cost.hash_cost(params.m, queries.dim());
        *clock += c;
        *cpu_compute += c;
        ctx.next_l = 0;
        ctx.examined = 0;
        ctx.out.radii_searched += 1;
    }

    // Issue table reads up to the per-query limit. Separate free fn to
    // appease the borrow checker around `device`.
    fn pump(
        ctx: &mut Ctx,
        ci: usize,
        index: &StorageIndex,
        config: &EngineConfig,
        device: &mut dyn Device,
        clock: &mut f64,
        cpu_io: &mut f64,
        io_limit: u32,
    ) {
        let geometry = index.geometry();
        while ctx.outstanding < io_limit && ctx.next_l < ctx.probes.len() {
            let li = ctx.next_l;
            ctx.next_l += 1;
            if ctx.examined >= ctx.budget {
                // Budget exhausted: stop issuing probes for this radius.
                ctx.next_l = ctx.probes.len();
                break;
            }
            let h32 = ctx.probes[li];
            if config.use_occupancy_filter && !index.filter_hit(ctx.radius_idx, li, h32) {
                continue; // provably empty bucket: no I/O (paper Sec. 4.3)
            }
            let (slot, _) = split_hash(h32, geometry.u_bits);
            let addr = geometry.slot_addr(ctx.radius_idx, li, slot);
            // Read the 512-byte region containing the slot (the device's
            // minimum transfer; the paper counts it as one I/O).
            let aligned = addr & !(BLOCK_SIZE as u64 - 1);
            *clock += config.interface.t_request;
            *cpu_io += config.interface.t_request;
            device.submit(
                IoRequest {
                    addr: aligned,
                    len: BLOCK_SIZE as u32,
                    tag: make_tag(ci, KIND_TABLE, li),
                },
                *clock,
            );
            ctx.outstanding += 1;
            ctx.out.table_reads += 1;
        }
    }

    // Admit a fresh query into context `ci`; returns false when the queue
    // is empty.
    macro_rules! admit {
        ($ci:expr) => {{
            let ci = $ci;
            if next_query >= queries.len() {
                ctxs[ci].active = false;
                false
            } else {
                let qi = next_query;
                next_query += 1;
                let c = &mut ctxs[ci];
                c.qi = qi;
                c.active = true;
                c.radius_idx = 0;
                c.outstanding = 0;
                c.seen.clear();
                c.topk = TopK::new(config.k);
                c.out = QueryOutcome::default();
                c.out.start_time = clock;
                begin_radius(
                    c,
                    index,
                    queries,
                    config,
                    &mut scratch,
                    &mut clock,
                    &mut cpu_compute,
                );
                pump(c, ci, index, config, device, &mut clock, &mut cpu_io, io_limit);
                // A radius may issue nothing (all slots empty): advance.
                advance_if_idle(
                    ci,
                    &mut ctxs,
                    index,
                    queries,
                    config,
                    device,
                    &mut scratch,
                    &mut clock,
                    &mut cpu_compute,
                    &mut cpu_io,
                    &mut outcomes,
                    num_radii,
                    io_limit,
                );
                true
            }
        }};
    }

    // When a context has no outstanding I/O, drive it forward: success
    // check → next radius → … → completion.
    #[allow(clippy::too_many_arguments)]
    fn advance_if_idle(
        ci: usize,
        ctxs: &mut [Ctx],
        index: &StorageIndex,
        queries: &Dataset,
        config: &EngineConfig,
        device: &mut dyn Device,
        scratch: &mut Vec<i32>,
        clock: &mut f64,
        cpu_compute: &mut f64,
        cpu_io: &mut f64,
        outcomes: &mut [QueryOutcome],
        num_radii: usize,
        io_limit: u32,
    ) {
        let params = index.params();
        loop {
            let ctx = &mut ctxs[ci];
            if !ctx.active || ctx.outstanding > 0 {
                return;
            }
            if ctx.next_l < ctx.probes.len() && ctx.examined < ctx.budget {
                pump(ctx, ci, index, config, device, clock, cpu_io, io_limit);
                if ctx.outstanding > 0 {
                    return;
                }
                continue;
            }
            // Radius finished: (R, c)-NN success test.
            let radius = index.family().radius(ctx.radius_idx);
            let c_r = params.c * radius;
            let success = ctx.topk.len() >= config.k && ctx.topk.worst_d2() <= c_r * c_r;
            if success || ctx.radius_idx + 1 >= num_radii {
                // Query complete.
                ctx.out.finish_time = *clock;
                let topk = std::mem::replace(&mut ctx.topk, TopK::new(config.k));
                ctx.out.neighbors = topk.into_sorted();
                outcomes[ctx.qi] = std::mem::take(&mut ctx.out);
                ctx.active = false;
                return;
            }
            ctx.radius_idx += 1;
            begin_radius(ctx, index, queries, config, scratch, clock, cpu_compute);
            pump(ctx, ci, index, config, device, clock, cpu_io, io_limit);
            if ctx.outstanding > 0 {
                return;
            }
        }
    }

    // --- admission ------------------------------------------------------
    let mut idle_slots: Vec<usize> = Vec::new();
    for ci in 0..nctx {
        if !admit!(ci) {
            break;
        }
        if !ctxs[ci].active {
            idle_slots.push(ci);
        }
    }
    // Contexts that completed instantly need replacement queries.
    while let Some(ci) = idle_slots.pop() {
        if !admit!(ci) {
            break;
        }
        if !ctxs[ci].active {
            idle_slots.push(ci);
        }
    }

    // --- main event loop --------------------------------------------------
    let mut completions: Vec<IoCompletion> = Vec::new();
    loop {
        completions.clear();
        let poll_now = if config.virtual_time { clock } else { f64::MAX };
        device.poll(poll_now, &mut completions);
        if completions.is_empty() {
            if device.inflight() > 0 {
                if let Some(t) = device.next_completion_time() {
                    clock = clock.max(t);
                } else {
                    device.wait();
                }
                continue;
            }
            // Nothing in flight anywhere: all queries must be done.
            debug_assert!(ctxs.iter().all(|c| !c.active));
            break;
        }
        for comp in completions.drain(..) {
            clock = clock.max(comp.time);
            let (ci, kind, li) = parse_tag(comp.tag);
            let ctx = &mut ctxs[ci];
            debug_assert!(ctx.active);
            ctx.outstanding -= 1;
            if kind == KIND_TABLE {
                // Extract the 8-byte chain head for this slot.
                let (slot, _) = split_hash(ctx.probes[li], geometry.u_bits);
                let addr = geometry.slot_addr(ctx.radius_idx, li, slot);
                let off = (addr & (BLOCK_SIZE as u64 - 1)) as usize;
                let head = u64::from_le_bytes(
                    comp.data[off..off + 8].try_into().expect("slot bytes"),
                );
                charge_compute!(config.cost.block_fixed);
                if head != 0 && ctx.examined < ctx.budget {
                    charge_io!();
                    device.submit(
                        IoRequest {
                            addr: head,
                            len: BLOCK_SIZE as u32,
                            tag: make_tag(ci, KIND_BUCKET, li),
                        },
                        clock,
                    );
                    ctx.outstanding += 1;
                    ctx.out.block_reads += 1;
                }
            } else {
                // Bucket block: fingerprint-filter and distance-check.
                let block = BucketBlock::decode(&codec, &comp.data);
                charge_compute!(config.cost.block_cost(block.entries.len()));
                let (_, fp) = split_hash(ctx.probes[li], geometry.u_bits);
                let want_fp = fp & codec.fp_mask();
                if ctx.examined < ctx.budget {
                    let q = queries.point(ctx.qi);
                    for &(id, fp) in &block.entries {
                        if ctx.examined >= ctx.budget {
                            break;
                        }
                        if fp != want_fp {
                            ctx.out.fp_rejects += 1;
                            continue;
                        }
                        ctx.examined += 1;
                        ctx.out.candidates += 1;
                        if ctx.seen.insert(id) {
                            ctx.out.dist_comps += 1;
                            charge_compute!(config.cost.dist_cost(dataset.dim()));
                            let d2 = dist2(q, dataset.point(id as usize));
                            ctx.topk.offer(id, d2);
                        }
                    }
                    if block.next != 0 && ctx.examined < ctx.budget {
                        charge_io!();
                        device.submit(
                            IoRequest {
                                addr: block.next,
                                len: BLOCK_SIZE as u32,
                                tag: make_tag(ci, KIND_BUCKET, li),
                            },
                            clock,
                        );
                        ctx.outstanding += 1;
                        ctx.out.block_reads += 1;
                    }
                }
            }
            // Keep the probe pipeline full / finish the radius.
            pump(
                &mut ctxs[ci],
                ci,
                index,
                config,
                device,
                &mut clock,
                &mut cpu_io,
                io_limit,
            );
            advance_if_idle(
                ci,
                &mut ctxs,
                index,
                queries,
                config,
                device,
                &mut scratch,
                &mut clock,
                &mut cpu_compute,
                &mut cpu_io,
                &mut outcomes,
                num_radii,
                io_limit,
            );
            if !ctxs[ci].active {
                // Slot freed: admit the next query (possibly several if
                // they complete without I/O).
                while admit!(ci) {
                    if ctxs[ci].active {
                        break;
                    }
                }
            }
        }
    }

    let makespan = if config.virtual_time {
        clock
    } else {
        wall_start.elapsed().as_secs_f64()
    };
    BatchReport {
        outcomes,
        makespan,
        cpu_compute,
        cpu_io,
        device: device.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for &(ctx, kind, li) in &[
            (0usize, KIND_TABLE, 0usize),
            (63, KIND_BUCKET, 50),
            (1000, KIND_TABLE, 0x7fff_fff0),
            (u32::MAX as usize, KIND_BUCKET, 1),
        ] {
            let tag = make_tag(ctx, kind, li);
            assert_eq!(parse_tag(tag), (ctx, kind, li), "ctx={ctx} li={li}");
        }
    }

    #[test]
    fn batch_report_math() {
        let mk = |start: f64, finish: f64, t: u32, b: u32| QueryOutcome {
            start_time: start,
            finish_time: finish,
            table_reads: t,
            block_reads: b,
            radii_searched: 2,
            ..Default::default()
        };
        let report = BatchReport {
            outcomes: vec![mk(0.0, 1.0, 3, 2), mk(0.5, 2.5, 5, 4)],
            makespan: 4.0,
            cpu_compute: 1.0,
            cpu_io: 0.5,
            device: crate::device::DeviceStats::default(),
        };
        assert_eq!(report.qps(), 0.5);
        assert_eq!(report.mean_query_time(), 2.0);
        assert_eq!(report.mean_latency(), 1.5);
        assert_eq!(report.mean_n_io(), (5.0 + 9.0) / 2.0);
        assert_eq!(report.mean_radii(), 2.0);
    }

    #[test]
    fn empty_batch_report_is_safe() {
        let report = BatchReport {
            outcomes: vec![],
            makespan: 0.0,
            cpu_compute: 0.0,
            cpu_io: 0.0,
            device: crate::device::DeviceStats::default(),
        };
        assert_eq!(report.qps(), 0.0);
        assert_eq!(report.mean_query_time(), 0.0);
        assert_eq!(report.mean_latency(), 0.0);
        assert_eq!(report.mean_n_io(), 0.0);
    }

    #[test]
    fn config_presets_are_coherent() {
        let sim = EngineConfig::simulated(Interface::SPDK, 5);
        assert!(sim.virtual_time);
        assert_eq!(sim.k, 5);
        assert_eq!(sim.interface.name, "SPDK");
        let wall = EngineConfig::wall_clock(1);
        assert!(!wall.virtual_time);
        assert_eq!(wall.cost.hash_cost(16, 128), 0.0);
        let sync = EngineConfig::synchronous(1);
        assert_eq!(sync.contexts, 1);
        assert_eq!(sync.per_query_io_limit, 1);
        assert!(sync.interface.t_request >= Interface::IO_URING.t_request);
    }
}
