//! Asynchronous E2LSHoS query processing (paper Section 5.4, Figure 10).
//!
//! Each query is a small state machine: per search radius it (1) computes
//! its `L` compound hash values, (2) issues reads for the hash-table slots
//! of the non-empty buckets, (3) on each slot completion issues a read for
//! the first bucket block, (4) on each block completion fingerprint-filters
//! the entries, distance-checks the survivors against the DRAM-resident
//! coordinates, and follows the chain pointer while the candidate budget
//! `S` lasts. When all `L` probes of a radius finish, the `(R, c)`-NN
//! success test either ends the query or escalates the radius.
//!
//! Multiple queries are interleaved (the paper's "context switching") so
//! many I/Os are in flight at once, which is what lets flash devices reach
//! their saturated random-read IOPS.
//!
//! The state machine lives in [`QueryDriver`] + [`QueryState`]: the driver
//! holds everything shared across queries (index, coordinates, config,
//! hash scratch), a state holds one in-flight query. Two executors drive
//! it:
//!
//! * [`run_queries`] — the batch executor used by the experiment harness:
//!   a fixed query set, admission from the front of the batch, one device;
//! * `e2lsh_service` workers — long-running loops that admit queries from
//!   a request queue and run one driver per shard worker thread.
//!
//! Both are generic over [`Device`], so the same state machine runs
//! against the virtual-time simulated devices (experiments) and against a
//! real index file through the worker-pool [`FileDevice`]
//! (tests, examples).
//!
//! [`FileDevice`]: crate::device::file::FileDevice

use crate::device::{Device, DeviceStats, Interface, IoCompletion, IoRequest};
use crate::engine::CostModel;
use crate::index::StorageIndex;
use crate::layout::{split_hash, BucketBlock, BLOCK_SIZE};
use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist2;
use e2lsh_core::fxhash::FxHashSet;
use e2lsh_core::lsh::hash_v_bits;
use e2lsh_core::search::TopK;
use std::time::Instant;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Queries processed concurrently (the paper interleaves queries to
    /// raise the queue depth).
    pub contexts: usize,
    /// Maximum outstanding I/Os per query; `L` probes are issued eagerly
    /// up to this limit. 0 means unlimited. Set to 1 together with
    /// [`Interface::MMAP_SYNC`] to model the paper's synchronous
    /// memory-mapped baseline (Section 6.5).
    pub per_query_io_limit: usize,
    /// Storage interface (per-I/O CPU overhead `T_request`, Table 3).
    pub interface: Interface,
    /// CPU cost model; [`CostModel::zero`] for wall-clock runs.
    pub cost: CostModel,
    /// Neighbors to return per query.
    pub k: usize,
    /// Candidate budget override (default `params.s_for_k(k)`).
    pub s_override: Option<usize>,
    /// Radius cap (default: the full schedule).
    pub max_radii: Option<usize>,
    /// Skip I/Os for slots the occupancy bitmap marks empty (paper
    /// Section 4.3); disable to measure the unfiltered I/O count.
    pub use_occupancy_filter: bool,
    /// True = virtual-time simulation; false = wall-clock execution.
    pub virtual_time: bool,
}

impl EngineConfig {
    /// Virtual-time configuration with deterministic costs (experiments).
    pub fn simulated(interface: Interface, k: usize) -> Self {
        Self {
            contexts: 64,
            per_query_io_limit: 0,
            interface,
            cost: CostModel::deterministic(),
            k,
            s_override: None,
            max_radii: None,
            use_occupancy_filter: true,
            virtual_time: true,
        }
    }

    /// Wall-clock configuration (real I/O through a [`FileDevice`]).
    ///
    /// [`FileDevice`]: crate::device::file::FileDevice
    pub fn wall_clock(k: usize) -> Self {
        Self {
            contexts: 16,
            per_query_io_limit: 0,
            interface: Interface {
                name: "thread-pool",
                t_request: 0.0,
            },
            cost: CostModel::zero(),
            k,
            s_override: None,
            max_radii: None,
            use_occupancy_filter: true,
            virtual_time: false,
        }
    }

    /// The paper's synchronous baseline: one query at a time, one I/O at a
    /// time, heavyweight per-I/O CPU cost (Section 6.5).
    pub fn synchronous(k: usize) -> Self {
        Self {
            contexts: 1,
            per_query_io_limit: 1,
            interface: Interface::MMAP_SYNC,
            cost: CostModel::deterministic(),
            k,
            s_override: None,
            max_radii: None,
            use_occupancy_filter: true,
            virtual_time: true,
        }
    }
}

/// Per-query results and counters.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// Up to `k` neighbors `(id, distance)`, ascending.
    pub neighbors: Vec<(u32, f32)>,
    /// Hash-table slot reads issued.
    pub table_reads: u32,
    /// Bucket block reads issued.
    pub block_reads: u32,
    /// Radii searched.
    pub radii_searched: u32,
    /// Fingerprint-matching candidates examined (counts toward `S`).
    pub candidates: u32,
    /// Distinct objects distance-checked.
    pub dist_comps: u32,
    /// Entries skipped by the fingerprint check.
    pub fp_rejects: u32,
    /// Query admission time (seconds, virtual or wall).
    pub start_time: f64,
    /// Query completion time.
    pub finish_time: f64,
}

impl QueryOutcome {
    /// Total I/Os this query issued (`N_IO`).
    pub fn n_io(&self) -> u32 {
        self.table_reads + self.block_reads
    }
}

/// Aggregate batch results.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-query outcomes in query order.
    pub outcomes: Vec<QueryOutcome>,
    /// End-to-end time for the whole batch (virtual or wall seconds).
    pub makespan: f64,
    /// CPU time spent on computation (hashing, scanning, distances).
    pub cpu_compute: f64,
    /// CPU time spent issuing I/Os (`N_IO · T_request`) — the paper's
    /// "I/O cost" in Figure 12.
    pub cpu_io: f64,
    /// Device-side statistics.
    pub device: DeviceStats,
}

impl BatchReport {
    /// Queries per second over the batch.
    pub fn qps(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.outcomes.len() as f64 / self.makespan
        }
    }

    /// Mean per-query time (the paper's "query time" under interleaving:
    /// batch time divided by query count).
    pub fn mean_query_time(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.makespan / self.outcomes.len() as f64
        }
    }

    /// Mean per-query latency (admission → completion).
    pub fn mean_latency(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.finish_time - o.start_time)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Mean I/Os per query (`N_IO` of the cost model).
    pub fn mean_n_io(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.n_io() as f64).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Mean radii searched (`r̄` of Table 4).
    pub fn mean_radii(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.radii_searched as f64)
            .sum::<f64>()
            / self.outcomes.len() as f64
    }
}

const KIND_TABLE: u64 = 0;
const KIND_BUCKET: u64 = 1;

#[inline]
fn make_tag(ctx: usize, kind: u64, li: usize) -> u64 {
    ((ctx as u64) << 32) | (kind << 31) | li as u64
}

#[inline]
fn parse_tag(tag: u64) -> (usize, u64, usize) {
    (
        (tag >> 32) as usize,
        (tag >> 31) & 1,
        (tag & 0x7fff_ffff) as usize,
    )
}

/// Context (slot) index encoded in a completion's tag — how an executor
/// routes a completion back to the [`QueryState`] that issued it.
#[inline]
pub fn completion_ctx(comp: &IoCompletion) -> usize {
    parse_tag(comp.tag).0
}

/// Shared engine clock and CPU-time accounting.
///
/// `now` is virtual seconds for simulated devices or seconds since engine
/// start for wall-clock devices; the compute/I/O buckets feed the paper's
/// Figure 12 cost breakdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineClock {
    /// Current engine time.
    pub now: f64,
    /// CPU time charged for computation (hashing, scanning, distances).
    pub cpu_compute: f64,
    /// CPU time charged for I/O submission (`N_IO · T_request`).
    pub cpu_io: f64,
}

impl EngineClock {
    #[inline]
    fn charge_compute(&mut self, cost: f64) {
        self.now += cost;
        self.cpu_compute += cost;
    }

    #[inline]
    fn charge_io(&mut self, t_request: f64) {
        self.now += t_request;
        self.cpu_io += t_request;
    }

    /// Advance to a completion's timestamp (time never runs backwards).
    #[inline]
    pub fn observe(&mut self, completion_time: f64) {
        self.now = self.now.max(completion_time);
    }
}

/// One in-flight query's state machine.
///
/// A `QueryState` is a reusable slot: executors allocate `contexts` of
/// them, admit a query into a free slot with [`QueryDriver::admit`], feed
/// completions back via [`QueryDriver::handle_completion`], and harvest
/// the [`QueryOutcome`] when [`QueryState::is_active`] goes false.
pub struct QueryState {
    /// Slot id encoded into I/O tags (see [`completion_ctx`]).
    ctx_id: usize,
    /// Caller-chosen query identifier (batch index or request id).
    qi: usize,
    /// The query point (copied in at admission).
    point: Vec<f32>,
    active: bool,
    radius_idx: usize,
    /// Per-l 32-bit hash value of the query at the current radius
    /// (slot index and fingerprint both derive from it).
    probes: Vec<u64>,
    next_l: usize,
    outstanding: u32,
    examined: usize,
    seen: FxHashSet<u32>,
    topk: TopK,
    out: QueryOutcome,
}

impl QueryState {
    /// A free slot with tag namespace `ctx_id` (must be unique within one
    /// executor's device).
    pub fn new(ctx_id: usize) -> Self {
        Self {
            ctx_id,
            qi: 0,
            point: Vec::new(),
            active: false,
            radius_idx: 0,
            probes: Vec::new(),
            next_l: 0,
            outstanding: 0,
            examined: 0,
            seen: FxHashSet::default(),
            topk: TopK::new(1),
            out: QueryOutcome::default(),
        }
    }

    /// True while the admitted query is still running.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The identifier passed to [`QueryDriver::admit`].
    #[inline]
    pub fn query_id(&self) -> usize {
        self.qi
    }

    /// I/Os in flight for this query.
    #[inline]
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Harvest the finished query's outcome (call once per query, after
    /// [`QueryState::is_active`] turns false).
    pub fn take_outcome(&mut self) -> QueryOutcome {
        debug_assert!(!self.active, "harvesting a running query");
        std::mem::take(&mut self.out)
    }
}

/// The reusable per-query state machine of the asynchronous engine.
///
/// Holds everything shared across queries — the opened index, the
/// engine configuration and hash scratch space — while each
/// [`QueryState`] carries one query. The DRAM-resident coordinates for
/// distance checks are passed into [`QueryDriver::handle_completion`]
/// per call rather than borrowed for the driver's lifetime, so a
/// serving layer can grow the dataset under a lock between calls
/// (online inserts) while long-lived drivers keep running.
/// [`run_queries`] drives it over a fixed batch; the `e2lsh_service`
/// worker pool drives one driver per shard worker.
pub struct QueryDriver<'a> {
    index: &'a StorageIndex,
    config: EngineConfig,
    num_radii: usize,
    budget: usize,
    io_limit: u32,
    scratch: Vec<i32>,
}

impl<'a> QueryDriver<'a> {
    /// Create a driver for `index`.
    pub fn new(index: &'a StorageIndex, config: &EngineConfig) -> Self {
        assert!(config.k >= 1);
        let params = index.params();
        let num_radii = params
            .num_radii()
            .min(config.max_radii.unwrap_or(usize::MAX));
        let budget = config
            .s_override
            .unwrap_or_else(|| params.s_for_k(config.k));
        let io_limit = if config.per_query_io_limit == 0 {
            u32::MAX
        } else {
            config.per_query_io_limit as u32
        };
        Self {
            index,
            config: config.clone(),
            num_radii,
            budget,
            io_limit,
            scratch: Vec::new(),
        }
    }

    /// The engine configuration this driver runs with.
    #[inline]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The opened index.
    #[inline]
    pub fn index(&self) -> &StorageIndex {
        self.index
    }

    /// Admit query `qi` with coordinates `point` into the free slot `st`,
    /// issuing its first radius of I/Os. The query may complete
    /// immediately (every probed slot empty): check
    /// [`QueryState::is_active`] afterwards.
    pub fn admit(
        &mut self,
        st: &mut QueryState,
        qi: usize,
        point: &[f32],
        clock: &mut EngineClock,
        device: &mut dyn Device,
    ) {
        debug_assert!(!st.active, "admitting into a busy slot");
        debug_assert_eq!(point.len(), self.index.dim());
        st.qi = qi;
        st.active = true;
        st.radius_idx = 0;
        st.outstanding = 0;
        st.point.clear();
        st.point.extend_from_slice(point);
        st.seen.clear();
        st.topk = TopK::new(self.config.k);
        st.out = QueryOutcome::default();
        st.out.start_time = clock.now;
        self.begin_radius(st, clock);
        self.pump(st, clock, device);
        // A radius may issue nothing (all slots empty): advance.
        self.advance_if_idle(st, clock, device);
    }

    /// Hash the query at the current radius and reset the probe cursor.
    fn begin_radius(&mut self, st: &mut QueryState, clock: &mut EngineClock) {
        let params = self.index.params();
        let family = self.index.family();
        let radius = family.radius(st.radius_idx);
        st.probes.clear();
        for li in 0..params.l {
            let key64 =
                family
                    .compound(st.radius_idx, li)
                    .hash64(&st.point, radius, &mut self.scratch);
            st.probes.push(hash_v_bits(key64, crate::layout::HASH_BITS));
        }
        clock.charge_compute(
            params.l as f64 * self.config.cost.hash_cost(params.m, self.index.dim()),
        );
        st.next_l = 0;
        st.examined = 0;
        st.out.radii_searched += 1;
    }

    /// Issue table reads up to the per-query limit.
    fn pump(&mut self, st: &mut QueryState, clock: &mut EngineClock, device: &mut dyn Device) {
        let geometry = self.index.geometry();
        while st.outstanding < self.io_limit && st.next_l < st.probes.len() {
            let li = st.next_l;
            st.next_l += 1;
            if st.examined >= self.budget {
                // Budget exhausted: stop issuing probes for this radius.
                st.next_l = st.probes.len();
                break;
            }
            let h32 = st.probes[li];
            if self.config.use_occupancy_filter && !self.index.filter_hit(st.radius_idx, li, h32) {
                continue; // provably empty bucket: no I/O (paper Sec. 4.3)
            }
            let (slot, _) = split_hash(h32, geometry.u_bits);
            let addr = geometry.slot_addr(st.radius_idx, li, slot);
            // Read the 512-byte region containing the slot (the device's
            // minimum transfer; the paper counts it as one I/O).
            let aligned = addr & !(BLOCK_SIZE as u64 - 1);
            clock.charge_io(self.config.interface.t_request);
            device.submit(
                IoRequest {
                    addr: aligned,
                    len: BLOCK_SIZE as u32,
                    tag: make_tag(st.ctx_id, KIND_TABLE, li),
                },
                clock.now,
            );
            st.outstanding += 1;
            st.out.table_reads += 1;
        }
    }

    /// When the query has no outstanding I/O, drive it forward: success
    /// check → next radius → … → completion.
    fn advance_if_idle(
        &mut self,
        st: &mut QueryState,
        clock: &mut EngineClock,
        device: &mut dyn Device,
    ) {
        let params = self.index.params();
        loop {
            if !st.active || st.outstanding > 0 {
                return;
            }
            if st.next_l < st.probes.len() && st.examined < self.budget {
                self.pump(st, clock, device);
                if st.outstanding > 0 {
                    return;
                }
                continue;
            }
            // Radius finished: (R, c)-NN success test.
            let radius = self.index.family().radius(st.radius_idx);
            let c_r = params.c * radius;
            let success = st.topk.len() >= self.config.k && st.topk.worst_d2() <= c_r * c_r;
            if success || st.radius_idx + 1 >= self.num_radii {
                // Query complete.
                st.out.finish_time = clock.now;
                let topk = std::mem::replace(&mut st.topk, TopK::new(self.config.k));
                st.out.neighbors = topk.into_sorted();
                st.active = false;
                return;
            }
            st.radius_idx += 1;
            self.begin_radius(st, clock);
            self.pump(st, clock, device);
            if st.outstanding > 0 {
                return;
            }
        }
    }

    /// Run `queries` to completion through caller-owned `slots`,
    /// returning one [`QueryOutcome`] per query in query order.
    ///
    /// This is the batched entry point of the engine: the slots (and
    /// the scratch they carry — probe vectors, dedup sets, top-k heaps)
    /// are **reused across every query of the batch**, and across
    /// *calls* when the caller keeps the slots alive, so serving one
    /// batch costs one `QueryState` allocation amortized over its whole
    /// lifetime instead of one per query. [`run_queries`] wraps this
    /// with freshly allocated slots; request-batching executors (the
    /// service's `query_batch`) hold their slots across requests.
    ///
    /// Slot `ctx_id`s must be unique within `device` and every slot
    /// must be free (`!is_active()`). Panics when `slots` is empty and
    /// `queries` is not.
    pub fn run_batch(
        &mut self,
        slots: &mut [QueryState],
        queries: &Dataset,
        data: &Dataset,
        clock: &mut EngineClock,
        device: &mut dyn Device,
    ) -> Vec<QueryOutcome> {
        assert_eq!(queries.dim(), self.index.dim());
        assert_eq!(data.dim(), self.index.dim());
        let mut outcomes: Vec<QueryOutcome> = vec![QueryOutcome::default(); queries.len()];
        if queries.is_empty() {
            return outcomes;
        }
        assert!(!slots.is_empty(), "run_batch needs at least one slot");
        debug_assert!(slots.iter().all(|s| !s.is_active()), "slots must be free");
        let virtual_time = self.config.virtual_time;
        let mut next_query = 0usize;

        // Admit into slot `ci` until a query stays active or the batch
        // runs dry; harvests instantly-completing queries. (A free fn
        // taking the executor state piecewise keeps the borrow checker
        // happy around `device`.)
        #[allow(clippy::too_many_arguments)]
        fn refill(
            ci: usize,
            slots: &mut [QueryState],
            driver: &mut QueryDriver,
            queries: &Dataset,
            next_query: &mut usize,
            outcomes: &mut [QueryOutcome],
            clock: &mut EngineClock,
            device: &mut dyn Device,
        ) {
            while *next_query < queries.len() && !slots[ci].is_active() {
                let qi = *next_query;
                *next_query += 1;
                driver.admit(&mut slots[ci], qi, queries.point(qi), clock, device);
                if !slots[ci].is_active() {
                    outcomes[qi] = slots[ci].take_outcome();
                }
            }
        }

        for ci in 0..slots.len() {
            refill(
                ci,
                slots,
                self,
                queries,
                &mut next_query,
                &mut outcomes,
                clock,
                device,
            );
        }

        let mut completions: Vec<IoCompletion> = Vec::new();
        loop {
            completions.clear();
            let poll_now = if virtual_time { clock.now } else { f64::MAX };
            device.poll(poll_now, &mut completions);
            if completions.is_empty() {
                if device.inflight() > 0 {
                    if let Some(t) = device.next_completion_time() {
                        clock.observe(t);
                    } else {
                        device.wait();
                    }
                    continue;
                }
                // Nothing in flight anywhere: all queries must be done.
                debug_assert!(slots.iter().all(|s| !s.is_active()));
                break;
            }
            for comp in completions.drain(..) {
                clock.observe(comp.time);
                let ci = completion_ctx(&comp);
                self.handle_completion(&mut slots[ci], &comp, data, clock, device);
                if !slots[ci].is_active() {
                    outcomes[slots[ci].query_id()] = slots[ci].take_outcome();
                    // Slot freed: admit the next query (possibly several
                    // if they complete without I/O).
                    refill(
                        ci,
                        slots,
                        self,
                        queries,
                        &mut next_query,
                        &mut outcomes,
                        clock,
                        device,
                    );
                }
            }
        }
        outcomes
    }

    /// Feed one completion whose tag routes to `st` (the executor
    /// dispatches on [`completion_ctx`]); advance the query as far as it
    /// will go without further completions. Call
    /// [`EngineClock::observe`] with the completion time first.
    ///
    /// `data` supplies the DRAM-resident coordinates for distance
    /// checks (the paper keeps the database in memory; only the hash
    /// index is on storage). An executor serving online updates passes
    /// its current view per call; candidates whose id is not (yet)
    /// covered by `data` — possible only transiently, when an index
    /// entry from a torn concurrent rewrite is decoded — are skipped
    /// rather than distance-checked.
    pub fn handle_completion(
        &mut self,
        st: &mut QueryState,
        comp: &IoCompletion,
        data: &Dataset,
        clock: &mut EngineClock,
        device: &mut dyn Device,
    ) {
        let (ci, kind, li) = parse_tag(comp.tag);
        debug_assert_eq!(ci, st.ctx_id, "completion routed to wrong slot");
        debug_assert!(st.active);
        let geometry = self.index.geometry();
        let codec = self.index.codec();
        st.outstanding -= 1;
        if kind == KIND_TABLE {
            // Extract the 8-byte chain head for this slot.
            let (slot, _) = split_hash(st.probes[li], geometry.u_bits);
            let addr = geometry.slot_addr(st.radius_idx, li, slot);
            let off = (addr & (BLOCK_SIZE as u64 - 1)) as usize;
            let head = u64::from_le_bytes(comp.data[off..off + 8].try_into().expect("slot bytes"));
            clock.charge_compute(self.config.cost.block_fixed);
            if head != 0 && st.examined < self.budget {
                clock.charge_io(self.config.interface.t_request);
                device.submit(
                    IoRequest {
                        addr: head,
                        len: BLOCK_SIZE as u32,
                        tag: make_tag(st.ctx_id, KIND_BUCKET, li),
                    },
                    clock.now,
                );
                st.outstanding += 1;
                st.out.block_reads += 1;
            }
        } else {
            // Bucket block: fingerprint-filter and distance-check.
            let block = BucketBlock::decode(&codec, &comp.data);
            clock.charge_compute(self.config.cost.block_cost(block.entries.len()));
            let (_, fp) = split_hash(st.probes[li], geometry.u_bits);
            let want_fp = fp & codec.fp_mask();
            if st.examined < self.budget {
                for &(id, fp) in &block.entries {
                    if st.examined >= self.budget {
                        break;
                    }
                    if fp != want_fp {
                        st.out.fp_rejects += 1;
                        continue;
                    }
                    if id as usize >= data.len() {
                        // No coordinates for this id: a torn read of a
                        // block being rewritten concurrently (or a
                        // half-finished failed insert). Skip it — the
                        // writer publishes coordinates before index
                        // entries, so a real object is never skipped.
                        st.out.fp_rejects += 1;
                        continue;
                    }
                    st.examined += 1;
                    st.out.candidates += 1;
                    if st.seen.insert(id) {
                        st.out.dist_comps += 1;
                        clock.charge_compute(self.config.cost.dist_cost(data.dim()));
                        let d2 = dist2(&st.point, data.point(id as usize));
                        st.topk.offer(id, d2);
                    }
                }
                if block.next != 0 && st.examined < self.budget {
                    clock.charge_io(self.config.interface.t_request);
                    device.submit(
                        IoRequest {
                            addr: block.next,
                            len: BLOCK_SIZE as u32,
                            tag: make_tag(st.ctx_id, KIND_BUCKET, li),
                        },
                        clock.now,
                    );
                    st.outstanding += 1;
                    st.out.block_reads += 1;
                }
            }
        }
        // Keep the probe pipeline full / finish the radius.
        self.pump(st, clock, device);
        self.advance_if_idle(st, clock, device);
    }
}

/// Run a batch of queries against an opened index.
///
/// `dataset` supplies the DRAM-resident coordinates for distance checks
/// (the paper keeps the database in memory; only the hash index is on
/// storage).
pub fn run_queries(
    index: &StorageIndex,
    dataset: &Dataset,
    queries: &Dataset,
    config: &EngineConfig,
    device: &mut dyn Device,
) -> BatchReport {
    // `dataset` normally covers every indexed id; ids beyond it (burned
    // by failed inserts, or torn concurrent rewrites) are skipped by
    // the per-candidate guard in `handle_completion`.
    assert!(config.contexts >= 1);

    let mut driver = QueryDriver::new(index, config);
    let mut clock = EngineClock::default();
    let wall_start = Instant::now();
    let nctx = config.contexts.min(queries.len().max(1));
    let mut slots: Vec<QueryState> = (0..nctx).map(QueryState::new).collect();
    let outcomes = driver.run_batch(&mut slots, queries, dataset, &mut clock, device);

    let makespan = if config.virtual_time {
        clock.now
    } else {
        wall_start.elapsed().as_secs_f64()
    };
    BatchReport {
        outcomes,
        makespan,
        cpu_compute: clock.cpu_compute,
        cpu_io: clock.cpu_io,
        device: device.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for &(ctx, kind, li) in &[
            (0usize, KIND_TABLE, 0usize),
            (63, KIND_BUCKET, 50),
            (1000, KIND_TABLE, 0x7fff_fff0),
            (u32::MAX as usize, KIND_BUCKET, 1),
        ] {
            let tag = make_tag(ctx, kind, li);
            assert_eq!(parse_tag(tag), (ctx, kind, li), "ctx={ctx} li={li}");
        }
    }

    #[test]
    fn batch_report_math() {
        let mk = |start: f64, finish: f64, t: u32, b: u32| QueryOutcome {
            start_time: start,
            finish_time: finish,
            table_reads: t,
            block_reads: b,
            radii_searched: 2,
            ..Default::default()
        };
        let report = BatchReport {
            outcomes: vec![mk(0.0, 1.0, 3, 2), mk(0.5, 2.5, 5, 4)],
            makespan: 4.0,
            cpu_compute: 1.0,
            cpu_io: 0.5,
            device: crate::device::DeviceStats::default(),
        };
        assert_eq!(report.qps(), 0.5);
        assert_eq!(report.mean_query_time(), 2.0);
        assert_eq!(report.mean_latency(), 1.5);
        assert_eq!(report.mean_n_io(), (5.0 + 9.0) / 2.0);
        assert_eq!(report.mean_radii(), 2.0);
    }

    #[test]
    fn empty_batch_report_is_safe() {
        let report = BatchReport {
            outcomes: vec![],
            makespan: 0.0,
            cpu_compute: 0.0,
            cpu_io: 0.0,
            device: crate::device::DeviceStats::default(),
        };
        assert_eq!(report.qps(), 0.0);
        assert_eq!(report.mean_query_time(), 0.0);
        assert_eq!(report.mean_latency(), 0.0);
        assert_eq!(report.mean_n_io(), 0.0);
    }

    #[test]
    fn config_presets_are_coherent() {
        let sim = EngineConfig::simulated(Interface::SPDK, 5);
        assert!(sim.virtual_time);
        assert_eq!(sim.k, 5);
        assert_eq!(sim.interface.name, "SPDK");
        let wall = EngineConfig::wall_clock(1);
        assert!(!wall.virtual_time);
        assert_eq!(wall.cost.hash_cost(16, 128), 0.0);
        let sync = EngineConfig::synchronous(1);
        assert_eq!(sync.contexts, 1);
        assert_eq!(sync.per_query_io_limit, 1);
        assert!(sync.interface.t_request >= Interface::IO_URING.t_request);
    }

    #[test]
    fn engine_clock_accounting() {
        let mut c = EngineClock::default();
        c.charge_compute(1.0);
        c.charge_io(0.25);
        assert_eq!(c.now, 1.25);
        assert_eq!(c.cpu_compute, 1.0);
        assert_eq!(c.cpu_io, 0.25);
        c.observe(0.5); // earlier completion never rewinds the clock
        assert_eq!(c.now, 1.25);
        c.observe(2.0);
        assert_eq!(c.now, 2.0);
    }

    #[test]
    fn query_state_slot_lifecycle() {
        let mut st = QueryState::new(7);
        assert!(!st.is_active());
        assert_eq!(st.outstanding(), 0);
        st.out.table_reads = 3;
        let out = st.take_outcome();
        assert_eq!(out.table_reads, 3);
        assert_eq!(st.out.table_reads, 0, "outcome is moved out");
    }
}
