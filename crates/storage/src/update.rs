//! Online index maintenance: insert and delete without rebuilding.
//!
//! The paper discusses updates qualitatively (Section 7, *storage-specific
//! issues*): "the impact of object insertion and deletion is small", while
//! full rebuilds should be rare because they consume SSD endurance. This
//! module implements that update path:
//!
//! * **insert** — compute the object's `r·L` hash values and *prepend* a
//!   chain link per table: if the head block has room, rewrite it in
//!   place; otherwise allocate a fresh block at the end of the heap whose
//!   `next` points at the old head and update the slot. Prepending keeps
//!   writes O(1) per table and never rewrites a whole chain.
//! * **delete** — walk each of the object's `r·L` chains and rewrite the
//!   single block containing its entry (the entry is replaced by the
//!   block's last entry). Blocks never shrink below the chain structure,
//!   so no pointers move.
//!
//! Updates write through a [`std::fs::File`] opened read-write; readers
//! opened afterwards (or an in-process [`StorageIndex`] refreshed with
//! [`Updater::sync_filters_into`]) observe the new state.
//!
//! ## Serving while updating
//!
//! The serving layer (`e2lsh_service`) runs this update path *under
//! load*: readers keep issuing I/Os against the same file while an
//! updater rewrites blocks. Three mechanisms make that safe:
//!
//! * every byte range the updater writes (even on a failed operation)
//!   is recorded in a [`WriteTrace`], so the caller can invalidate
//!   exactly the rewritten blocks in a
//!   [`BlockCache`](crate::device::cached::BlockCache);
//! * new chain blocks are fully written *before* the slot pointer that
//!   publishes them, so a concurrent reader sees either the old head or
//!   the complete new head;
//! * the heap allocation cursor is reserved in the superblock *before*
//!   an insert links any entry, so a crash or injected failure mid-way
//!   never lets a later open re-allocate (and cross-link) blocks a
//!   half-finished insert already published.
//!
//! [`Updater::fail_after_writes`] injects write failures for tests:
//! the failure-injection suite asserts a shard stays queryable after a
//! mid-operation error and that the trace covers every touched block.

use crate::build::Superblock;
use crate::index::StorageIndex;
use crate::layout::{
    split_hash, BucketBlock, EntryCodec, TableGeometry, BLOCK_SIZE, ENTRIES_PER_BLOCK, HASH_BITS,
    SUPERBLOCK_SIZE,
};
use e2lsh_core::lsh::{hash_v_bits, HashFamily};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Storage mutations performed by one or more update operations: which
/// blocks were rewritten (for cache invalidation) and which occupancy
/// filter bits were newly set (for refreshing a live
/// [`StorageIndex`]'s DRAM bitmaps).
///
/// The trace accumulates across operations until taken with
/// [`Updater::take_trace`], and records writes **even when the
/// operation fails** — a failed insert may already have rewritten
/// blocks, and a cache that kept serving their pre-write bytes would be
/// stale.
#[derive(Clone, Debug, Default)]
pub struct WriteTrace {
    /// Block-aligned byte addresses ([`BLOCK_SIZE`] granularity) of
    /// every rewritten region a cacheable block read could observe
    /// (slot pointers, bucket blocks), deduplicated, in first-touch
    /// order. Superblock and filter-word writes are excluded: those
    /// regions are only read via `read_sync` at open and never enter
    /// the block cache.
    pub blocks: Vec<u64>,
    /// `(radius index, table index, 32-bit hash)` of occupancy-filter
    /// bits newly set by inserts.
    pub filter_bits: Vec<(usize, usize, u64)>,
}

impl WriteTrace {
    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.filter_bits.is_empty()
    }

    fn record_write(&mut self, addr: u64, len: usize) {
        let bs = BLOCK_SIZE as u64;
        let first = addr / bs * bs;
        let last = (addr + len.max(1) as u64 - 1) / bs * bs;
        let mut b = first;
        loop {
            if !self.blocks.contains(&b) {
                self.blocks.push(b);
            }
            if b == last {
                break;
            }
            b += bs;
        }
    }
}

/// Read-write handle over an index file for online maintenance.
pub struct Updater {
    file: File,
    sb: Superblock,
    geometry: TableGeometry,
    codec: EntryCodec,
    family: HashFamily,
    /// End-of-heap allocation cursor.
    next_block_addr: u64,
    /// Per-table occupancy filters (mirrors the on-disk region; flushed
    /// on every insert that sets a new bit).
    filters: Vec<Vec<u64>>,
    /// Mutations since the last [`Updater::take_trace`].
    trace: WriteTrace,
    /// Fault injection: fail the Nth write from now (None = disabled).
    fail_after_writes: Option<u64>,
    /// Writes attempted since fault injection was (re-)armed.
    writes_since_arm: u64,
}

impl Updater {
    /// Open an index file for updates.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut sb_buf = vec![0u8; SUPERBLOCK_SIZE];
        read_at(&file, 0, &mut sb_buf)?;
        let sb = Superblock::decode(&sb_buf)?;
        let geometry = TableGeometry {
            u_bits: sb.u_bits,
            filter_bits: sb.filter_bits,
            num_radii: sb.radii.len(),
            l: sb.l as usize,
        };
        let codec = EntryCodec::new((sb.capacity as usize).max(sb.n as usize), sb.u_bits);
        let family = HashFamily::generate(
            sb.dim as usize,
            sb.m as usize,
            sb.w,
            sb.l as usize,
            &sb.radii,
            sb.seed,
        );
        // Load the filters.
        let fbytes = geometry.filter_bytes_per_table() as usize;
        let mut filters = Vec::with_capacity(geometry.num_tables());
        for t in 0..geometry.num_tables() {
            let (ri, li) = (t / geometry.l, t % geometry.l);
            let mut buf = vec![0u8; fbytes];
            read_at(&file, geometry.filter_base(ri, li), &mut buf)?;
            filters.push(
                buf.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            );
        }
        let next_block_addr = sb.total_bytes;
        Ok(Self {
            file,
            sb,
            geometry,
            codec,
            family,
            next_block_addr,
            filters,
            trace: WriteTrace::default(),
            fail_after_writes: None,
            writes_since_arm: 0,
        })
    }

    /// Take the accumulated [`WriteTrace`] (mutations since the last
    /// call), leaving an empty trace behind. Call after each operation
    /// — including a failed one — to invalidate the rewritten blocks in
    /// any block cache over this file and to mirror new filter bits
    /// into a live [`StorageIndex`].
    pub fn take_trace(&mut self) -> WriteTrace {
        std::mem::take(&mut self.trace)
    }

    /// The accumulated trace since the last [`Updater::take_trace`].
    pub fn trace(&self) -> &WriteTrace {
        &self.trace
    }

    /// Fault injection for tests: make the `n`-th write from now (0 =
    /// the very next one) fail with [`io::ErrorKind::Other`]. `None`
    /// disarms. Reads are unaffected; the failed write is still
    /// recorded in the trace (the bytes on storage are untrusted once a
    /// write errors).
    pub fn fail_after_writes(&mut self, n: Option<u64>) {
        self.fail_after_writes = n;
        self.writes_since_arm = 0;
    }

    /// Fault-injectable write (no trace entry): for regions the block
    /// cache can never serve — the superblock and the filter words are
    /// only ever read via `read_sync` at open, and aligned slot-block
    /// reads cannot cross into them, so invalidating their blocks would
    /// only pollute per-key epoch maps.
    fn write_checked(&mut self, addr: u64, bytes: &[u8]) -> io::Result<()> {
        if let Some(n) = self.fail_after_writes {
            let k = self.writes_since_arm;
            self.writes_since_arm += 1;
            if k >= n {
                return Err(io::Error::other("injected device write failure"));
            }
        }
        write_at(&self.file, addr, bytes)
    }

    /// Tracked write: records the touched blocks for cache
    /// invalidation, applies fault injection, then writes. Used for
    /// every write a cacheable block read could observe (slot pointers,
    /// bucket blocks).
    fn write_tracked(&mut self, addr: u64, bytes: &[u8]) -> io::Result<()> {
        self.trace.record_write(addr, bytes.len());
        self.write_checked(addr, bytes)
    }

    /// Number of objects the index currently covers (IDs are `0..n`).
    pub fn len(&self) -> usize {
        self.sb.n as usize
    }

    /// Advance the object count to `target`, burning the skipped ids —
    /// recovery for a failed insert whose best-effort burn flush was
    /// lost (the caller's coordinate mirror is then longer than the
    /// on-storage count, and resuming id assignment from the stale `n`
    /// would hand a new object an id that half-exists in other chains).
    /// No-op when the count is already `≥ target`.
    pub fn reconcile_len(&mut self, target: usize) -> io::Result<()> {
        if (self.sb.n as usize) < target {
            self.sb.n = target as u64;
            self.flush_superblock()?;
        }
        Ok(())
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sb.n == 0
    }

    /// Insert a new object with the next available ID; returns that ID.
    ///
    /// The caller must also append the same coordinates to its in-DRAM
    /// [`e2lsh_core::Dataset`] so distance checks can find them.
    ///
    /// **The ID is consumed even when the insert fails**: a device
    /// error mid-way may already have linked the object into some
    /// tables, so the failed ID is burned (`n` still advances) rather
    /// than recycled — recycling would hand a *different* object an ID
    /// that half-exists in other tables' chains, silently corrupting
    /// results. Callers that mirror coordinates (the serving layer)
    /// keep the failed row for the same reason; the object is at worst
    /// partially findable, never wrong.
    ///
    /// # Panics
    /// Panics if the new ID no longer fits the entry codec's ID bits; the
    /// codec is sized at build time from [`crate::build::BuildConfig::capacity`]
    /// (default 2× the build-time n), so reserve enough capacity up front.
    pub fn insert(&mut self, point: &[f32]) -> io::Result<u32> {
        assert_eq!(point.len(), self.sb.dim as usize);
        let id = self.sb.n as u32;
        assert!(
            u64::from(id) < (1u64 << self.codec.id_bits),
            "object ID space exhausted (id_bits = {})",
            self.codec.id_bits
        );
        // Reserve the worst-case heap growth (one fresh block per table)
        // in the superblock *before* publishing any entry: if this
        // insert fails half-way, a later `Updater::open` starts its
        // allocation cursor past every block the half-finished insert
        // may already have linked, so chains can never be cross-linked
        // by re-allocation. A successful insert writes the exact cursor
        // back below; entries are only linked once the reservation is
        // durably on storage.
        let reserve =
            self.next_block_addr + (self.geometry.num_tables() as u64) * BLOCK_SIZE as u64;
        self.sb.total_bytes = reserve;
        let mut outcome = self.flush_superblock();
        if outcome.is_ok() {
            let mut scratch = Vec::new();
            'link: for ri in 0..self.geometry.num_radii {
                let radius = self.sb.radii[ri];
                for li in 0..self.geometry.l {
                    let key64 = self
                        .family
                        .compound(ri, li)
                        .hash64(point, radius, &mut scratch);
                    let h32 = hash_v_bits(key64, HASH_BITS);
                    let (slot, fp) = split_hash(h32, self.geometry.u_bits);
                    outcome = self
                        .link_entry(ri, li, slot, id, fp)
                        .and_then(|()| self.set_filter_bit(ri, li, h32));
                    if outcome.is_err() {
                        break 'link;
                    }
                }
            }
        }
        // Consume the ID in every outcome (see above) and restore the
        // exact allocation cursor in memory, so the next insert always
        // recomputes — and re-flushes — its own reservation. On failure
        // the final superblock flush is best-effort: the in-memory bump
        // keeps this handle consistent, and a reopen sees either the
        // conservative reservation or the exact cursor, both safe.
        self.sb.n += 1;
        self.sb.total_bytes = self.next_block_addr;
        let flushed = self.flush_superblock();
        outcome?;
        flushed?;
        Ok(id)
    }

    /// Remove an object from every chain it appears in. Returns the number
    /// of entries removed (normally `r·L`; fewer only if the index was
    /// already inconsistent). The ID itself is not reused.
    ///
    /// The coordinates should be retired from the caller's dataset too
    /// (e.g. overwritten with a sentinel); the occupancy filters are left
    /// untouched — a stale set bit only costs one wasted probe, exactly
    /// the paper's trade-off of cheap deletes against rare rebuilds.
    pub fn delete(&mut self, point: &[f32], id: u32) -> io::Result<usize> {
        assert_eq!(point.len(), self.sb.dim as usize);
        let mut removed = 0usize;
        let mut scratch = Vec::new();
        for ri in 0..self.geometry.num_radii {
            let radius = self.sb.radii[ri];
            for li in 0..self.geometry.l {
                let key64 = self
                    .family
                    .compound(ri, li)
                    .hash64(point, radius, &mut scratch);
                let h32 = hash_v_bits(key64, HASH_BITS);
                let (slot, _) = split_hash(h32, self.geometry.u_bits);
                removed += self.unlink_entry(ri, li, slot, id)?;
            }
        }
        Ok(removed)
    }

    /// Merge the in-memory filter state into an open [`StorageIndex`] so
    /// an in-process reader observes newly inserted prefixes. (Readers
    /// opened from the file after the update see them automatically;
    /// the serving layer instead mirrors the per-operation
    /// [`WriteTrace::filter_bits`], which is cheaper than a full merge.)
    pub fn sync_filters_into(&self, index: &StorageIndex) {
        for (t, words) in self.filters.iter().enumerate() {
            let ri = t / self.geometry.l;
            let li = t % self.geometry.l;
            index.merge_filter_words(ri, li, words);
        }
    }

    fn link_entry(&mut self, ri: usize, li: usize, slot: u64, id: u32, fp: u32) -> io::Result<()> {
        let slot_addr = self.geometry.slot_addr(ri, li, slot);
        let mut head_buf = [0u8; 8];
        read_at(&self.file, slot_addr, &mut head_buf)?;
        let head = u64::from_le_bytes(head_buf);
        if head != 0 {
            // Try to squeeze into the head block.
            let mut buf = vec![0u8; BLOCK_SIZE];
            read_at(&self.file, head, &mut buf)?;
            let mut block = BucketBlock::decode(&self.codec, &buf);
            if block.entries.len() < ENTRIES_PER_BLOCK {
                block.entries.push((id, fp));
                let mut out = Vec::with_capacity(BLOCK_SIZE);
                block.encode(&self.codec, &mut out);
                self.write_tracked(head, &out)?;
                return Ok(());
            }
        }
        // Allocate a fresh head block pointing at the old head. The
        // block is fully written before the slot pointer publishes it,
        // so a concurrent reader sees the old head or the complete new
        // one, never a partial block.
        let block = BucketBlock {
            next: head,
            entries: vec![(id, fp)],
        };
        let mut out = Vec::with_capacity(BLOCK_SIZE);
        block.encode(&self.codec, &mut out);
        let addr = self.next_block_addr;
        self.write_tracked(addr, &out)?;
        self.next_block_addr += BLOCK_SIZE as u64;
        self.write_tracked(slot_addr, &addr.to_le_bytes())?;
        Ok(())
    }

    fn unlink_entry(&mut self, ri: usize, li: usize, slot: u64, id: u32) -> io::Result<usize> {
        let slot_addr = self.geometry.slot_addr(ri, li, slot);
        let mut head_buf = [0u8; 8];
        read_at(&self.file, slot_addr, &mut head_buf)?;
        let mut addr = u64::from_le_bytes(head_buf);
        let mut removed = 0usize;
        while addr != 0 {
            let mut buf = vec![0u8; BLOCK_SIZE];
            read_at(&self.file, addr, &mut buf)?;
            let mut block = BucketBlock::decode(&self.codec, &buf);
            let before = block.entries.len();
            block.entries.retain(|&(eid, _)| eid != id);
            if block.entries.len() != before {
                removed += before - block.entries.len();
                let mut out = Vec::with_capacity(BLOCK_SIZE);
                block.encode(&self.codec, &mut out);
                self.write_tracked(addr, &out)?;
                break; // an object appears at most once per chain
            }
            addr = block.next;
        }
        Ok(removed)
    }

    fn set_filter_bit(&mut self, ri: usize, li: usize, h32: u64) -> io::Result<()> {
        let t = ri * self.geometry.l + li;
        let prefix = (h32 & ((1u64 << self.geometry.filter_bits) - 1)) as usize;
        let word = prefix / 64;
        if (self.filters[t][word] >> (prefix % 64)) & 1 == 1 {
            return Ok(());
        }
        // Write the touched word to storage *before* updating the
        // in-memory mirror: if the write fails, the bit must stay clear
        // in memory too, or a later insert with the same prefix would
        // early-return above without ever persisting it — leaving the
        // object unfindable after a reopen, with no error anywhere.
        let new_word = self.filters[t][word] | 1u64 << (prefix % 64);
        let addr = self.geometry.filter_base(ri, li) + (word as u64) * 8;
        self.write_checked(addr, &new_word.to_le_bytes())?;
        self.filters[t][word] = new_word;
        self.trace.filter_bits.push((ri, li, h32));
        Ok(())
    }

    fn flush_superblock(&mut self) -> io::Result<()> {
        let sb = self.sb.encode();
        self.write_checked(0, &sb)
    }
}

#[cfg(unix)]
fn read_at(file: &File, addr: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    let mut read = 0usize;
    while read < buf.len() {
        match file.read_at(&mut buf[read..], addr + read as u64) {
            Ok(0) => {
                // Past EOF (fresh block region): zero-fill.
                buf[read..].fill(0);
                return Ok(());
            }
            Ok(k) => read += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(unix)]
fn write_at(file: &File, addr: u64, bytes: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(bytes, addr)
}

#[cfg(not(unix))]
fn read_at(_: &File, _: u64, _: &mut [u8]) -> io::Result<()> {
    unimplemented!("updates require unix")
}
#[cfg(not(unix))]
fn write_at(_: &File, _: u64, _: &[u8]) -> io::Result<()> {
    unimplemented!("updates require unix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use crate::device::sim::{Backing, DeviceProfile, SimStorage};
    use crate::device::Interface;
    use crate::query::{run_queries, EngineConfig};
    use crate::testutil::temp_path;
    use e2lsh_core::dataset::Dataset;
    use e2lsh_core::params::E2lshParams;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, dim: usize) -> Dataset {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows)
    }

    fn nn_of(data: &Dataset, queries: &Dataset, path: &std::path::Path) -> Vec<Vec<(u32, f32)>> {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let mut cfg = EngineConfig::simulated(Interface::SPDK, 1);
        cfg.s_override = Some(1_000_000);
        run_queries(&index, data, queries, &cfg, &mut dev)
            .outcomes
            .into_iter()
            .map(|o| o.neighbors)
            .collect()
    }

    #[test]
    fn insert_makes_object_findable() {
        let ds = dataset(400, 8);
        // Build over the first 399 objects; insert the last one online.
        let initial = ds.prefix(399);
        let params = E2lshParams::derive(400, 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        // Derive for n=400 so the codec has headroom for the insert.
        let mut p399 = params.clone();
        p399.n = 399;
        let path = temp_path("insert.idx");
        build_index(&initial, &p399, &BuildConfig::default(), &path).unwrap();

        let mut up = Updater::open(&path).unwrap();
        assert_eq!(up.len(), 399);
        let id = up.insert(ds.point(399)).unwrap();
        assert_eq!(id, 399);
        assert_eq!(up.len(), 400);
        drop(up);

        // Query exactly the inserted point: it must be its own NN.
        let queries = Dataset::from_rows(&[ds.point(399).to_vec()]);
        let res = nn_of(&ds, &queries, &path);
        assert_eq!(res[0].first().map(|r| r.0), Some(399));
        assert_eq!(res[0][0].1, 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delete_makes_object_unfindable() {
        let ds = dataset(300, 8);
        let params = E2lshParams::derive(300, 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        let path = temp_path("delete.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();

        let victim = 123u32;
        let mut up = Updater::open(&path).unwrap();
        let removed = up.delete(ds.point(victim as usize), victim).unwrap();
        assert_eq!(
            removed,
            params.l * params.num_radii(),
            "must vanish from every table"
        );
        drop(up);

        // Self-query for the victim must now return a different object.
        let queries = Dataset::from_rows(&[ds.point(victim as usize).to_vec()]);
        let res = nn_of(&ds, &queries, &path);
        if let Some(&(id, _)) = res[0].first() {
            assert_ne!(id, victim, "deleted object must not be returned");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn many_inserts_fill_chains_correctly() {
        let ds = dataset(260, 6);
        let initial = ds.prefix(10);
        let mut params = E2lshParams::derive(260, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        params.n = 10;
        let path = temp_path("many_inserts.idx");
        let cfg = BuildConfig {
            capacity: Some(260),
            ..Default::default()
        };
        build_index(&initial, &params, &cfg, &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        for i in 10..260 {
            assert_eq!(up.insert(ds.point(i)).unwrap(), i as u32);
        }
        drop(up);
        // Every object findable by self-query.
        let mut queries = Dataset::with_capacity(6, 26);
        for i in (0..260).step_by(10) {
            queries.push(ds.point(i));
        }
        let res = nn_of(&ds, &queries, &path);
        let mut found = 0;
        for (qi, r) in res.iter().enumerate() {
            if let Some(&(_, d)) = r.first() {
                if d == 0.0 {
                    found += 1;
                } else {
                    eprintln!("query {qi}: nn dist {d}");
                }
            }
        }
        assert!(found >= 24, "self-found {found}/26");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delete_then_reinsert_roundtrip() {
        let ds = dataset(150, 6);
        let params = E2lshParams::derive(150, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        let path = temp_path("del_reins.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        let removed = up.delete(ds.point(7), 7).unwrap();
        assert!(removed > 0);
        // Re-inserting the same coordinates gets a fresh ID.
        let new_id = up.insert(ds.point(7)).unwrap();
        assert_eq!(new_id, 150);
        drop(up);
        // The coordinates live at index 150 now; extend the DRAM dataset.
        let mut extended = ds.clone();
        extended.push(ds.point(7));
        let queries = Dataset::from_rows(&[ds.point(7).to_vec()]);
        let res = nn_of(&extended, &queries, &path);
        assert_eq!(res[0].first().map(|r| r.1), Some(0.0));
        assert_eq!(res[0][0].0, 150);
        std::fs::remove_file(&path).ok();
    }
}
