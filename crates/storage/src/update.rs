//! Online index maintenance: insert and delete without rebuilding.
//!
//! The paper discusses updates qualitatively (Section 7, *storage-specific
//! issues*): "the impact of object insertion and deletion is small", while
//! full rebuilds should be rare because they consume SSD endurance. This
//! module implements that update path:
//!
//! * **insert** — compute the object's `r·L` hash values and *prepend* a
//!   chain link per table: if the head block has room, rewrite it in
//!   place; otherwise allocate a fresh block — drawn from the persistent
//!   free list when one is available, else at the end of the heap — whose
//!   `next` points at the old head and update the slot. Prepending keeps
//!   writes O(1) per table and never rewrites a whole chain.
//! * **delete** — walk each of the object's `r·L` chains and rewrite the
//!   single block containing its entry. A block emptied by the delete is
//!   unlinked from its chain (the predecessor is repointed past it) and
//!   returned to the superblock free list instead of being rewritten, so
//!   churn stops growing the heap.
//! * **maintain** — a budgeted background pass ([`Updater::maintain`])
//!   that compacts sparse chains (merging adjacent blocks whose combined
//!   entries fit one block), unlinks empty blocks, and garbage-collects
//!   occupancy-filter bits whose bucket no longer holds live entries.
//!
//! Updates write through a [`std::fs::File`] opened read-write; readers
//! opened afterwards (or an in-process [`StorageIndex`] refreshed with
//! [`Updater::sync_filters_into`]) observe the new state.
//!
//! ## Serving while updating
//!
//! The serving layer (`e2lsh_service`) runs this update path *under
//! load*: readers keep issuing I/Os against the same file while an
//! updater rewrites blocks. The mechanisms that make that safe:
//!
//! * every byte range the updater writes (even on a failed operation)
//!   is recorded in a [`WriteTrace`], so the caller can invalidate
//!   exactly the rewritten blocks in a
//!   [`BlockCache`](crate::device::cached::BlockCache);
//! * new chain blocks are fully written *before* the slot pointer that
//!   publishes them, so a concurrent reader sees either the old head or
//!   the complete new head;
//! * heap growth (and every free-list pop) is persisted in the
//!   superblock *before* an insert links any entry, so a crash or
//!   injected failure mid-way never lets a later open re-allocate (and
//!   cross-link) blocks a half-finished insert already published;
//! * freed blocks keep their old on-storage content — a reader that
//!   captured a pointer into a chain before a block was unlinked still
//!   reads a consistent (merely stale) chain — and are quarantined for
//!   [`Updater::set_reuse_quarantine_ops`] writer operations before
//!   they can be reused, bounding how stale such a pointer can be when
//!   the block's bytes finally change. Reuse itself is a tracked write,
//!   so caches drop the block's old bytes through their per-key epochs.
//!
//! [`Updater::fail_after_writes`] injects write failures for tests:
//! the failure-injection suite asserts a shard stays queryable after a
//! mid-operation error and that the trace covers every touched block.

use crate::build::{Superblock, MAX_FREE_LIST};
use crate::index::StorageIndex;
use crate::layout::{
    split_hash, BucketBlock, EntryCodec, TableGeometry, BLOCK_SIZE, ENTRIES_PER_BLOCK, HASH_BITS,
    SUPERBLOCK_SIZE,
};
use e2lsh_core::lsh::{hash_v_bits, HashFamily};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Default number of subsequent writer operations a freed block sits in
/// quarantine before it may be reused (see module docs). A stale
/// reader holds a freed block's address only for the remainder of one
/// chain walk — a handful of writer ops at most — so a short window
/// suffices; keeping it well under `MAX_FREE_LIST / frees-per-op`
/// matters, because blocks freed inside the window pile up on the
/// bounded free list and a long quarantine would overflow it (frees
/// beyond the cap are rewritten empty in place and only reclaimed by a
/// later `maintain` pass).
pub const REUSE_QUARANTINE_OPS: u64 = 16;

/// Typed error payload carried by the [`io::Error`] that
/// [`Updater::insert`] returns when the next object ID no longer fits
/// the entry codec — a predictable capacity condition, not a device
/// failure, so callers can shed the write instead of dying.
#[derive(Clone, Copy, Debug)]
pub struct IdSpaceExhausted {
    /// ID width the codec was built with.
    pub id_bits: u32,
}

impl std::fmt::Display for IdSpaceExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "object ID space exhausted (id_bits = {})", self.id_bits)
    }
}

impl std::error::Error for IdSpaceExhausted {}

/// True when `e` is the typed id-space-exhaustion failure from
/// [`Updater::insert`].
pub fn is_id_exhausted(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|r| r.is::<IdSpaceExhausted>())
}

/// Storage mutations performed by one or more update operations: which
/// blocks were rewritten (for cache invalidation) and which occupancy
/// filter bits were newly set (for refreshing a live
/// [`StorageIndex`]'s DRAM bitmaps).
///
/// The trace accumulates across operations until taken with
/// [`Updater::take_trace`], and records writes **even when the
/// operation fails** — a failed insert may already have rewritten
/// blocks, and a cache that kept serving their pre-write bytes would be
/// stale.
#[derive(Clone, Debug, Default)]
pub struct WriteTrace {
    /// Block-aligned byte addresses ([`BLOCK_SIZE`] granularity) of
    /// every rewritten region a cacheable block read could observe
    /// (slot pointers, bucket blocks), deduplicated, in first-touch
    /// order. Superblock and filter-word writes are excluded: those
    /// regions are only read via `read_sync` at open and never enter
    /// the block cache.
    pub blocks: Vec<u64>,
    /// `(radius index, table index, 32-bit hash)` of occupancy-filter
    /// bits newly set by inserts.
    pub filter_bits: Vec<(usize, usize, u64)>,
    /// Bucket blocks returned to the free list (empty-block unlink or
    /// chain compaction) since the last take. Freed blocks are *not*
    /// rewritten — their bytes only change on reuse, which is a tracked
    /// write — so they do not appear in `blocks`.
    pub blocks_freed: u64,
    /// Chains that should have contained a deleted object's entry but
    /// did not (`delete` removed fewer than `r·L` entries): the index
    /// was already inconsistent.
    pub chain_inconsistencies: u64,
}

impl WriteTrace {
    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.filter_bits.is_empty()
    }

    fn record_write(&mut self, addr: u64, len: usize) {
        let bs = BLOCK_SIZE as u64;
        let first = addr / bs * bs;
        let last = (addr + len.max(1) as u64 - 1) / bs * bs;
        let mut b = first;
        loop {
            if !self.blocks.contains(&b) {
                self.blocks.push(b);
            }
            if b == last {
                break;
            }
            b += bs;
        }
    }
}

/// Outcome of one [`Updater::maintain`] call.
#[derive(Clone, Debug, Default)]
pub struct MaintenanceReport {
    /// Bucket blocks unlinked and returned to the free list.
    pub blocks_reclaimed: u64,
    /// Occupancy-filter bits cleared because their bucket no longer
    /// holds live entries.
    pub filter_bits_cleared: u64,
    /// Bytes made reusable (`blocks_reclaimed × BLOCK_SIZE`).
    pub bytes_reclaimed: u64,
    /// Bucket blocks read while scanning (the budget currency — counted
    /// whether the bytes came from the device or the scan cache, so the
    /// cursor advances identically either way).
    pub blocks_scanned: u64,
    /// Scan reads served from the registered block cache
    /// ([`Updater::set_scan_cache`]) instead of the device.
    pub scan_cache_hits: u64,
    /// True when the cursor wrapped: every table slot has been visited
    /// since the previous wrap, so an idle driver can back off.
    pub completed_pass: bool,
    /// Filter words rewritten by GC as `(ri, li, word index, value)` —
    /// mirror them into a live [`StorageIndex`] with
    /// [`StorageIndex::set_filter_word`].
    pub filter_words: Vec<(usize, usize, usize, u64)>,
}

impl MaintenanceReport {
    /// True when the pass reclaimed or cleared anything.
    pub fn productive(&self) -> bool {
        self.blocks_reclaimed > 0 || self.filter_bits_cleared > 0
    }

    /// Fold another report into this one (driver-side accumulation).
    pub fn merge(&mut self, other: &MaintenanceReport) {
        self.blocks_reclaimed += other.blocks_reclaimed;
        self.filter_bits_cleared += other.filter_bits_cleared;
        self.bytes_reclaimed += other.bytes_reclaimed;
        self.blocks_scanned += other.blocks_scanned;
        self.scan_cache_hits += other.scan_cache_hits;
        self.completed_pass |= other.completed_pass;
    }
}

/// Per-table link plan computed by the read-only first phase of an
/// insert (see [`Updater::insert`]).
enum LinkAction {
    /// Head block exists and has room: rewrite it in place.
    Squeeze { head: u64, block: BucketBlock },
    /// Chain needs a fresh head block pointing at the old head.
    Fresh { old_head: u64 },
}

struct LinkPlan {
    ri: usize,
    li: usize,
    h32: u64,
    slot: u64,
    fp: u32,
    action: LinkAction,
}

/// Read-write handle over an index file for online maintenance.
pub struct Updater {
    file: File,
    sb: Superblock,
    geometry: TableGeometry,
    codec: EntryCodec,
    family: HashFamily,
    /// End-of-heap allocation cursor.
    next_block_addr: u64,
    /// Per-table occupancy filters (mirrors the on-disk region; flushed
    /// on every insert that sets a new bit and every GC clear).
    filters: Vec<Vec<u64>>,
    /// Mutations since the last [`Updater::take_trace`].
    trace: WriteTrace,
    /// Monotonic writer-operation stamp (insert/delete/maintain calls);
    /// drives the free-block reuse quarantine.
    op_stamp: u64,
    /// Freed block → op stamp at free time. Not persisted: after a
    /// reopen no reader predates the handle, so every free-listed block
    /// is immediately eligible.
    quarantine: HashMap<u64, u64>,
    /// Reuse quarantine length in writer ops (tests/benches may shorten).
    quarantine_ops: u64,
    /// Maintenance cursor: next table and slot to scan.
    maint_table: usize,
    maint_slot: u64,
    /// Superblock writes attempted (reservation-flush-skip accounting).
    superblock_flushes: u64,
    /// Compatibility: always flush a worst-case heap reservation before
    /// linking, as the pre-free-list write path did.
    compat_always_reserve: bool,
    /// Fault injection: fail the Nth write from now (None = disabled).
    fail_after_writes: Option<u64>,
    /// Writes attempted since fault injection was (re-)armed.
    writes_since_arm: u64,
    /// Block cache maintenance scans may *peek* chain blocks from
    /// (read-only, no promotion/frequency traffic — see
    /// [`Updater::set_scan_cache`]). `None` = always read the device.
    scan_cache: Option<std::sync::Arc<crate::device::cached::BlockCache>>,
}

impl Updater {
    /// Open an index file for updates.
    pub fn open<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut sb_buf = vec![0u8; SUPERBLOCK_SIZE];
        read_at(&file, 0, &mut sb_buf)?;
        let sb = Superblock::decode(&sb_buf)?;
        let geometry = TableGeometry {
            u_bits: sb.u_bits,
            filter_bits: sb.filter_bits,
            num_radii: sb.radii.len(),
            l: sb.l as usize,
        };
        let codec = EntryCodec::new((sb.capacity as usize).max(sb.n as usize), sb.u_bits);
        let family = HashFamily::generate(
            sb.dim as usize,
            sb.m as usize,
            sb.w,
            sb.l as usize,
            &sb.radii,
            sb.seed,
        );
        // Load the filters.
        let fbytes = geometry.filter_bytes_per_table() as usize;
        let mut filters = Vec::with_capacity(geometry.num_tables());
        for t in 0..geometry.num_tables() {
            let (ri, li) = (t / geometry.l, t % geometry.l);
            let mut buf = vec![0u8; fbytes];
            read_at(&file, geometry.filter_base(ri, li), &mut buf)?;
            filters.push(
                buf.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            );
        }
        let next_block_addr = sb.total_bytes;
        Ok(Self {
            file,
            sb,
            geometry,
            codec,
            family,
            next_block_addr,
            filters,
            trace: WriteTrace::default(),
            op_stamp: 0,
            quarantine: HashMap::new(),
            quarantine_ops: REUSE_QUARANTINE_OPS,
            maint_table: 0,
            maint_slot: 0,
            superblock_flushes: 0,
            compat_always_reserve: false,
            fail_after_writes: None,
            writes_since_arm: 0,
            scan_cache: None,
        })
    }

    /// Let maintenance chain scans serve block reads from `cache`
    /// (a shard's DRAM block cache) instead of the device, via
    /// [`BlockCache::peek`] — no recency promotion, no frequency-sketch
    /// traffic, no hit/miss counters, so a full-index scan cannot
    /// pollute the replacement state queries depend on. Safe because
    /// the serving layer invalidates every rewritten block in the cache
    /// (the cache never holds bytes staler than the file), and reads of
    /// blocks rewritten by *this* updater's still-unapplied trace fall
    /// back to the device.
    ///
    /// [`BlockCache::peek`]: crate::device::cached::BlockCache::peek
    pub fn set_scan_cache(
        &mut self,
        cache: Option<std::sync::Arc<crate::device::cached::BlockCache>>,
    ) {
        self.scan_cache = cache;
    }

    /// One maintenance chain-block read: from the scan cache when the
    /// block is resident (and not rewritten by the un-applied trace),
    /// else from the device.
    fn read_chain_block(&self, addr: u64, rep: &mut MaintenanceReport) -> io::Result<Vec<u8>> {
        if let Some(cache) = &self.scan_cache {
            if !self.trace.blocks.contains(&addr) {
                if let Some(data) = cache.peek(addr / BLOCK_SIZE as u64) {
                    if data.len() == BLOCK_SIZE {
                        rep.scan_cache_hits += 1;
                        return Ok(data.to_vec());
                    }
                }
            }
        }
        let mut buf = vec![0u8; BLOCK_SIZE];
        read_at(&self.file, addr, &mut buf)?;
        Ok(buf)
    }

    /// Take the accumulated [`WriteTrace`] (mutations since the last
    /// call), leaving an empty trace behind. Call after each operation
    /// — including a failed one — to invalidate the rewritten blocks in
    /// any block cache over this file and to mirror new filter bits
    /// into a live [`StorageIndex`].
    pub fn take_trace(&mut self) -> WriteTrace {
        std::mem::take(&mut self.trace)
    }

    /// The accumulated trace since the last [`Updater::take_trace`].
    pub fn trace(&self) -> &WriteTrace {
        &self.trace
    }

    /// Fault injection for tests: make the `n`-th write from now (0 =
    /// the very next one) fail with [`io::ErrorKind::Other`]. `None`
    /// disarms. Reads are unaffected; the failed write is still
    /// recorded in the trace (the bytes on storage are untrusted once a
    /// write errors).
    pub fn fail_after_writes(&mut self, n: Option<u64>) {
        self.fail_after_writes = n;
        self.writes_since_arm = 0;
    }

    /// Shorten (or lengthen) the freed-block reuse quarantine. The
    /// default [`REUSE_QUARANTINE_OPS`] bounds how long a concurrent
    /// reader can hold a pointer at a block whose bytes are about to be
    /// rewritten for a different chain; single-threaded tests may set 0.
    pub fn set_reuse_quarantine_ops(&mut self, ops: u64) {
        self.quarantine_ops = ops;
    }

    /// Compatibility switch for equivalence tests: when on, every
    /// insert flushes a worst-case heap reservation before linking —
    /// the pre-free-list write path — instead of skipping the flush
    /// when all target chains have room.
    pub fn set_compat_reservation_flush(&mut self, on: bool) {
        self.compat_always_reserve = on;
    }

    /// Superblock writes attempted so far (reservation-skip accounting).
    pub fn superblock_flushes(&self) -> u64 {
        self.superblock_flushes
    }

    /// Current on-storage footprint in bytes (superblock `total_bytes`).
    pub fn total_bytes(&self) -> u64 {
        self.sb.total_bytes
    }

    /// Blocks currently parked on the persistent free list.
    pub fn free_list_len(&self) -> usize {
        self.sb.free.len()
    }

    /// Fault-injectable write (no trace entry): for regions the block
    /// cache can never serve — the superblock and the filter words are
    /// only ever read via `read_sync` at open, and aligned slot-block
    /// reads cannot cross into them, so invalidating their blocks would
    /// only pollute per-key epoch maps.
    fn write_checked(&mut self, addr: u64, bytes: &[u8]) -> io::Result<()> {
        if let Some(n) = self.fail_after_writes {
            let k = self.writes_since_arm;
            self.writes_since_arm += 1;
            if k >= n {
                return Err(io::Error::other("injected device write failure"));
            }
        }
        write_at(&self.file, addr, bytes)
    }

    /// Tracked write: records the touched blocks for cache
    /// invalidation, applies fault injection, then writes. Used for
    /// every write a cacheable block read could observe (slot pointers,
    /// bucket blocks).
    fn write_tracked(&mut self, addr: u64, bytes: &[u8]) -> io::Result<()> {
        self.trace.record_write(addr, bytes.len());
        self.write_checked(addr, bytes)
    }

    /// Number of objects the index currently covers (IDs are `0..n`).
    pub fn len(&self) -> usize {
        self.sb.n as usize
    }

    /// The index file's region layout (table/filter/heap bases). Lets
    /// serving layers derive cache-region boundaries from the same
    /// geometry the writer uses.
    pub fn geometry(&self) -> &TableGeometry {
        &self.geometry
    }

    /// Advance the object count to `target`, burning the skipped ids —
    /// recovery for a failed insert whose best-effort burn flush was
    /// lost (the caller's coordinate mirror is then longer than the
    /// on-storage count, and resuming id assignment from the stale `n`
    /// would hand a new object an id that half-exists in other chains).
    /// No-op when the count is already `≥ target`.
    pub fn reconcile_len(&mut self, target: usize) -> io::Result<()> {
        if (self.sb.n as usize) < target {
            self.sb.n = target as u64;
            self.flush_superblock()?;
        }
        Ok(())
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sb.n == 0
    }

    /// Insert a new object with the next available ID; returns that ID.
    ///
    /// The caller must also append the same coordinates to its in-DRAM
    /// [`e2lsh_core::Dataset`] so distance checks can find them.
    ///
    /// When the next ID no longer fits the entry codec's ID bits the
    /// insert fails **before any mutation** with a typed error
    /// ([`IdSpaceExhausted`], recognizable via [`is_id_exhausted`]) and
    /// the ID is *not* consumed — the condition is permanent, so
    /// burning ids would merely overflow forever. The codec is sized at
    /// build time from [`crate::build::BuildConfig::capacity`] (default
    /// 2× the build-time n).
    ///
    /// **For device errors the ID is still consumed**: an error mid-way
    /// may already have linked the object into some tables, so the
    /// failed ID is burned (`n` still advances) rather than recycled —
    /// recycling would hand a *different* object an ID that half-exists
    /// in other tables' chains, silently corrupting results. Callers
    /// that mirror coordinates (the serving layer) keep the failed row
    /// for the same reason; the object is at worst partially findable,
    /// never wrong.
    pub fn insert(&mut self, point: &[f32]) -> io::Result<u32> {
        assert_eq!(point.len(), self.sb.dim as usize);
        let id = self.sb.n as u32;
        if u64::from(id) >= (1u64 << self.codec.id_bits) {
            return Err(io::Error::other(IdSpaceExhausted {
                id_bits: self.codec.id_bits,
            }));
        }
        self.op_stamp += 1;

        // Phase 1 (reads only): plan every table's link. Nothing has
        // been written yet, so a read error here neither burns the ID
        // nor leaves partial state.
        let mut plans = Vec::with_capacity(self.geometry.num_tables());
        let mut scratch = Vec::new();
        for ri in 0..self.geometry.num_radii {
            let radius = self.sb.radii[ri];
            for li in 0..self.geometry.l {
                let key64 = self
                    .family
                    .compound(ri, li)
                    .hash64(point, radius, &mut scratch);
                let h32 = hash_v_bits(key64, HASH_BITS);
                let (slot, fp) = split_hash(h32, self.geometry.u_bits);
                let slot_addr = self.geometry.slot_addr(ri, li, slot);
                let mut head_buf = [0u8; 8];
                read_at(&self.file, slot_addr, &mut head_buf)?;
                let head = u64::from_le_bytes(head_buf);
                let action = if head != 0 {
                    let mut buf = vec![0u8; BLOCK_SIZE];
                    read_at(&self.file, head, &mut buf)?;
                    let block = BucketBlock::decode(&self.codec, &buf);
                    if block.entries.len() < ENTRIES_PER_BLOCK {
                        LinkAction::Squeeze { head, block }
                    } else {
                        LinkAction::Fresh { old_head: head }
                    }
                } else {
                    LinkAction::Fresh { old_head: 0 }
                };
                plans.push(LinkPlan {
                    ri,
                    li,
                    h32,
                    slot,
                    fp,
                    action,
                });
            }
        }

        let mut outcome = Ok(());
        if self.compat_always_reserve {
            // Legacy path: persist a worst-case reservation (one fresh
            // block per table past the current cursor) whether or not
            // any fresh block is needed. The exact state is flushed at
            // the end either way, so the final image is identical.
            let exact = self.sb.total_bytes;
            self.sb.total_bytes =
                self.next_block_addr + (self.geometry.num_tables() as u64) * BLOCK_SIZE as u64;
            outcome = self.flush_superblock();
            self.sb.total_bytes = exact;
        }

        // Phase 2: allocate fresh blocks (free-list pops first, heap
        // growth for the remainder) and persist the allocation in the
        // superblock *before* any entry is published. A crash after
        // this flush at worst leaks the allocated blocks — a later open
        // can never hand them out again, so chains cannot cross-link.
        // When every target chain has room this flush is skipped
        // entirely: the common squeeze-only insert pays one superblock
        // write (the final count flush) instead of two.
        let mut fresh_addrs = Vec::new();
        if outcome.is_ok() {
            let fresh_needed = plans
                .iter()
                .filter(|p| matches!(p.action, LinkAction::Fresh { .. }))
                .count();
            if fresh_needed > 0 {
                let heap_before = self.next_block_addr;
                for _ in 0..fresh_needed {
                    fresh_addrs.push(self.alloc_block_addr());
                }
                let popped_free = fresh_addrs.iter().any(|&a| a < heap_before);
                self.sb.total_bytes = self.next_block_addr;
                // In compat mode the worst-case reservation above
                // already covers pure heap growth; only free-list pops
                // (which the legacy path never had) still force a flush.
                if !self.compat_always_reserve || popped_free {
                    outcome = self.flush_superblock();
                }
            }
        }

        // Phase 3: link every table, in table order (fresh blocks are
        // consumed in the same order they were allocated, so the image
        // matches the sequential-allocation legacy path bit for bit).
        if outcome.is_ok() {
            let mut next_fresh = 0usize;
            'link: for plan in &plans {
                let (ri, li) = (plan.ri, plan.li);
                let step = match &plan.action {
                    LinkAction::Squeeze { head, block } => {
                        let mut block = block.clone();
                        block.entries.push((id, plan.fp));
                        let mut out = Vec::with_capacity(BLOCK_SIZE);
                        block.encode(&self.codec, &mut out);
                        self.write_tracked(*head, &out)
                    }
                    LinkAction::Fresh { old_head } => {
                        let block = BucketBlock {
                            next: *old_head,
                            entries: vec![(id, plan.fp)],
                        };
                        let mut out = Vec::with_capacity(BLOCK_SIZE);
                        block.encode(&self.codec, &mut out);
                        let addr = fresh_addrs[next_fresh];
                        next_fresh += 1;
                        // The block is fully written before the slot
                        // pointer publishes it, so a concurrent reader
                        // sees the old head or the complete new one,
                        // never a partial block.
                        let slot_addr = self.geometry.slot_addr(ri, li, plan.slot);
                        self.write_tracked(addr, &out)
                            .and_then(|()| self.write_tracked(slot_addr, &addr.to_le_bytes()))
                    }
                };
                outcome = step.and_then(|()| self.set_filter_bit(ri, li, plan.h32));
                if outcome.is_err() {
                    break 'link;
                }
            }
        }

        // Phase 4: consume the ID in every post-plan outcome (see the
        // doc comment) and flush the exact count and cursor. On failure
        // the final flush is best-effort: the in-memory bump keeps this
        // handle consistent, and a reopen sees either the allocation
        // flush or the exact state, both safe.
        self.sb.n += 1;
        self.sb.total_bytes = self.next_block_addr;
        let flushed = self.flush_superblock();
        outcome?;
        flushed?;
        Ok(id)
    }

    /// Remove an object from every chain it appears in. Returns the number
    /// of entries removed (normally `r·L`; fewer only if the index was
    /// already inconsistent — each missing chain is counted in
    /// [`WriteTrace::chain_inconsistencies`]). The ID itself is not
    /// reused.
    ///
    /// A block emptied by the delete is unlinked from its chain and
    /// pushed onto the persistent free list (unless the list is full, in
    /// which case it is rewritten empty in place and left for a later
    /// [`Updater::maintain`] pass). The coordinates should be retired
    /// from the caller's dataset too; stale occupancy-filter bits are
    /// left for `maintain`'s tombstone GC — until then they only cost a
    /// wasted probe, exactly the paper's trade-off of cheap deletes
    /// against rare rebuilds.
    pub fn delete(&mut self, point: &[f32], id: u32) -> io::Result<usize> {
        assert_eq!(point.len(), self.sb.dim as usize);
        self.op_stamp += 1;
        let mut removed = 0usize;
        let mut freed_any = false;
        let mut scratch = Vec::new();
        for ri in 0..self.geometry.num_radii {
            let radius = self.sb.radii[ri];
            for li in 0..self.geometry.l {
                let key64 = self
                    .family
                    .compound(ri, li)
                    .hash64(point, radius, &mut scratch);
                let h32 = hash_v_bits(key64, HASH_BITS);
                let (slot, _) = split_hash(h32, self.geometry.u_bits);
                let (r, freed) = self.unlink_entry(ri, li, slot, id)?;
                removed += r;
                freed_any |= freed;
                if r == 0 {
                    self.trace.chain_inconsistencies += 1;
                }
            }
        }
        if freed_any {
            // One write persists the grown free list; n and total_bytes
            // are unchanged by a delete.
            self.flush_superblock()?;
        }
        Ok(removed)
    }

    /// Merge the in-memory filter state into an open [`StorageIndex`] so
    /// an in-process reader observes newly inserted prefixes. (Readers
    /// opened from the file after the update see them automatically;
    /// the serving layer instead mirrors the per-operation
    /// [`WriteTrace::filter_bits`], which is cheaper than a full merge.)
    pub fn sync_filters_into(&self, index: &StorageIndex) {
        for (t, words) in self.filters.iter().enumerate() {
            let ri = t / self.geometry.l;
            let li = t % self.geometry.l;
            index.merge_filter_words(ri, li, words);
        }
    }

    /// One budgeted maintenance tick: resume the cursor where the last
    /// tick left off and scan chains until about `block_budget` bucket
    /// blocks have been read (the current slot is always finished).
    /// Three reclamation actions run per scanned slot:
    ///
    /// * **empty-block unlink** — blocks holding no live entries are
    ///   repointed past and freed;
    /// * **chain compaction** — a block whose entries fit in its
    ///   predecessor is merged into it (one atomic predecessor rewrite
    ///   carrying both the combined entries and the successor pointer)
    ///   and freed;
    /// * **tombstone GC** — the slot's live filter prefixes are
    ///   recomputed from its surviving entries and every other bit of
    ///   the slot's coset is cleared, on storage and in the in-memory
    ///   mirror (the filter is exact, so this cannot drop a live
    ///   object's bit).
    ///
    /// Freed blocks keep their bytes and enter the reuse quarantine;
    /// see the module docs for why a concurrent stale reader stays
    /// safe. Returns what was reclaimed; the caller mirrors
    /// [`MaintenanceReport::filter_words`] into its live index and
    /// invalidates [`WriteTrace::blocks`] as after any write.
    pub fn maintain(&mut self, block_budget: usize) -> io::Result<MaintenanceReport> {
        let mut rep = MaintenanceReport::default();
        if self.geometry.num_tables() == 0 || block_budget == 0 {
            return Ok(rep);
        }
        self.op_stamp += 1;
        let slots = self.geometry.slots();
        let mut budget = i64::try_from(block_budget).unwrap_or(i64::MAX);
        let mut sb_dirty = false;
        while budget > 0 {
            let t = self.maint_table;
            let (ri, li) = (t / self.geometry.l, t % self.geometry.l);
            let slot = self.maint_slot;
            let reads = self.maintain_slot(ri, li, slot, &mut rep, &mut sb_dirty)?;
            budget -= reads.max(1) as i64;
            self.maint_slot += 1;
            if self.maint_slot == slots {
                self.maint_slot = 0;
                self.maint_table += 1;
                if self.maint_table == self.geometry.num_tables() {
                    self.maint_table = 0;
                    rep.completed_pass = true;
                    break;
                }
            }
        }
        if sb_dirty {
            self.flush_superblock()?;
        }
        Ok(rep)
    }

    /// Scan one slot's chain: unlink empty blocks, merge mergeable
    /// neighbours, then GC the slot's filter coset. Returns the number
    /// of block reads performed.
    fn maintain_slot(
        &mut self,
        ri: usize,
        li: usize,
        slot: u64,
        rep: &mut MaintenanceReport,
        sb_dirty: &mut bool,
    ) -> io::Result<u64> {
        let slot_addr = self.geometry.slot_addr(ri, li, slot);
        let mut head_buf = [0u8; 8];
        read_at(&self.file, slot_addr, &mut head_buf)?;
        let head = u64::from_le_bytes(head_buf);
        let mut reads = 0u64;
        // Live filter prefixes of this slot's chain. An entry's prefix
        // reconstructs exactly from its stored (slot, fingerprint):
        // h32 = slot | (fp << u), and the filter indexes its low
        // `filter_bits` bits.
        let filter_mask = (1u64 << self.geometry.filter_bits) - 1;
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut prev: Option<(u64, BucketBlock)> = None;
        let mut addr = head;
        while addr != 0 {
            let buf = self.read_chain_block(addr, rep)?;
            reads += 1;
            let block = BucketBlock::decode(&self.codec, &buf);
            let next = block.next;
            for &(_, fp) in &block.entries {
                live.insert((slot | (u64::from(fp) << self.geometry.u_bits)) & filter_mask);
            }
            if block.entries.is_empty() && self.can_free() {
                // Unlink: repoint whatever points at this block past
                // it, then free it without touching its bytes (a stale
                // reader that already holds its address still walks a
                // consistent chain).
                match &mut prev {
                    None => self.write_tracked(slot_addr, &next.to_le_bytes())?,
                    Some((paddr, pblock)) => {
                        pblock.next = next;
                        let (pa, out) = {
                            let mut out = Vec::with_capacity(BLOCK_SIZE);
                            pblock.encode(&self.codec, &mut out);
                            (*paddr, out)
                        };
                        self.write_tracked(pa, &out)?;
                    }
                }
                self.free_block(addr);
                rep.blocks_reclaimed += 1;
                rep.bytes_reclaimed += BLOCK_SIZE as u64;
                *sb_dirty = true;
                addr = next;
                continue;
            }
            if let Some((paddr, pblock)) = &mut prev {
                if pblock.entries.len() + block.entries.len() <= ENTRIES_PER_BLOCK
                    && self.can_free()
                {
                    // Compact: one predecessor rewrite both absorbs
                    // this block's entries and skips past it, so a
                    // reader sees the old chain or the merged one —
                    // never a state with entries missing. (A stale
                    // reader holding this block's address sees its old
                    // entries twice; the query merge dedups by id.)
                    pblock.entries.extend_from_slice(&block.entries);
                    pblock.next = next;
                    let (pa, out) = {
                        let mut out = Vec::with_capacity(BLOCK_SIZE);
                        pblock.encode(&self.codec, &mut out);
                        (*paddr, out)
                    };
                    self.write_tracked(pa, &out)?;
                    self.free_block(addr);
                    rep.blocks_reclaimed += 1;
                    rep.bytes_reclaimed += BLOCK_SIZE as u64;
                    *sb_dirty = true;
                    addr = next;
                    continue;
                }
            }
            prev = Some((addr, block));
            addr = next;
        }
        rep.blocks_scanned += reads;

        // Tombstone GC: clear every set coset bit without a live entry.
        // The on-disk filter is written word-wise first (matching
        // set_filter_bit's failure discipline), then mirrored.
        let t = ri * self.geometry.l + li;
        let cosets = 1u64 << (self.geometry.filter_bits - self.geometry.u_bits);
        let mut dirty_words: std::collections::BTreeMap<usize, u64> =
            std::collections::BTreeMap::new();
        for j in 0..cosets {
            let prefix = (slot | (j << self.geometry.u_bits)) & filter_mask;
            let word = (prefix / 64) as usize;
            let bit = 1u64 << (prefix % 64);
            let cur = dirty_words
                .get(&word)
                .copied()
                .unwrap_or(self.filters[t][word]);
            if cur & bit != 0 && !live.contains(&prefix) {
                dirty_words.insert(word, cur & !bit);
                rep.filter_bits_cleared += 1;
            }
        }
        for (word, value) in dirty_words {
            let waddr = self.geometry.filter_base(ri, li) + (word as u64) * 8;
            self.write_checked(waddr, &value.to_le_bytes())?;
            self.filters[t][word] = value;
            rep.filter_words.push((ri, li, word, value));
        }
        Ok(reads)
    }

    /// True when the persistent free list has room for another block.
    fn can_free(&self) -> bool {
        self.sb.free.len() < MAX_FREE_LIST
    }

    /// Park `addr` on the free list and start its reuse quarantine.
    /// Callers persist the list with the next superblock flush.
    fn free_block(&mut self, addr: u64) {
        debug_assert!(self.can_free());
        debug_assert!(
            addr >= self.geometry.heap_base()
                && (addr - self.geometry.heap_base()).is_multiple_of(BLOCK_SIZE as u64)
        );
        self.sb.free.push(addr);
        self.quarantine.insert(addr, self.op_stamp);
        self.trace.blocks_freed += 1;
    }

    /// Next block address for a fresh chain head: the oldest
    /// quarantine-cleared free-list entry, else heap growth.
    fn alloc_block_addr(&mut self) -> u64 {
        let eligible = self.sb.free.iter().position(|a| {
            self.quarantine
                .get(a)
                .is_none_or(|&s| self.op_stamp.saturating_sub(s) >= self.quarantine_ops)
        });
        if let Some(i) = eligible {
            let addr = self.sb.free.remove(i);
            self.quarantine.remove(&addr);
            addr
        } else {
            let addr = self.next_block_addr;
            self.next_block_addr += BLOCK_SIZE as u64;
            addr
        }
    }

    /// Remove `id` from the chain of `slot` in table `(ri, li)`.
    /// Returns `(entries removed, block freed)`.
    fn unlink_entry(
        &mut self,
        ri: usize,
        li: usize,
        slot: u64,
        id: u32,
    ) -> io::Result<(usize, bool)> {
        let slot_addr = self.geometry.slot_addr(ri, li, slot);
        let mut head_buf = [0u8; 8];
        read_at(&self.file, slot_addr, &mut head_buf)?;
        let mut addr = u64::from_le_bytes(head_buf);
        let mut prev: Option<(u64, BucketBlock)> = None;
        while addr != 0 {
            let mut buf = vec![0u8; BLOCK_SIZE];
            read_at(&self.file, addr, &mut buf)?;
            let mut block = BucketBlock::decode(&self.codec, &buf);
            let before = block.entries.len();
            block.entries.retain(|&(eid, _)| eid != id);
            if block.entries.len() != before {
                let removed = before - block.entries.len();
                if block.entries.is_empty() && self.can_free() {
                    // Unlink the emptied block instead of rewriting it:
                    // repoint the predecessor (slot pointer or previous
                    // block) past it, then free it with its bytes
                    // intact for any stale reader mid-walk.
                    match prev {
                        None => self.write_tracked(slot_addr, &block.next.to_le_bytes())?,
                        Some((paddr, mut pblock)) => {
                            pblock.next = block.next;
                            let mut out = Vec::with_capacity(BLOCK_SIZE);
                            pblock.encode(&self.codec, &mut out);
                            self.write_tracked(paddr, &out)?;
                        }
                    }
                    self.free_block(addr);
                    return Ok((removed, true));
                }
                let mut out = Vec::with_capacity(BLOCK_SIZE);
                block.encode(&self.codec, &mut out);
                self.write_tracked(addr, &out)?;
                return Ok((removed, false)); // at most once per chain
            }
            let next = block.next;
            prev = Some((addr, block));
            addr = next;
        }
        Ok((0, false))
    }

    fn set_filter_bit(&mut self, ri: usize, li: usize, h32: u64) -> io::Result<()> {
        let t = ri * self.geometry.l + li;
        let prefix = (h32 & ((1u64 << self.geometry.filter_bits) - 1)) as usize;
        let word = prefix / 64;
        if (self.filters[t][word] >> (prefix % 64)) & 1 == 1 {
            return Ok(());
        }
        // Write the touched word to storage *before* updating the
        // in-memory mirror: if the write fails, the bit must stay clear
        // in memory too, or a later insert with the same prefix would
        // early-return above without ever persisting it — leaving the
        // object unfindable after a reopen, with no error anywhere.
        let new_word = self.filters[t][word] | 1u64 << (prefix % 64);
        let addr = self.geometry.filter_base(ri, li) + (word as u64) * 8;
        self.write_checked(addr, &new_word.to_le_bytes())?;
        self.filters[t][word] = new_word;
        self.trace.filter_bits.push((ri, li, h32));
        Ok(())
    }

    fn flush_superblock(&mut self) -> io::Result<()> {
        self.superblock_flushes += 1;
        let sb = self.sb.encode();
        self.write_checked(0, &sb)
    }
}

#[cfg(unix)]
fn read_at(file: &File, addr: u64, buf: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    let mut read = 0usize;
    while read < buf.len() {
        match file.read_at(&mut buf[read..], addr + read as u64) {
            Ok(0) => {
                // Past EOF (fresh block region): zero-fill.
                buf[read..].fill(0);
                return Ok(());
            }
            Ok(k) => read += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(unix)]
fn write_at(file: &File, addr: u64, bytes: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(bytes, addr)
}

#[cfg(not(unix))]
fn read_at(_: &File, _: u64, _: &mut [u8]) -> io::Result<()> {
    unimplemented!("updates require unix")
}
#[cfg(not(unix))]
fn write_at(_: &File, _: u64, _: &[u8]) -> io::Result<()> {
    unimplemented!("updates require unix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use crate::device::sim::{Backing, DeviceProfile, SimStorage};
    use crate::device::Interface;
    use crate::query::{run_queries, EngineConfig};
    use crate::testutil::temp_path;
    use e2lsh_core::dataset::Dataset;
    use e2lsh_core::params::E2lshParams;
    use rand::{Rng, SeedableRng};

    fn dataset(n: usize, dim: usize) -> Dataset {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows)
    }

    fn nn_of(data: &Dataset, queries: &Dataset, path: &std::path::Path) -> Vec<Vec<(u32, f32)>> {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let mut cfg = EngineConfig::simulated(Interface::SPDK, 1);
        cfg.s_override = Some(1_000_000);
        run_queries(&index, data, queries, &cfg, &mut dev)
            .outcomes
            .into_iter()
            .map(|o| o.neighbors)
            .collect()
    }

    #[test]
    fn insert_makes_object_findable() {
        let ds = dataset(400, 8);
        // Build over the first 399 objects; insert the last one online.
        let initial = ds.prefix(399);
        let params = E2lshParams::derive(400, 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        // Derive for n=400 so the codec has headroom for the insert.
        let mut p399 = params.clone();
        p399.n = 399;
        let path = temp_path("insert.idx");
        build_index(&initial, &p399, &BuildConfig::default(), &path).unwrap();

        let mut up = Updater::open(&path).unwrap();
        assert_eq!(up.len(), 399);
        let id = up.insert(ds.point(399)).unwrap();
        assert_eq!(id, 399);
        assert_eq!(up.len(), 400);
        drop(up);

        // Query exactly the inserted point: it must be its own NN.
        let queries = Dataset::from_rows(&[ds.point(399).to_vec()]);
        let res = nn_of(&ds, &queries, &path);
        assert_eq!(res[0].first().map(|r| r.0), Some(399));
        assert_eq!(res[0][0].1, 0.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delete_makes_object_unfindable() {
        let ds = dataset(300, 8);
        let params = E2lshParams::derive(300, 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        let path = temp_path("delete.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();

        let victim = 123u32;
        let mut up = Updater::open(&path).unwrap();
        let removed = up.delete(ds.point(victim as usize), victim).unwrap();
        assert_eq!(
            removed,
            params.l * params.num_radii(),
            "must vanish from every table"
        );
        assert_eq!(up.trace().chain_inconsistencies, 0);
        drop(up);

        // Self-query for the victim must now return a different object.
        let queries = Dataset::from_rows(&[ds.point(victim as usize).to_vec()]);
        let res = nn_of(&ds, &queries, &path);
        if let Some(&(id, _)) = res[0].first() {
            assert_ne!(id, victim, "deleted object must not be returned");
        }
        std::fs::remove_file(&path).ok();
    }

    /// A maintenance tick whose chain reads are served from a block
    /// cache ([`Updater::set_scan_cache`]) must reclaim exactly what a
    /// device-read tick reclaims, leave a byte-identical file, and
    /// never touch the cache's query-facing counters (peek only).
    #[test]
    fn maintain_scan_cache_matches_device_reads() {
        let ds = dataset(200, 6);
        let params = E2lshParams::derive(200, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        let path_a = temp_path("maint_nocache.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path_a).unwrap();
        let mut up = Updater::open(&path_a).unwrap();
        for i in (0..200).step_by(2) {
            up.delete(ds.point(i), i as u32).unwrap();
        }
        drop(up);
        let path_b = temp_path("maint_cache.idx");
        std::fs::copy(&path_a, &path_b).unwrap();

        let mut a = Updater::open(&path_a).unwrap();
        let rep_a = a.maintain(10_000).unwrap();
        assert_eq!(rep_a.scan_cache_hits, 0);
        drop(a);

        // Pre-fill a cache with the file's current heap blocks, keyed
        // exactly like the serving layer keys chain reads (`addr /
        // BLOCK_SIZE`, bytes starting at `addr`: heap blocks are
        // 512-spaced from `heap_base`, which need not be 512-aligned).
        let mut b = Updater::open(&path_b).unwrap();
        let bytes = std::fs::read(&path_b).unwrap();
        let cache = std::sync::Arc::new(crate::device::cached::BlockCache::new(1 << 16, 8));
        let mut addr = b.geometry().heap_base();
        while addr as usize + BLOCK_SIZE <= bytes.len() {
            cache.insert(
                addr / BLOCK_SIZE as u64,
                std::sync::Arc::from(&bytes[addr as usize..addr as usize + BLOCK_SIZE]),
            );
            addr += BLOCK_SIZE as u64;
        }
        let (h0, m0) = (cache.hits(), cache.misses());
        b.set_scan_cache(Some(std::sync::Arc::clone(&cache)));
        let rep_b = b.maintain(10_000).unwrap();
        drop(b);

        assert!(rep_b.scan_cache_hits > 0, "scan never used the cache");
        assert_eq!(rep_a.blocks_reclaimed, rep_b.blocks_reclaimed);
        assert_eq!(rep_a.filter_bits_cleared, rep_b.filter_bits_cleared);
        assert_eq!(
            rep_a.blocks_scanned, rep_b.blocks_scanned,
            "budget currency must not depend on cache state"
        );
        assert_eq!(rep_a.filter_words, rep_b.filter_words);
        assert_eq!(rep_a.completed_pass, rep_b.completed_pass);
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap(),
            "cache-served scan must leave a byte-identical index"
        );
        assert_eq!(
            (cache.hits(), cache.misses()),
            (h0, m0),
            "scan reads must not count as cache lookups"
        );
        std::fs::remove_file(&path_a).ok();
        std::fs::remove_file(&path_b).ok();
    }

    #[test]
    fn many_inserts_fill_chains_correctly() {
        let ds = dataset(260, 6);
        let initial = ds.prefix(10);
        let mut params = E2lshParams::derive(260, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        params.n = 10;
        let path = temp_path("many_inserts.idx");
        let cfg = BuildConfig {
            capacity: Some(260),
            ..Default::default()
        };
        build_index(&initial, &params, &cfg, &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        for i in 10..260 {
            assert_eq!(up.insert(ds.point(i)).unwrap(), i as u32);
        }
        drop(up);
        // Every object findable by self-query.
        let mut queries = Dataset::with_capacity(6, 26);
        for i in (0..260).step_by(10) {
            queries.push(ds.point(i));
        }
        let res = nn_of(&ds, &queries, &path);
        let mut found = 0;
        for (qi, r) in res.iter().enumerate() {
            if let Some(&(_, d)) = r.first() {
                if d == 0.0 {
                    found += 1;
                } else {
                    eprintln!("query {qi}: nn dist {d}");
                }
            }
        }
        assert!(found >= 24, "self-found {found}/26");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delete_then_reinsert_roundtrip() {
        let ds = dataset(150, 6);
        let params = E2lshParams::derive(150, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        let path = temp_path("del_reins.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        let removed = up.delete(ds.point(7), 7).unwrap();
        assert!(removed > 0);
        // Re-inserting the same coordinates gets a fresh ID.
        let new_id = up.insert(ds.point(7)).unwrap();
        assert_eq!(new_id, 150);
        drop(up);
        // The coordinates live at index 150 now; extend the DRAM dataset.
        let mut extended = ds.clone();
        extended.push(ds.point(7));
        let queries = Dataset::from_rows(&[ds.point(7).to_vec()]);
        let res = nn_of(&extended, &queries, &path);
        assert_eq!(res[0].first().map(|r| r.1), Some(0.0));
        assert_eq!(res[0][0].0, 150);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn id_exhaustion_is_typed_and_consumes_nothing() {
        let ds = dataset(4, 6);
        let mut params = E2lshParams::derive(4, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        params.n = 4;
        let path = temp_path("id_exhaust.idx");
        // capacity 4 → id_bits 2 → ids 0..=3, all used at build time.
        let cfg = BuildConfig {
            capacity: Some(4),
            ..Default::default()
        };
        build_index(&ds, &params, &cfg, &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        assert_eq!(up.len(), 4);
        let before_flushes = up.superblock_flushes();
        let err = up.insert(ds.point(0)).unwrap_err();
        assert!(is_id_exhausted(&err), "want typed error, got {err:?}");
        assert!(!is_id_exhausted(&io::Error::other("x")));
        // No mutation: no burned id, no writes, no trace.
        assert_eq!(up.len(), 4, "id must not be consumed");
        assert_eq!(up.superblock_flushes(), before_flushes);
        assert!(up.trace().is_empty());
        // The condition is permanent.
        assert!(is_id_exhausted(&up.insert(ds.point(1)).unwrap_err()));
        // Deletes still work.
        assert!(up.delete(ds.point(2), 2).unwrap() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn squeeze_insert_skips_reservation_flush() {
        let ds = dataset(90, 8);
        let initial = ds.prefix(89);
        let mut params = E2lshParams::derive(90, 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        params.n = 89;
        let path = temp_path("skip_flush.idx");
        build_index(&initial, &params, &BuildConfig::default(), &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        // Re-inserting the coordinates of a built object hits that
        // object's chains in every table, so every head exists; with 89
        // entries per table no head block can be full, so the insert is
        // squeeze-only: exactly one superblock flush (the final count),
        // not two.
        let before = up.superblock_flushes();
        up.insert(ds.point(5)).unwrap();
        assert_eq!(
            up.superblock_flushes() - before,
            1,
            "squeeze-only insert must skip the reservation flush"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skipped_reservation_flush_is_bit_exact_with_legacy_path() {
        let ds = dataset(120, 6);
        let initial = ds.prefix(40);
        let mut params = E2lshParams::derive(120, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        params.n = 40;
        let path_new = temp_path("bitexact_new.idx");
        let path_old = temp_path("bitexact_old.idx");
        let cfg = BuildConfig {
            capacity: Some(400),
            ..Default::default()
        };
        build_index(&initial, &params, &cfg, &path_new).unwrap();
        build_index(&initial, &params, &cfg, &path_old).unwrap();
        // Mixed workload: fresh points (mostly empty slots → fresh
        // blocks) and re-inserted coordinates (existing chains with
        // room → squeeze-only inserts that skip the reservation flush).
        let workload: Vec<usize> = (40..80).chain((0..40).map(|i| i % 40)).collect();
        let mut flushes = (0u64, 0u64);
        {
            let mut up = Updater::open(&path_new).unwrap();
            for &i in &workload {
                up.insert(ds.point(i)).unwrap();
            }
            flushes.0 = up.superblock_flushes();
        }
        {
            let mut up = Updater::open(&path_old).unwrap();
            up.set_compat_reservation_flush(true);
            for &i in &workload {
                up.insert(ds.point(i)).unwrap();
            }
            flushes.1 = up.superblock_flushes();
        }
        let new_img = std::fs::read(&path_new).unwrap();
        let old_img = std::fs::read(&path_old).unwrap();
        assert_eq!(new_img, old_img, "final images must be bit-identical");
        // Legacy flushes twice per insert; the new path saves the
        // reservation flush on every squeeze-only insert.
        assert_eq!(flushes.1, 2 * 80, "legacy: 2 flushes per insert");
        assert!(
            flushes.0 < flushes.1,
            "new path must flush less ({} vs {})",
            flushes.0,
            flushes.1
        );
        std::fs::remove_file(&path_new).ok();
        std::fs::remove_file(&path_old).ok();
    }

    #[test]
    fn emptied_blocks_are_freed_and_reused() {
        let ds = dataset(60, 6);
        let mut params = E2lshParams::derive(60, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        params.n = 30;
        let initial = ds.prefix(30);
        let path = temp_path("free_reuse.idx");
        let cfg = BuildConfig {
            capacity: Some(4000),
            ..Default::default()
        };
        build_index(&initial, &params, &cfg, &path).unwrap();
        // Baseline file: identical workload with reuse disabled
        // (infinite quarantine) can only grow the heap. Both handles
        // stay open throughout — a reopen empties the quarantine by
        // design (no reader predates a fresh handle).
        let path_noreuse = temp_path("free_reuse_baseline.idx");
        std::fs::copy(&path, &path_noreuse).unwrap();
        let mut up = Updater::open(&path).unwrap();
        up.set_reuse_quarantine_ops(0);
        let mut base = Updater::open(&path_noreuse).unwrap();
        base.set_reuse_quarantine_ops(u64::MAX);
        // Delete everything: most chains hold 1–2 entries per block, so
        // emptied blocks stream onto the free list.
        for i in 0..30 {
            up.delete(ds.point(i), i as u32).unwrap();
            base.delete(ds.point(i), i as u32).unwrap();
        }
        let freed = up.free_list_len();
        assert!(freed > 0, "deleting all objects must free blocks");
        let plateau = up.total_bytes();
        // Reinsert: allocation must draw from the free list before
        // growing the heap, so the footprint stays well below the
        // no-reuse baseline while the free list drains.
        for i in 30..60 {
            up.insert(ds.point(i)).unwrap();
            base.insert(ds.point(i)).unwrap();
        }
        assert!(
            up.free_list_len() < freed,
            "inserts must consume the free list"
        );
        let growth = up.total_bytes() - plateau;
        let growth_noreuse = base.total_bytes() - plateau;
        assert!(
            growth + (freed - up.free_list_len()) as u64 * BLOCK_SIZE as u64 == growth_noreuse,
            "every drained free block must have displaced one heap block \
             (growth {growth}, no-reuse {growth_noreuse})"
        );
        assert!(growth < growth_noreuse, "reuse must shrink the footprint");
        drop(base);
        std::fs::remove_file(&path_noreuse).ok();
        drop(up);
        // Survivors are all findable.
        let mut extended = initial.clone();
        for i in 30..60 {
            extended.push(ds.point(i));
        }
        let mut queries = Dataset::with_capacity(6, 30);
        for i in 30..60 {
            queries.push(ds.point(i));
        }
        let res = nn_of(&extended, &queries, &path);
        let found = res
            .iter()
            .filter(|r| r.first().is_some_and(|&(_, d)| d == 0.0))
            .count();
        assert!(found >= 28, "self-found {found}/30 after reuse");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantine_delays_reuse() {
        let ds = dataset(40, 6);
        let mut params = E2lshParams::derive(40, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        params.n = 20;
        let initial = ds.prefix(20);
        let path = temp_path("quarantine.idx");
        let cfg = BuildConfig {
            capacity: Some(4000),
            ..Default::default()
        };
        build_index(&initial, &params, &cfg, &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        up.set_reuse_quarantine_ops(1_000_000);
        for i in 0..20 {
            up.delete(ds.point(i), i as u32).unwrap();
        }
        assert!(up.free_list_len() > 0);
        let free_before = up.free_list_len();
        let bytes_before = up.total_bytes();
        up.insert(ds.point(20)).unwrap();
        // Quarantined blocks must not be reused: the heap grew instead.
        assert_eq!(up.free_list_len(), free_before);
        assert!(up.total_bytes() > bytes_before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn free_list_survives_reopen() {
        let ds = dataset(30, 6);
        let params = E2lshParams::derive(30, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        let path = temp_path("free_persist.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
        let freed;
        {
            let mut up = Updater::open(&path).unwrap();
            for i in 0..30 {
                up.delete(ds.point(i), i as u32).unwrap();
            }
            freed = up.free_list_len();
            assert!(freed > 0);
        }
        let up = Updater::open(&path).unwrap();
        assert_eq!(up.free_list_len(), freed, "free list must persist");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn maintain_clears_stale_filter_bits_exactly() {
        let ds = dataset(200, 8);
        let params = E2lshParams::derive(200, 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        let path = temp_path("gc_filters.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        for i in 0..100 {
            up.delete(ds.point(i), i as u32).unwrap();
        }
        let rep = up.maintain(usize::MAX).unwrap();
        assert!(rep.completed_pass);
        assert!(
            rep.filter_bits_cleared > 0,
            "deleting half the objects must strand filter bits"
        );
        assert_eq!(
            rep.bytes_reclaimed,
            rep.blocks_reclaimed * BLOCK_SIZE as u64
        );
        // A second pass over the already-clean index reclaims nothing.
        let rep2 = up.maintain(usize::MAX).unwrap();
        assert!(!rep2.productive(), "second pass must be a no-op");
        drop(up);
        // GC is exact: every survivor still self-queries at distance 0.
        let mut queries = Dataset::with_capacity(8, 20);
        for i in (100..200).step_by(5) {
            queries.push(ds.point(i));
        }
        let res = nn_of(&ds, &queries, &path);
        let found = res
            .iter()
            .filter(|r| r.first().is_some_and(|&(_, d)| d == 0.0))
            .count();
        assert!(found >= 18, "survivors self-found {found}/20 after GC");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn maintain_respects_block_budget() {
        let ds = dataset(200, 8);
        let params = E2lshParams::derive(200, 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        let path = temp_path("gc_budget.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        for i in 0..100 {
            up.delete(ds.point(i), i as u32).unwrap();
        }
        // Tiny ticks must make incremental progress and eventually
        // complete a full pass with the same total effect.
        let mut total = MaintenanceReport::default();
        let mut ticks = 0;
        while !total.completed_pass {
            let rep = up.maintain(8).unwrap();
            assert!(rep.blocks_scanned <= 8 + ENTRIES_PER_BLOCK as u64);
            total.merge(&rep);
            ticks += 1;
            assert!(ticks < 1_000_000, "budgeted maintenance must terminate");
        }
        assert!(ticks > 1, "a tiny budget must take multiple ticks");
        assert!(total.filter_bits_cleared > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn maintain_compacts_sparse_chains() {
        // One distinct seed object plus ~300 copies of the same point:
        // every copy hashes to the same slot per table, so the chains
        // grow to several full blocks. Deleting all but every 6th copy
        // leaves the full blocks ~1/6 full — sparse but not empty, so
        // the delete path cannot reclaim them (only each chain's
        // two-entry tail block empties) and only maintain's merge step
        // can recover the slack.
        let ds = dataset(2, 6);
        let mut params = E2lshParams::derive(310, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        params.n = 1;
        let initial = ds.prefix(1);
        let path = temp_path("compact.idx");
        let cfg = BuildConfig {
            capacity: Some(310),
            ..Default::default()
        };
        build_index(&initial, &params, &cfg, &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        for i in 1..300 {
            assert_eq!(up.insert(ds.point(1)).unwrap(), i as u32);
        }
        for id in 1..300u32 {
            if id % 6 != 0 {
                let removed = up.delete(ds.point(1), id).unwrap();
                assert!(removed > 0);
            }
        }
        let free_before = up.free_list_len();
        let rep = up.maintain(usize::MAX).unwrap();
        assert!(
            rep.blocks_reclaimed > 0,
            "sparse chains must compact: {rep:?}"
        );
        assert_eq!(
            rep.bytes_reclaimed,
            rep.blocks_reclaimed * BLOCK_SIZE as u64
        );
        assert!(
            up.free_list_len() > free_before,
            "merged-away blocks join the free list"
        );
        drop(up);
        // The survivors (every 6th copy and the seed) are all still
        // reachable: a self-query of the shared coordinates must find a
        // distance-0 neighbor.
        let mut extended = Dataset::with_capacity(6, 300);
        extended.push(ds.point(0));
        for _ in 1..300 {
            extended.push(ds.point(1));
        }
        let queries = Dataset::from_rows(&[ds.point(1).to_vec()]);
        let res = nn_of(&extended, &queries, &path);
        assert_eq!(res[0].first().map(|r| r.1), Some(0.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_delete_counts_chain_inconsistency() {
        let ds = dataset(50, 6);
        let params = E2lshParams::derive(50, 2.0, 4.0, 1.0, ds.max_abs_coord(), 6);
        let path = temp_path("inconsistent.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
        let mut up = Updater::open(&path).unwrap();
        // Deleting an id that was never inserted (120 < capacity 100's
        // id space but > any live id) finds nothing in any chain: every
        // table is counted.
        let removed = up.delete(ds.point(3), 120).unwrap();
        assert_eq!(removed, 0);
        let expect = (params.l * params.num_radii()) as u64;
        assert_eq!(up.take_trace().chain_inconsistencies, expect);
        // A well-formed delete reports none.
        up.delete(ds.point(3), 3).unwrap();
        assert_eq!(up.take_trace().chain_inconsistencies, 0);
        std::fs::remove_file(&path).ok();
    }
}
