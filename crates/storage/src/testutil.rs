//! Small helpers for tests and examples (not part of the public API).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique temporary file path under the system temp directory.
pub fn temp_path(name: &str) -> PathBuf {
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "e2lshos-{}-{}-{}-{}",
        std::process::id(),
        c,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0),
        name
    ))
}
