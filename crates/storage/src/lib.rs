//! # e2lsh-storage
//!
//! E2LSH-on-Storage (E2LSHoS): the external-memory adaptation of E2LSH
//! from *"Implementing and Evaluating E2LSH on Storage"* (EDBT 2023).
//!
//! The hash index — both hash tables and buckets — lives on storage; only
//! small metadata (parameters, hash-function coefficients, an occupancy
//! bit per table slot) stays in DRAM. Queries are processed with
//! asynchronous I/O and interleaved per-query state machines so the
//! storage device sees a deep queue and delivers its saturated random-read
//! IOPS.
//!
//! Modules:
//!
//! * [`layout`] — the on-disk format: 512-byte chained bucket blocks,
//!   5-byte object-info entries (ID + fingerprint), hash-table regions;
//! * [`build`] — index construction and the superblock;
//! * [`index`] — opening an index; DRAM-resident metadata;
//! * [`device`] — the asynchronous device abstraction, the discrete-event
//!   simulated devices calibrated to the paper's Table 2, and a real
//!   file-backed device;
//! * [`engine`] — the CPU cost model (calibrated against the real
//!   kernels) used by virtual-time runs;
//! * [`query`] — the asynchronous query engine;
//! * [`update`] — online insert/delete without rebuilding (paper Sec. 7).

pub mod build;
pub mod device;
pub mod engine;
pub mod index;
pub mod layout;
pub mod query;
pub mod update;

#[doc(hidden)]
pub mod testutil;

pub use build::{build_index, BuildConfig, BuildReport};
pub use device::cached::{BlockCache, CachedDevice};
pub use device::{Device, DeviceStats, Interface};
pub use engine::CostModel;
pub use index::StorageIndex;
pub use query::{
    run_queries, BatchReport, EngineClock, EngineConfig, QueryDriver, QueryOutcome, QueryState,
};
pub use update::{is_id_exhausted, IdSpaceExhausted, MaintenanceReport, Updater, WriteTrace};
