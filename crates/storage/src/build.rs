//! E2LSHoS index construction (paper Section 5.3).
//!
//! For each radius `R ∈ {1, c, …, c^{r−1}}` and compound hash
//! `l ∈ {1…L}`, every object's 32-bit compound hash value is computed,
//! split into a `u`-bit slot index and a `(32−u)`-bit fingerprint, and the
//! `(id, fingerprint)` entries are packed into chained 512-byte bucket
//! blocks in the heap region. Each table's slot array then receives the
//! storage address of the first block of its chain.
//!
//! The builder writes a single flat index file whose layout is described
//! in [`crate::layout`]; the superblock stores everything needed to reopen
//! the index, including the hash-family seed, so readers regenerate the
//! exact hash functions.

use crate::layout::{
    split_hash, BucketBlock, EntryCodec, TableGeometry, BLOCK_SIZE, ENTRIES_PER_BLOCK, HASH_BITS,
    SUPERBLOCK_SIZE,
};
use e2lsh_core::dataset::Dataset;
use e2lsh_core::lsh::{hash_v_bits, HashFamily};
use e2lsh_core::params::E2lshParams;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"E2LSHOS1";

/// Maximum number of free bucket-block addresses the superblock can
/// persist (see [`Superblock::free`]). Sized so a worst-case superblock
/// (64 radii + full free list) still fits the 4 KiB reserved region:
/// `84 + 64·4 + 4 + 448·8 = 3928 ≤ 4096`. The cap bounds the
/// *standing* pool, not reclamation throughput — under steady churn
/// the list cycles (deletes push, inserts pop), so it must hold the
/// frees of at least one reuse-quarantine window or reclamation
/// throttles and the heap grows without bound.
pub const MAX_FREE_LIST: usize = 448;

/// Build-time options.
#[derive(Clone, Copy, Debug)]
pub struct BuildConfig {
    /// Hash-table index bits `u`; `None` picks the default
    /// `max(8, ⌈log2 n⌉ − 6)` (paper: "slightly smaller than log2 n"),
    /// clamped so the object info still fits in 40 bits.
    pub u_bits: Option<u32>,
    /// Occupancy-filter prefix bits; `None` picks
    /// `min(⌈log2 n⌉ + 1, u + 10, 32)` (≈ 40% filter load, so the
    /// majority of probes whose true bucket is empty are skipped without
    /// I/O while the DRAM filters stay in the megabyte range).
    pub filter_bits: Option<u32>,
    /// Object-ID capacity to reserve for online inserts (see
    /// [`crate::update::Updater`]); the entry codec and table geometry are
    /// sized for `max(n, capacity)`. `None` reserves 2× the build-time n.
    pub capacity: Option<usize>,
    /// Seed for the hash family.
    pub seed: u64,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            u_bits: None,
            filter_bits: None,
            capacity: None,
            seed: 0xE25_005,
        }
    }
}

/// Default occupancy-filter width for `n` objects and table bits `u`.
pub fn default_filter_bits(n: usize, u_bits: u32) -> u32 {
    let id_bits = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1);
    (id_bits + 1).clamp(u_bits, u_bits + 10).min(HASH_BITS)
}

/// Summary of a finished build (sizes feed the paper's Table 6).
#[derive(Clone, Copy, Debug)]
pub struct BuildReport {
    /// Total index file size in bytes.
    pub total_bytes: u64,
    /// Bytes occupied by hash tables.
    pub table_bytes: u64,
    /// Bytes occupied by bucket blocks.
    pub heap_bytes: u64,
    /// Bucket blocks written.
    pub blocks: u64,
    /// Total object-info entries written (`n·L·r`).
    pub entries: u64,
    /// The `u` that was used.
    pub u_bits: u32,
}

/// Pick the default `u` for a database of `n` objects.
pub fn default_u_bits(n: usize) -> u32 {
    let id_bits = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1);
    // Dense slots: a few dozen entries per slot on average.
    let u = id_bits.saturating_sub(6).max(8);
    // 40-bit object info constraint: id_bits + (32 − u) ≤ 40.
    u.max(id_bits.saturating_sub(8)).min(HASH_BITS)
}

/// The superblock contents (everything needed to reopen an index).
#[derive(Clone, Debug)]
pub struct Superblock {
    pub n: u64,
    /// Object-ID capacity the codec was sized for (≥ n).
    pub capacity: u64,
    pub dim: u32,
    pub m: u32,
    pub l: u32,
    pub u_bits: u32,
    pub filter_bits: u32,
    pub c: f32,
    pub w: f32,
    pub gamma: f32,
    pub s: u64,
    pub seed: u64,
    pub radii: Vec<f32>,
    pub total_bytes: u64,
    /// Persistent free list: heap addresses of bucket blocks that were
    /// emptied by deletes/compaction and unlinked from their chains.
    /// Inserts draw from this list before growing the heap, bounding
    /// `total_bytes` under churn. At most [`MAX_FREE_LIST`] entries;
    /// encoded after the radii so images written before the free list
    /// existed decode as an empty list (zero padding).
    pub free: Vec<u64>,
}

impl Superblock {
    /// Encode into exactly [`SUPERBLOCK_SIZE`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(SUPERBLOCK_SIZE);
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&self.n.to_le_bytes());
        b.extend_from_slice(&self.capacity.to_le_bytes());
        b.extend_from_slice(&self.dim.to_le_bytes());
        b.extend_from_slice(&self.m.to_le_bytes());
        b.extend_from_slice(&self.l.to_le_bytes());
        b.extend_from_slice(&self.u_bits.to_le_bytes());
        b.extend_from_slice(&self.filter_bits.to_le_bytes());
        b.extend_from_slice(&self.c.to_le_bytes());
        b.extend_from_slice(&self.w.to_le_bytes());
        b.extend_from_slice(&self.gamma.to_le_bytes());
        b.extend_from_slice(&self.s.to_le_bytes());
        b.extend_from_slice(&self.seed.to_le_bytes());
        b.extend_from_slice(&self.total_bytes.to_le_bytes());
        b.extend_from_slice(&(self.radii.len() as u32).to_le_bytes());
        for r in &self.radii {
            b.extend_from_slice(&r.to_le_bytes());
        }
        assert!(self.free.len() <= MAX_FREE_LIST, "free list overflow");
        b.extend_from_slice(&(self.free.len() as u32).to_le_bytes());
        for a in &self.free {
            b.extend_from_slice(&a.to_le_bytes());
        }
        assert!(b.len() <= SUPERBLOCK_SIZE, "superblock overflow");
        b.resize(SUPERBLOCK_SIZE, 0);
        b
    }

    /// Decode from a [`SUPERBLOCK_SIZE`]-byte buffer.
    pub fn decode(buf: &[u8]) -> io::Result<Self> {
        if buf.len() < SUPERBLOCK_SIZE || &buf[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an E2LSHoS index (bad magic)",
            ));
        }
        let mut off = 8usize;
        let mut take = |n: usize| {
            let s = &buf[off..off + n];
            off += n;
            s
        };
        let n = u64::from_le_bytes(take(8).try_into().unwrap());
        let capacity = u64::from_le_bytes(take(8).try_into().unwrap());
        let dim = u32::from_le_bytes(take(4).try_into().unwrap());
        let m = u32::from_le_bytes(take(4).try_into().unwrap());
        let l = u32::from_le_bytes(take(4).try_into().unwrap());
        let u_bits = u32::from_le_bytes(take(4).try_into().unwrap());
        let filter_bits = u32::from_le_bytes(take(4).try_into().unwrap());
        let c = f32::from_le_bytes(take(4).try_into().unwrap());
        let w = f32::from_le_bytes(take(4).try_into().unwrap());
        let gamma = f32::from_le_bytes(take(4).try_into().unwrap());
        let s = u64::from_le_bytes(take(8).try_into().unwrap());
        let seed = u64::from_le_bytes(take(8).try_into().unwrap());
        let total_bytes = u64::from_le_bytes(take(8).try_into().unwrap());
        let nr = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
        if nr > 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "corrupt superblock: too many radii",
            ));
        }
        let mut radii = Vec::with_capacity(nr);
        for _ in 0..nr {
            radii.push(f32::from_le_bytes(take(4).try_into().unwrap()));
        }
        let nf = u32::from_le_bytes(take(4).try_into().unwrap()) as usize;
        if nf > MAX_FREE_LIST {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "corrupt superblock: free list too long",
            ));
        }
        let mut free = Vec::with_capacity(nf);
        for _ in 0..nf {
            free.push(u64::from_le_bytes(take(8).try_into().unwrap()));
        }
        Ok(Self {
            n,
            capacity,
            dim,
            m,
            l,
            u_bits,
            filter_bits,
            c,
            w,
            gamma,
            s,
            seed,
            radii,
            total_bytes,
            free,
        })
    }
}

/// Build an E2LSHoS index file for `dataset` at `path`.
///
/// Returns the [`BuildReport`] with the achieved sizes.
pub fn build_index<P: AsRef<Path>>(
    dataset: &Dataset,
    params: &E2lshParams,
    config: &BuildConfig,
    path: P,
) -> io::Result<BuildReport> {
    let n = dataset.len();
    assert!(n >= 1, "cannot index an empty dataset");
    assert_eq!(params.n, n, "params derived for a different n");
    let capacity = config.capacity.unwrap_or(2 * n).max(n);
    let u_bits = config.u_bits.unwrap_or_else(|| default_u_bits(capacity));
    let filter_bits = config
        .filter_bits
        .unwrap_or_else(|| default_filter_bits(capacity, u_bits));
    assert!(filter_bits >= u_bits && filter_bits <= HASH_BITS);
    let codec = EntryCodec::new(capacity, u_bits);
    let geometry = TableGeometry {
        u_bits,
        filter_bits,
        num_radii: params.num_radii(),
        l: params.l,
    };
    let family = HashFamily::generate(
        dataset.dim(),
        params.m,
        params.w,
        params.l,
        &params.radii,
        config.seed,
    );

    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path.as_ref())?;
    // Heap blocks are appended sequentially from heap_base; tables are
    // written in place as each (ri, li) pass finishes.
    let mut writer = BufWriter::with_capacity(1 << 20, file);
    writer.seek(SeekFrom::Start(geometry.heap_base()))?;

    let mut next_block_addr = geometry.heap_base();
    let mut blocks_written = 0u64;
    let mut entries_written = 0u64;
    let slots = geometry.slots() as usize;
    let mut scratch: Vec<i32> = Vec::new();
    // Reused per-table buffers.
    let mut keyed: Vec<(u64, u32, u32)> = Vec::with_capacity(n); // (slot, fp, id)
    let mut table: Vec<u64> = vec![0; slots];
    let filter_words = ((1usize << filter_bits) / 64).max(1);
    let filter_mask = (1u64 << filter_bits) - 1;
    let mut filter: Vec<u64> = vec![0; filter_words];
    let mut block_buf: Vec<u8> = Vec::with_capacity(BLOCK_SIZE);
    let mut table_writes: Vec<(u64, Vec<u8>)> = Vec::new();

    for ri in 0..params.num_radii() {
        let radius = params.radii[ri];
        for li in 0..params.l {
            let compound = family.compound(ri, li);
            keyed.clear();
            filter.iter_mut().for_each(|w| *w = 0);
            for oid in 0..n {
                let key64 = compound.hash64(dataset.point(oid), radius, &mut scratch);
                let h32 = hash_v_bits(key64, HASH_BITS);
                let prefix = (h32 & filter_mask) as usize;
                filter[prefix / 64] |= 1u64 << (prefix % 64);
                let (slot, fp) = split_hash(h32, u_bits);
                keyed.push((slot, fp, oid as u32));
            }
            keyed.sort_unstable_by_key(|&(slot, _, _)| slot);
            table.iter_mut().for_each(|s| *s = 0);

            let mut i = 0usize;
            while i < keyed.len() {
                let slot = keyed[i].0;
                let mut j = i;
                while j < keyed.len() && keyed[j].0 == slot {
                    j += 1;
                }
                let group = &keyed[i..j];
                let nblocks = group.len().div_ceil(ENTRIES_PER_BLOCK);
                // Chain blocks are consecutive, so every next pointer is
                // known up front.
                let first_addr = next_block_addr;
                for (bi, chunk) in group.chunks(ENTRIES_PER_BLOCK).enumerate() {
                    let next = if bi + 1 < nblocks {
                        next_block_addr + BLOCK_SIZE as u64
                    } else {
                        0
                    };
                    let block = BucketBlock {
                        next,
                        entries: chunk.iter().map(|&(_, fp, id)| (id, fp)).collect(),
                    };
                    block_buf.clear();
                    block.encode(&codec, &mut block_buf);
                    writer.write_all(&block_buf)?;
                    next_block_addr += BLOCK_SIZE as u64;
                    blocks_written += 1;
                    entries_written += chunk.len() as u64;
                }
                table[(slot as usize) & (slots - 1)] = first_addr;
                i = j;
            }

            // Stash table and filter bytes; written after the heap stream
            // ends so the BufWriter never seeks backwards mid-stream.
            let mut tbytes = Vec::with_capacity(slots * 8);
            for &addr in &table {
                tbytes.extend_from_slice(&addr.to_le_bytes());
            }
            table_writes.push((geometry.table_base(ri, li), tbytes));
            let mut fbytes = Vec::with_capacity(filter.len() * 8);
            for &w in &filter {
                fbytes.extend_from_slice(&w.to_le_bytes());
            }
            table_writes.push((geometry.filter_base(ri, li), fbytes));
        }
    }

    writer.flush()?;
    let file: File = writer.into_inner().map_err(|e| e.into_error())?;
    write_all_at(&file, &mut table_writes)?;

    let total_bytes = next_block_addr;
    let sb = Superblock {
        n: n as u64,
        capacity: capacity as u64,
        dim: dataset.dim() as u32,
        m: params.m as u32,
        l: params.l as u32,
        u_bits,
        filter_bits,
        c: params.c,
        w: params.w,
        gamma: params.gamma,
        s: params.s as u64,
        seed: config.seed,
        radii: params.radii.clone(),
        total_bytes,
        free: Vec::new(),
    };
    let sb_bytes = sb.encode();
    write_at(&file, 0, &sb_bytes)?;
    file.sync_all()?;

    Ok(BuildReport {
        total_bytes,
        table_bytes: geometry.num_tables() as u64 * geometry.table_bytes(),
        heap_bytes: total_bytes - geometry.heap_base(),
        blocks: blocks_written,
        entries: entries_written,
        u_bits,
    })
}

fn write_all_at(file: &File, writes: &mut Vec<(u64, Vec<u8>)>) -> io::Result<()> {
    for (addr, bytes) in writes.drain(..) {
        write_at(file, addr, &bytes)?;
    }
    Ok(())
}

#[cfg(unix)]
fn write_at(file: &File, addr: u64, bytes: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(bytes, addr)
}

#[cfg(not(unix))]
fn write_at(_file: &File, _addr: u64, _bytes: &[u8]) -> io::Result<()> {
    unimplemented!("index building requires unix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::temp_path;

    #[test]
    fn superblock_roundtrip() {
        let sb = Superblock {
            n: 12345,
            capacity: 24690,
            dim: 64,
            m: 10,
            l: 20,
            u_bits: 12,
            filter_bits: 15,
            c: 2.0,
            w: 4.0,
            gamma: 1.2,
            s: 40,
            seed: 777,
            radii: vec![1.0, 2.0, 4.0, 8.0],
            total_bytes: 99999,
            free: vec![4096, 8192, 123 * 512],
        };
        let enc = sb.encode();
        assert_eq!(enc.len(), SUPERBLOCK_SIZE);
        let dec = Superblock::decode(&enc).unwrap();
        assert_eq!(dec.n, 12345);
        assert_eq!(dec.radii, sb.radii);
        assert_eq!(dec.seed, 777);
        assert_eq!(dec.total_bytes, 99999);
        assert_eq!(dec.filter_bits, 15);
        assert_eq!(dec.capacity, 24690);
        assert_eq!(dec.free, sb.free);
    }

    #[test]
    fn superblock_without_free_list_decodes_empty() {
        // Images written before the free list existed end at the radii;
        // the reserved-region zero padding must decode as an empty list.
        let sb = Superblock {
            n: 10,
            capacity: 20,
            dim: 4,
            m: 2,
            l: 3,
            u_bits: 8,
            filter_bits: 10,
            c: 2.0,
            w: 4.0,
            gamma: 1.0,
            s: 5,
            seed: 1,
            radii: vec![1.0],
            total_bytes: 4096,
            free: Vec::new(),
        };
        let mut enc = sb.encode();
        // Truncate to the radii and re-pad with zeros, simulating an old
        // image that never wrote free-list fields.
        let radii_end = 84 + 4 * sb.radii.len();
        enc[radii_end..].iter_mut().for_each(|b| *b = 0);
        let dec = Superblock::decode(&enc).unwrap();
        assert!(dec.free.is_empty());
        assert_eq!(dec.n, 10);
    }

    #[test]
    fn superblock_full_free_list_fits() {
        let sb = Superblock {
            n: 1,
            capacity: 2,
            dim: 4,
            m: 2,
            l: 3,
            u_bits: 8,
            filter_bits: 10,
            c: 2.0,
            w: 4.0,
            gamma: 1.0,
            s: 5,
            seed: 1,
            radii: vec![1.0; 64],
            total_bytes: 4096,
            free: (0..MAX_FREE_LIST as u64).map(|i| 4096 + i * 512).collect(),
        };
        let enc = sb.encode();
        assert_eq!(enc.len(), SUPERBLOCK_SIZE);
        let dec = Superblock::decode(&enc).unwrap();
        assert_eq!(dec.free.len(), MAX_FREE_LIST);
        assert_eq!(dec.free, sb.free);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; SUPERBLOCK_SIZE];
        assert!(Superblock::decode(&buf).is_err());
    }

    #[test]
    fn default_u_bits_sane() {
        assert_eq!(default_u_bits(50_000), 10); // ceil(log2)=16, −6
        assert_eq!(default_u_bits(1_000_000), 14);
        // One billion: id_bits 30 forces u ≥ 22; default is 24.
        let u = default_u_bits(1_000_000_000);
        assert_eq!(u, 24);
        // Tiny n clamps to 8.
        assert_eq!(default_u_bits(100), 8);
        // The codec constraint holds at the default for a wide n range.
        for n in [100usize, 10_000, 1_000_000, 1_000_000_000] {
            let _ = EntryCodec::new(n, default_u_bits(n));
        }
    }

    #[test]
    fn build_writes_consistent_image() {
        use e2lsh_core::dataset::Dataset;
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let rows: Vec<Vec<f32>> = (0..500)
            .map(|_| (0..8).map(|_| rng.gen::<f32>() * 10.0).collect())
            .collect();
        let ds = Dataset::from_rows(&rows);
        let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        let path = temp_path("build_consistent.idx");
        let report = build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
        // Every object appears once per table.
        assert_eq!(report.entries, (500 * params.l * params.num_radii()) as u64);
        assert!(report.total_bytes > 0);
        assert_eq!(report.heap_bytes, report.blocks * BLOCK_SIZE as u64);
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len, report.total_bytes);
        std::fs::remove_file(&path).ok();
    }
}
