//! Opening a built E2LSHoS index and its in-DRAM metadata.
//!
//! The paper keeps only "relatively small index-related data" in DRAM
//! (Table 6): here that is the superblock-derived parameters, the
//! regenerated hash family, and one occupancy bit per hash-table slot.
//! The occupancy bitmap is what lets the query engine avoid issuing I/Os
//! for empty buckets (Section 4.3: "empty buckets are not counted as it
//! is easy to avoid issuing I/Os for them").

use crate::build::Superblock;
use crate::device::Device;
use crate::layout::{EntryCodec, TableGeometry, SUPERBLOCK_SIZE};
use e2lsh_core::lsh::HashFamily;
use e2lsh_core::params::E2lshParams;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// An opened on-storage index: DRAM-resident metadata; all buckets and
/// tables stay on the device.
///
/// The occupancy bitmaps are atomic words so an online writer (the
/// serving layer's update path) can publish newly occupied prefixes
/// into a *live* index with [`StorageIndex::set_filter_bit`] while
/// query threads keep reading them — bits are only ever set, so a
/// racing reader sees at worst a momentarily stale `false`, which costs
/// one skipped probe for a just-inserted object, never a wrong answer
/// for existing ones.
pub struct StorageIndex {
    params: E2lshParams,
    family: HashFamily,
    geometry: TableGeometry,
    codec: EntryCodec,
    /// One bit per slot per table: slot has a non-empty chain.
    occupancy: Vec<Vec<AtomicU64>>,
    n: usize,
    dim: usize,
    total_bytes: u64,
}

impl StorageIndex {
    /// Open an index by reading its superblock from `device` and scanning
    /// the hash tables to build the in-memory occupancy bitmaps.
    pub fn open(device: &mut dyn Device) -> io::Result<Self> {
        let sb_bytes = device.read_sync(0, SUPERBLOCK_SIZE as u32);
        let sb = Superblock::decode(&sb_bytes)?;
        Self::from_superblock(sb, device)
    }

    fn from_superblock(sb: Superblock, device: &mut dyn Device) -> io::Result<Self> {
        let n = sb.n as usize;
        let params = E2lshParams {
            c: sb.c,
            w: sb.w,
            gamma: sb.gamma,
            n,
            m: sb.m as usize,
            l: sb.l as usize,
            s: sb.s as usize,
            rho: 0.0, // informational only; recomputable from (w, c)
            p1: e2lsh_core::params::collision_probability(sb.w as f64, 1.0),
            p2: e2lsh_core::params::collision_probability(sb.w as f64, sb.c as f64),
            radii: sb.radii.clone(),
        };
        let geometry = TableGeometry {
            u_bits: sb.u_bits,
            filter_bits: sb.filter_bits,
            num_radii: sb.radii.len(),
            l: sb.l as usize,
        };
        let codec = EntryCodec::new((sb.capacity as usize).max(n), sb.u_bits);
        let family = HashFamily::generate(
            sb.dim as usize,
            sb.m as usize,
            sb.w,
            sb.l as usize,
            &sb.radii,
            sb.seed,
        );

        // Load the per-table occupancy filters into DRAM (the paper keeps
        // only small index metadata in memory; this is that metadata).
        let fbytes = geometry.filter_bytes_per_table() as usize;
        let mut occupancy = Vec::with_capacity(geometry.num_tables());
        for ri in 0..geometry.num_radii {
            for li in 0..geometry.l {
                let base = geometry.filter_base(ri, li);
                let mut bits: Vec<AtomicU64> =
                    (0..fbytes.div_ceil(8)).map(|_| AtomicU64::new(0)).collect();
                let mut read = 0usize;
                const CHUNK: usize = 1 << 20;
                while read < fbytes {
                    let len = CHUNK.min(fbytes - read);
                    let buf = device.read_sync(base + read as u64, len as u32);
                    for (i, chunk) in buf.chunks_exact(8).enumerate() {
                        bits[read / 8 + i] =
                            AtomicU64::new(u64::from_le_bytes(chunk.try_into().unwrap()));
                    }
                    read += len;
                }
                occupancy.push(bits);
            }
        }

        Ok(Self {
            params,
            family,
            geometry,
            codec,
            occupancy,
            n,
            dim: sb.dim as usize,
            total_bytes: sb.total_bytes,
        })
    }

    /// Index parameters (as stored in the superblock).
    #[inline]
    pub fn params(&self) -> &E2lshParams {
        &self.params
    }

    /// The regenerated hash family.
    #[inline]
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Table geometry.
    #[inline]
    pub fn geometry(&self) -> TableGeometry {
        self.geometry
    }

    /// Object-info codec.
    #[inline]
    pub fn codec(&self) -> EntryCodec {
        self.codec
    }

    /// Number of indexed objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the index holds no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total index size on storage in bytes (Table 6's "Index storage").
    #[inline]
    pub fn storage_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// DRAM bytes held by this handle: the occupancy bitmaps plus the hash
    /// family coefficients (Table 6's "(Index mem)").
    pub fn mem_bytes(&self) -> usize {
        let bitmaps: usize = self.occupancy.iter().map(|b| b.len() * 8).sum();
        let family = self.geometry.num_tables() * self.params.m * (self.dim + 1) * 4;
        bitmaps + family
    }

    /// True when some indexed object shares the first `filter_bits` bits
    /// of hash value `h32` in table `(ri, li)` — i.e. the probe *may* find
    /// candidates. A `false` return proves the true bucket is empty, so
    /// the query engine skips the I/O entirely (paper Section 4.3).
    #[inline]
    pub fn filter_hit(&self, ri: usize, li: usize, h32: u64) -> bool {
        let t = ri * self.geometry.l + li;
        let prefix = (h32 & ((1u64 << self.geometry.filter_bits) - 1)) as usize;
        (self.occupancy[t][prefix / 64].load(Ordering::Relaxed) >> (prefix % 64)) & 1 == 1
    }

    /// Mark the prefix of hash value `h32` as occupied in table
    /// `(ri, li)` — the live-index mirror of
    /// [`crate::update::Updater`]'s on-storage filter write, safe to
    /// call while query threads read the bitmap. Bits are only ever
    /// set; stale deletions merely cost a wasted probe (the paper's
    /// trade-off of cheap deletes against rare rebuilds).
    #[inline]
    pub fn set_filter_bit(&self, ri: usize, li: usize, h32: u64) {
        let t = ri * self.geometry.l + li;
        let prefix = (h32 & ((1u64 << self.geometry.filter_bits) - 1)) as usize;
        self.occupancy[t][prefix / 64].fetch_or(1u64 << (prefix % 64), Ordering::Relaxed);
    }

    /// OR whole filter words for table `(ri, li)` into the live bitmap
    /// (bulk form of [`StorageIndex::set_filter_bit`], used by
    /// [`crate::update::Updater::sync_filters_into`]).
    pub fn merge_filter_words(&self, ri: usize, li: usize, words: &[u64]) {
        let t = ri * self.geometry.l + li;
        for (w, &bits) in self.occupancy[t].iter().zip(words) {
            if bits != 0 {
                w.fetch_or(bits, Ordering::Relaxed);
            }
        }
    }

    /// Replace one filter word of table `(ri, li)` with `value` — the
    /// live-index mirror of [`crate::update::Updater::maintain`]'s
    /// tombstone GC, which *clears* bits and therefore cannot go
    /// through the OR-only [`StorageIndex::merge_filter_words`]. The
    /// value comes from an exact rescan of the word's chains on the
    /// single writer thread (maintenance runs between writer ops), so a
    /// racing reader sees either the old superset or the new exact word
    /// — a live object's bit is never cleared.
    pub fn set_filter_word(&self, ri: usize, li: usize, word: usize, value: u64) {
        let t = ri * self.geometry.l + li;
        self.occupancy[t][word].store(value, Ordering::Relaxed);
    }

    /// Fraction of set filter bits over all tables (diagnostic).
    pub fn occupancy_rate(&self) -> f64 {
        let set: u64 = self
            .occupancy
            .iter()
            .flat_map(|b| b.iter())
            .map(|w| w.load(Ordering::Relaxed).count_ones() as u64)
            .sum();
        let total = self.geometry.num_tables() as u64 * (1u64 << self.geometry.filter_bits);
        set as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use crate::device::sim::{Backing, DeviceProfile, SimStorage};
    use crate::testutil::temp_path;
    use e2lsh_core::dataset::Dataset;
    use rand::{Rng, SeedableRng};

    fn tiny_dataset(n: usize) -> Dataset {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..8).map(|_| rng.gen::<f32>() * 10.0).collect())
            .collect();
        Dataset::from_rows(&rows)
    }

    #[test]
    fn open_roundtrips_parameters() {
        let ds = tiny_dataset(400);
        let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        let path = temp_path("open_roundtrip.idx");
        let cfg = BuildConfig {
            seed: 99,
            ..Default::default()
        };
        build_index(&ds, &params, &cfg, &path).unwrap();
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
        let idx = StorageIndex::open(&mut dev).unwrap();
        assert_eq!(idx.len(), 400);
        assert_eq!(idx.dim(), 8);
        assert_eq!(idx.params().l, params.l);
        assert_eq!(idx.params().m, params.m);
        assert_eq!(idx.params().radii, params.radii);
        assert_eq!(idx.family().seed(), 99);
        assert!(idx.storage_bytes() > 0);
        assert!(idx.mem_bytes() > 0);
        // DRAM footprint must be far below the storage footprint.
        assert!((idx.mem_bytes() as u64) < idx.storage_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn occupancy_filter_is_exact_on_prefixes() {
        use e2lsh_core::lsh::hash_v_bits;
        let ds = tiny_dataset(300);
        let params = E2lshParams::derive(ds.len(), 2.0, 4.0, 1.0, ds.max_abs_coord(), 8);
        let path = temp_path("occupancy.idx");
        build_index(&ds, &params, &BuildConfig::default(), &path).unwrap();
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
        let idx = StorageIndex::open(&mut dev).unwrap();
        let rate = idx.occupancy_rate();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
        // Recompute the hashes of table (0, 0): every object hash must hit
        // the filter, and the number of set bits must equal the number of
        // distinct prefixes (the filter is exact, not probabilistic).
        let g = idx.geometry();
        let mask = (1u64 << g.filter_bits) - 1;
        let mut scratch = Vec::new();
        let mut prefixes = std::collections::HashSet::new();
        let radius = idx.params().radii[0];
        for oid in 0..ds.len() {
            let key = idx
                .family()
                .compound(0, 0)
                .hash64(ds.point(oid), radius, &mut scratch);
            let h32 = hash_v_bits(key, 32);
            assert!(idx.filter_hit(0, 0, h32), "object {oid} must hit");
            prefixes.insert(h32 & mask);
        }
        // A fresh random prefix misses unless it collides with a real one.
        let mut misses = 0;
        for t in 0..1000u64 {
            let h = e2lsh_core::fxhash::splitmix64(t) & mask;
            if !idx.filter_hit(0, 0, h) {
                misses += 1;
                assert!(!prefixes.contains(&h), "filter lied about {h}");
            }
        }
        assert!(misses > 0, "some random prefixes must miss");
        std::fs::remove_file(&path).ok();
    }
}
