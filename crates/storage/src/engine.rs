//! CPU cost model and calibration for the virtual-time executor.
//!
//! The paper's asynchronous query-time model (Equation 7) charges the CPU
//! for hash evaluation, distance checking and per-I/O submission overhead.
//! When the engine runs in virtual time against a simulated device, these
//! compute segments are charged from a [`CostModel`] whose per-flop rates
//! are *calibrated by timing the real kernels of this crate's dependencies
//! on the current machine* — so the modeled `T_compute` tracks the code
//! that actually runs, not a guess.

use e2lsh_core::distance::{dist2, dot};
use std::hint::black_box;
use std::time::Instant;

/// Per-operation CPU costs in seconds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Seconds per multiply-add of the hash projection kernel.
    pub hash_flop: f64,
    /// Fixed overhead per compound-hash evaluation.
    pub hash_fixed: f64,
    /// Seconds per dimension of the distance kernel.
    pub dist_flop: f64,
    /// Fixed overhead per distance evaluation.
    pub dist_fixed: f64,
    /// Seconds per bucket entry scanned (decode + fingerprint check).
    pub entry_scan: f64,
    /// Fixed overhead per bucket block parsed.
    pub block_fixed: f64,
}

impl CostModel {
    /// Fixed, machine-independent costs for reproducible tests: 0.5 ns per
    /// flop, small fixed overheads.
    pub fn deterministic() -> Self {
        Self {
            hash_flop: 0.5e-9,
            hash_fixed: 20e-9,
            dist_flop: 0.5e-9,
            dist_fixed: 20e-9,
            entry_scan: 1.5e-9,
            block_fixed: 30e-9,
        }
    }

    /// A zero-cost model for wall-clock execution (real work is timed by
    /// the wall clock; nothing must be charged twice).
    pub fn zero() -> Self {
        Self {
            hash_flop: 0.0,
            hash_fixed: 0.0,
            dist_flop: 0.0,
            dist_fixed: 0.0,
            entry_scan: 0.0,
            block_fixed: 0.0,
        }
    }

    /// Measure the real kernels on this machine (takes ~50 ms).
    pub fn calibrate() -> Self {
        let dim = 128usize;
        let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.71).cos()).collect();

        let per_flop = |f: &dyn Fn(&[f32], &[f32]) -> f32| -> f64 {
            // Warm up, then measure.
            let mut acc = 0.0f32;
            for _ in 0..10_000 {
                acc += f(black_box(&a), black_box(&b));
            }
            black_box(acc);
            let iters = 200_000u64;
            let t0 = Instant::now();
            let mut acc = 0.0f32;
            for _ in 0..iters {
                acc += f(black_box(&a), black_box(&b));
            }
            black_box(acc);
            t0.elapsed().as_secs_f64() / (iters as f64 * dim as f64)
        };

        let hash_flop = per_flop(&|x, y| dot(x, y));
        let dist_flop = per_flop(&|x, y| dist2(x, y));
        Self {
            hash_flop,
            hash_fixed: 20e-9,
            dist_flop,
            dist_fixed: 20e-9,
            entry_scan: 1.5e-9,
            block_fixed: 30e-9,
        }
    }

    /// Cost of evaluating one compound hash (`m` projections of `d` dims).
    #[inline]
    pub fn hash_cost(&self, m: usize, dim: usize) -> f64 {
        self.hash_fixed + self.hash_flop * (m * dim) as f64
    }

    /// Cost of one distance check.
    #[inline]
    pub fn dist_cost(&self, dim: usize) -> f64 {
        self.dist_fixed + self.dist_flop * dim as f64
    }

    /// Cost of parsing a bucket block with `entries` entries.
    #[inline]
    pub fn block_cost(&self, entries: usize) -> f64 {
        self.block_fixed + self.entry_scan * entries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_plausible() {
        let m = CostModel::calibrate();
        // A multiply-add on any post-2000 CPU: between 0.01 ns (wide SIMD)
        // and 50 ns (pathological).
        assert!(m.hash_flop > 1e-12 && m.hash_flop < 5e-8, "{}", m.hash_flop);
        assert!(m.dist_flop > 1e-12 && m.dist_flop < 5e-8, "{}", m.dist_flop);
    }

    #[test]
    fn costs_scale() {
        let m = CostModel::deterministic();
        assert!(m.hash_cost(16, 128) > m.hash_cost(8, 128));
        assert!(m.dist_cost(960) > m.dist_cost(128));
        assert!(m.block_cost(99) > m.block_cost(1));
        // Deterministic model: exact expectations.
        assert_eq!(m.hash_cost(10, 100), 20e-9 + 0.5e-9 * 1000.0);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        assert_eq!(m.hash_cost(16, 512), 0.0);
        assert_eq!(m.dist_cost(512), 0.0);
        assert_eq!(m.block_cost(99), 0.0);
    }
}
