//! Query-time models of E2LSHoS (paper Section 4.1).
//!
//! Synchronous I/O (Equation 6):
//! `T_sync = T_compute + N_IO · (T_request + T_read)`
//!
//! Asynchronous I/O (Equation 7):
//! `T_async = max(T_compute + N_IO · T_request, N_IO · T_read)`
//!
//! Requirement solvers (Equations 8–16): given a target query time
//! `T_target`, the measured compute time `T_compute` and I/O count `N_IO`,
//! solve for the storage random-read performance `1/T_read` (IOPS) and the
//! CPU overhead budget `1/T_request` (max IOPS/core).

use serde::{Deserialize, Serialize};

/// Measured per-query inputs of the cost model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostInputs {
    /// Total compute time per query in seconds (hash + distance checks).
    pub t_compute: f64,
    /// Number of I/Os per query.
    pub n_io: f64,
}

/// A parameterized query-time model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct QueryTimeModel {
    /// CPU overhead per I/O request in seconds (`T_request`, Table 3).
    pub t_request: f64,
    /// Storage time per I/O in seconds (`T_read`; its reciprocal is the
    /// device's random-read IOPS at the operating queue depth).
    pub t_read: f64,
}

impl QueryTimeModel {
    /// Equation 6: synchronous query time.
    pub fn sync_time(&self, inp: &CostInputs) -> f64 {
        inp.t_compute + inp.n_io * (self.t_request + self.t_read)
    }

    /// Equation 7: asynchronous query time (compute and I/O overlap; the
    /// longer of the two pipelines dominates).
    pub fn async_time(&self, inp: &CostInputs) -> f64 {
        let cpu = inp.t_compute + inp.n_io * self.t_request;
        let io = inp.n_io * self.t_read;
        cpu.max(io)
    }
}

/// Storage performance requirements for E2LSHoS to reach a target time.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StorageRequirement {
    /// Minimum random-read performance in IOPS (`1/T_read`, Equation 11).
    pub min_iops: f64,
    /// Minimum request-issue rate in IOPS/core (`1/T_request`,
    /// Equation 10); `f64::INFINITY` when the target is unreachable even
    /// with zero per-request overhead.
    pub min_request_rate: f64,
}

/// Equation 11 / 13 / 15: required IOPS so the I/O pipeline fits in
/// `t_target`: `1/T_read ≥ N_IO / T_target`.
pub fn required_iops(n_io: f64, t_target: f64) -> f64 {
    assert!(t_target > 0.0, "target time must be positive");
    assert!(n_io >= 0.0);
    n_io / t_target
}

/// Equation 10 / 12 / 14: required request rate so the CPU pipeline fits:
/// `1/T_request ≥ N_IO / (T_target − T_compute)`.
///
/// Returns `f64::INFINITY` when `t_target ≤ t_compute` (the compute alone
/// exceeds the target, so no interface is fast enough).
pub fn required_request_rate(n_io: f64, t_target: f64, t_compute: f64) -> f64 {
    assert!(t_target > 0.0);
    let slack = t_target - t_compute;
    if slack <= 0.0 {
        f64::INFINITY
    } else {
        n_io / slack
    }
}

/// Both requirements at once (Equations 10–11 with `T_target`).
pub fn requirements(inp: &CostInputs, t_target: f64) -> StorageRequirement {
    StorageRequirement {
        min_iops: required_iops(inp.n_io, t_target),
        min_request_rate: required_request_rate(inp.n_io, t_target, inp.t_compute),
    }
}

/// Synchronous-case requirement (Equation 9): the sum `T_request + T_read`
/// must fit in the per-I/O slack; with `T_read ≫ T_request` the paper
/// reduces it to `1/T_read ≥ N_IO / (T_target − T_compute)`.
pub fn required_iops_sync(n_io: f64, t_target: f64, t_compute: f64) -> f64 {
    let slack = t_target - t_compute;
    if slack <= 0.0 {
        f64::INFINITY
    } else {
        n_io / slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INP: CostInputs = CostInputs {
        t_compute: 100e-6,
        n_io: 400.0,
    };

    #[test]
    fn sync_slower_than_async() {
        let m = QueryTimeModel {
            t_request: 1e-6,
            t_read: 50e-6,
        };
        assert!(m.sync_time(&INP) > m.async_time(&INP));
    }

    #[test]
    fn async_io_bound_vs_cpu_bound() {
        // Slow device: I/O side dominates.
        let slow = QueryTimeModel {
            t_request: 0.1e-6,
            t_read: 100e-6,
        };
        assert_eq!(slow.async_time(&INP), INP.n_io * slow.t_read);
        // Fast device, heavy interface: CPU side dominates.
        let heavy = QueryTimeModel {
            t_request: 10e-6,
            t_read: 0.1e-6,
        };
        assert_eq!(
            heavy.async_time(&INP),
            INP.t_compute + INP.n_io * heavy.t_request
        );
    }

    #[test]
    fn requirement_roundtrip() {
        // A device exactly meeting the requirement hits the target.
        let t_target = 1e-3;
        let req = requirements(&INP, t_target);
        let m = QueryTimeModel {
            t_request: 1.0 / req.min_request_rate,
            t_read: 1.0 / req.min_iops,
        };
        let t = m.async_time(&INP);
        assert!((t - t_target).abs() < 1e-12, "t = {t}");
    }

    #[test]
    fn infeasible_target() {
        let req = requirements(&INP, 50e-6); // below t_compute
        assert!(req.min_request_rate.is_infinite());
        assert!(req.min_iops.is_finite());
    }

    #[test]
    fn paper_magnitudes() {
        // Paper Sec. 4.4: a few hundred I/Os, SRS time in the ms range →
        // requirement of a few hundred kIOPS.
        let iops = required_iops(400.0, 1.5e-3);
        assert!(iops > 100e3 && iops < 1e6, "iops = {iops}");
        // Sec. 4.5: in-memory E2LSH time ~100 µs → a few MIOPS.
        let iops = required_iops(400.0, 150e-6);
        assert!(iops > 1e6 && iops < 10e6, "iops = {iops}");
    }

    #[test]
    fn sync_requirement_exceeds_async() {
        let sync = required_iops_sync(INP.n_io, 1e-3, INP.t_compute);
        let asyn = required_iops(INP.n_io, 1e-3);
        assert!(sync > asyn);
    }
}
