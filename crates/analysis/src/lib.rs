//! # e2lsh-analysis
//!
//! The paper's query-time cost models and storage-requirement solvers
//! (Section 4). Placeholder module list; see [`model`].

pub mod model;

pub use model::{
    required_iops, required_request_rate, CostInputs, QueryTimeModel, StorageRequirement,
};
