//! Uniform experiment output: aligned stdout tables plus JSON-lines
//! records written under `results/` for archival and EXPERIMENTS.md.

use serde::Serialize;
use std::fs::{create_dir_all, OpenOptions};
use std::io::Write;
use std::path::PathBuf;

/// Where JSON-lines results are written (relative to the workspace root
/// or the current directory).
pub fn results_dir() -> PathBuf {
    let p = PathBuf::from("results");
    create_dir_all(&p).ok();
    p
}

/// Append a JSON record to `results/<experiment>.jsonl`.
pub fn record<T: Serialize>(experiment: &str, value: &T) {
    let path = results_dir().join(format!("{experiment}.jsonl"));
    if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&path) {
        if let Ok(line) = serde_json::to_string(value) {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Print a header banner for an experiment binary.
pub fn banner(experiment: &str, paper_ref: &str, note: &str) {
    println!("==============================================================");
    println!("{experiment}  (paper: {paper_ref})");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("==============================================================");
}

/// Format seconds with an adaptive unit.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.1} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Format an IOPS value in k/M units.
pub fn fmt_iops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2} MIOPS", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} kIOPS", v / 1e3)
    } else {
        format!("{v:.2} IOPS")
    }
}

/// Format a byte count.
pub fn fmt_bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b >= K * K * K {
        format!("{:.2} GiB", b / K / K / K)
    } else if b >= K * K {
        format!("{:.1} MiB", b / K / K)
    } else if b >= K {
        format!("{:.1} KiB", b / K)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5 µs");
        assert_eq!(fmt_time(250e-9), "250 ns");
        assert_eq!(fmt_iops(350_000.0), "350.0 kIOPS");
        assert_eq!(fmt_iops(2_900_000.0), "2.90 MIOPS");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(6_300_000_000), "5.87 GiB");
    }
}
