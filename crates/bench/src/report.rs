//! Uniform experiment output: aligned stdout tables plus JSON-lines
//! records written under `results/` for archival and EXPERIMENTS.md.

use serde::Serialize;
use std::fs::{create_dir_all, OpenOptions};
use std::io::Write;
use std::path::PathBuf;

/// Where JSON-lines results are written (relative to the workspace root
/// or the current directory).
pub fn results_dir() -> PathBuf {
    let p = PathBuf::from("results");
    create_dir_all(&p).ok();
    p
}

/// Append a JSON record to `results/<experiment>.jsonl`.
pub fn record<T: Serialize>(experiment: &str, value: &T) {
    let path = results_dir().join(format!("{experiment}.jsonl"));
    if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(&path) {
        if let Ok(line) = serde_json::to_string(value) {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Machine-readable bench artifact: one `results/BENCH_<name>.json`
/// per bench bin, in the stable schema the CI schema check (and any
/// downstream dashboard) consumes. Top-level keys:
///
/// * `schema_version` — [`e2lsh_service::SCHEMA_VERSION`], bumped with
///   the export schema;
/// * `bench` — the bin name;
/// * `rows` — every table row the bin printed, as
///   `{"section": <table>, "data": {...}}` objects in emission order;
/// * `service` — a full [`e2lsh_service::report_json`] snapshot of a
///   representative run (counters, gauges, histogram summaries, slow
///   queries), or `null` when the bin never attached one.
///
/// Rows are serialized eagerly (`push`) so a panicking assertion later
/// in the bin cannot corrupt already-collected data; `write` assembles
/// the document and replaces the file atomically-enough for CI (single
/// writer).
pub struct BenchArtifact {
    name: String,
    rows: Vec<String>,
    service: Option<String>,
}

impl BenchArtifact {
    pub fn new(name: &str) -> Self {
        BenchArtifact {
            name: name.to_string(),
            rows: Vec::new(),
            service: None,
        }
    }

    /// Add one table row under a section label.
    pub fn push<T: Serialize>(&mut self, section: &str, row: &T) {
        let (section, data) = match (
            serde_json::to_string(&section.to_string()),
            serde_json::to_string(row),
        ) {
            (Ok(s), Ok(d)) => (s, d),
            _ => return,
        };
        self.rows
            .push(format!("{{\"section\":{section},\"data\":{data}}}"));
    }

    /// Attach the representative service-report snapshot (pre-rendered
    /// by [`e2lsh_service::report_json`]). Last call wins.
    pub fn attach_service(&mut self, report_json: String) {
        self.service = Some(report_json);
    }

    /// Write `results/BENCH_<name>.json` and return its path.
    pub fn write(&self) -> PathBuf {
        let path = results_dir().join(format!("BENCH_{}.json", self.name));
        let name_json = serde_json::to_string(&self.name).unwrap_or_else(|_| "\"?\"".to_string());
        let mut doc = format!(
            "{{\"schema_version\":{},\"bench\":{name_json},\"rows\":[",
            e2lsh_service::SCHEMA_VERSION
        );
        doc.push_str(&self.rows.join(","));
        doc.push_str("],\"service\":");
        doc.push_str(self.service.as_deref().unwrap_or("null"));
        doc.push('}');
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("\nartifact: {}", path.display());
        }
        path
    }
}

/// Print a header banner for an experiment binary.
pub fn banner(experiment: &str, paper_ref: &str, note: &str) {
    println!("==============================================================");
    println!("{experiment}  (paper: {paper_ref})");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("==============================================================");
}

/// Format seconds with an adaptive unit.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.1} µs", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Format an IOPS value in k/M units.
pub fn fmt_iops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2} MIOPS", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} kIOPS", v / 1e3)
    } else {
        format!("{v:.2} IOPS")
    }
}

/// Format a byte count.
pub fn fmt_bytes(b: u64) -> String {
    const K: f64 = 1024.0;
    let b = b as f64;
    if b >= K * K * K {
        format!("{:.2} GiB", b / K / K / K)
    } else if b >= K * K {
        format!("{:.1} MiB", b / K / K)
    } else if b >= K {
        format!("{:.1} KiB", b / K)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_schema_round_trips() {
        #[derive(Serialize)]
        struct R {
            qps: f64,
        }
        let mut a = BenchArtifact::new("unit_test_artifact");
        a.push("closed", &R { qps: 1234.5 });
        a.push("open", &R { qps: 99.0 });
        let path = a.write();
        let doc = std::fs::read_to_string(&path).expect("artifact written");
        let v = serde_json::from_str(&doc).expect("artifact parses");
        for key in ["schema_version", "bench", "rows", "service"] {
            assert!(v.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(
            v.get("schema_version").unwrap().as_f64(),
            Some(e2lsh_service::SCHEMA_VERSION as f64)
        );
        assert_eq!(v.get("bench").unwrap().as_str(), Some("unit_test_artifact"));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("section").unwrap().as_str(), Some("closed"));
        assert_eq!(
            rows[0].get("data").unwrap().get("qps").unwrap().as_f64(),
            Some(1234.5)
        );
        assert!(v.get("service").unwrap().is_null());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(2.5), "2.50 s");
        assert_eq!(fmt_time(2.5e-3), "2.50 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5 µs");
        assert_eq!(fmt_time(250e-9), "250 ns");
        assert_eq!(fmt_iops(350_000.0), "350.0 kIOPS");
        assert_eq!(fmt_iops(2_900_000.0), "2.90 MIOPS");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(6_300_000_000), "5.87 GiB");
    }
}
