//! Dataset preparation and per-dataset E2LSH parameterization.

use ann_datasets::ground_truth::GroundTruth;
use ann_datasets::suite::{self, DatasetId, NamedDataset};
use e2lsh_core::dataset::Dataset;
use e2lsh_core::params::E2lshParams;

/// Harness-wide E2LSH settings (paper Section 3.3): `c = 2`, bucket width
/// `w = 2` (sets the collision probabilities; ρ is then pinned separately
/// per Table 4's practice), effective index exponent `ρ_target = 0.3`, and
/// `γ = 1` unless a sweep overrides it.
pub const C: f32 = 2.0;
pub const W: f32 = 2.0;
pub const RHO_TARGET: f64 = 0.3;
pub const GAMMA: f32 = 1.0;

/// A dataset ready for experiments.
pub struct Workload {
    pub id: DatasetId,
    pub data: Dataset,
    pub queries: Dataset,
    /// Ground truth for the largest k any experiment needs (100).
    pub gt: GroundTruth,
    pub params: E2lshParams,
}

/// E2LSH parameters for a dataset, following the harness defaults.
pub fn e2lsh_params(data: &Dataset) -> E2lshParams {
    e2lsh_params_gamma(data, GAMMA)
}

/// Same with an explicit γ.
pub fn e2lsh_params_gamma(data: &Dataset, gamma: f32) -> E2lshParams {
    E2lshParams::derive_practical(
        data.len(),
        C,
        W,
        gamma,
        RHO_TARGET,
        data.max_abs_coord(),
        data.dim(),
    )
}

/// Load a named dataset at its effective scale with ground truth.
pub fn workload(id: DatasetId) -> Workload {
    workload_sized(id, suite::effective_n(id), 100)
}

/// Load with an explicit size (scaling experiments).
pub fn workload_sized(id: DatasetId, n: usize, n_queries: usize) -> Workload {
    let NamedDataset { data, queries, .. } = suite::load_sized(id, n, n_queries);
    let gt = GroundTruth::compute(&data, &queries, 100.min(n));
    let params = e2lsh_params(&data);
    Workload {
        id,
        data,
        queries,
        gt,
        params,
    }
}

/// Datasets used when an experiment loops over "all datasets". BIGANN is
/// included at its (scaled) evaluation size.
pub fn all_dataset_ids() -> Vec<DatasetId> {
    DatasetId::ALL.to_vec()
}

/// The accuracy schedule for E2LSH(oS): pairs of `(γ, S multiplier)`.
/// Smaller γ means fewer hash functions per compound, so buckets catch
/// more (and closer) candidates — higher accuracy at more compute — while
/// a larger `S` budget lets the extra candidates through (paper
/// Section 3.3: γ tunes accuracy without touching the index size `L`;
/// the success-probability shift is "compensated for by the choice of S").
pub fn gamma_schedule() -> Vec<(f32, f64)> {
    vec![
        (1.2, 2.0),
        (1.0, 2.0),
        (0.85, 4.0),
        (0.7, 8.0),
        (0.55, 16.0),
    ]
}

/// Directory where built disk indices are cached across experiment
/// binaries (they are deterministic in (dataset, n, γ)).
pub fn index_cache_dir() -> std::path::PathBuf {
    let dir = std::env::var("E2LSH_INDEX_CACHE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("target/e2lsh-index-cache"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Build (or reuse from cache) the on-storage index for a workload at a
/// given γ. Returns the file path.
pub fn ensure_disk_index(w: &Workload, gamma: f32) -> std::path::PathBuf {
    use e2lsh_storage::build::{build_index, BuildConfig};
    let path = index_cache_dir().join(format!(
        "{}-n{}-g{}.idx",
        w.id.name(),
        w.data.len(),
        (gamma * 100.0).round() as u32
    ));
    if !path.exists() {
        let params = e2lsh_params_gamma(&w.data, gamma);
        build_index(&w.data, &params, &BuildConfig::default(), &path).expect("index build failed");
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_loads_and_params_are_paper_shaped() {
        let w = workload_sized(DatasetId::Sift, 3000, 10);
        assert_eq!(w.data.len(), 3000);
        assert_eq!(w.gt.num_queries(), 10);
        // L = n^0.3: for 3000 that is ~11.
        assert!(w.params.l >= 8 && w.params.l <= 16, "L = {}", w.params.l);
        assert!(w.params.m >= 5, "m = {}", w.params.m);
        assert!(w.params.num_radii() >= 8, "r = {}", w.params.num_radii());
    }
}
