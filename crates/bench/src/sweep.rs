//! Accuracy sweeps: walk each method's accuracy knob, record
//! (overall ratio, query time) pairs, and select the operating point that
//! reaches a target ratio (the paper compares all methods at an overall
//! ratio of 1.05).
//!
//! Knobs (paper Section 3.3):
//! * **E2LSH / E2LSHoS** — the `(γ, S)` schedule of
//!   [`crate::prep::gamma_schedule`]: smaller γ (fewer hashes per
//!   compound) with a larger budget `S` raises accuracy at more compute
//!   and I/O, leaving the index size unchanged;
//! * **SRS** — the examination budget `T'` (chi-square early stop off);
//! * **QALSH** — the approximation ratio `c`.

use crate::prep::{e2lsh_params_gamma, ensure_disk_index, gamma_schedule, Workload};
use ann_baselines::qalsh::{Qalsh, QalshConfig};
use ann_baselines::srs::{Srs, SrsConfig};
use ann_datasets::metrics::overall_ratio;
use e2lsh_core::index::MemIndex;
use e2lsh_core::search::{knn_search, SearchOptions, SearchStats};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::Interface;
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::query::{run_queries, BatchReport, EngineConfig};
use std::time::Instant;

/// One operating point of a method.
#[derive(Clone, Debug)]
pub struct OperatingPoint {
    /// Knob value (γ for E2LSH, T'/n for SRS, c for QALSH).
    pub knob: f64,
    /// Mean overall ratio across the query set.
    pub ratio: f64,
    /// Mean query time in seconds (wall for in-memory, virtual for
    /// E2LSHoS).
    pub query_time: f64,
    /// Mean I/Os per query, when the method does I/O (0 otherwise).
    pub n_io: f64,
}

/// A method's sweep curve.
#[derive(Clone, Debug, Default)]
pub struct Curve {
    pub points: Vec<OperatingPoint>,
}

impl Curve {
    /// The cheapest operating point achieving `ratio ≤ target`; falls back
    /// to the most accurate point when the target is out of reach.
    pub fn point_at_ratio(&self, target: f64) -> &OperatingPoint {
        assert!(!self.points.is_empty(), "empty sweep");
        self.points
            .iter()
            .filter(|p| p.ratio <= target)
            .min_by(|a, b| a.query_time.total_cmp(&b.query_time))
            .unwrap_or_else(|| {
                self.points
                    .iter()
                    .min_by(|a, b| a.ratio.total_cmp(&b.ratio))
                    .expect("non-empty")
            })
    }

    /// Query time at the selected point for `target`.
    pub fn time_at_ratio(&self, target: f64) -> f64 {
        self.point_at_ratio(target).query_time
    }
}

/// Results of the in-memory E2LSH sweep: the curve plus, per γ point, the
/// aggregate search statistics over the query set (for the I/O analysis).
pub struct E2lshMemSweep {
    pub curve: Curve,
    pub stats: Vec<SearchStats>,
    /// `(γ, S)` used at each point.
    pub schedule: Vec<(f32, f64)>,
}

/// Sweep in-memory E2LSH over the γ schedule (one index build per γ).
pub fn sweep_e2lsh_mem(w: &Workload, k: usize, collect_buckets: bool) -> E2lshMemSweep {
    let mut out = E2lshMemSweep {
        curve: Curve::default(),
        stats: Vec::new(),
        schedule: gamma_schedule(),
    };
    for &(gamma, s_mult) in &out.schedule {
        let params = e2lsh_params_gamma(&w.data, gamma);
        let index = MemIndex::build(&w.data, &params, 7);
        let (point, stats) = measure_e2lsh_mem(&index, w, k, s_mult, collect_buckets);
        out.curve.points.push(OperatingPoint {
            knob: gamma as f64,
            ..point
        });
        out.stats.push(stats);
    }
    out
}

/// Measure one in-memory E2LSH operating point.
pub fn measure_e2lsh_mem(
    index: &MemIndex,
    w: &Workload,
    k: usize,
    s_mult: f64,
    collect_buckets: bool,
) -> (OperatingPoint, SearchStats) {
    let s = ((s_mult * index.params().l as f64).ceil() as usize).max(k);
    let opts = SearchOptions {
        s_override: Some(s * k.max(1)),
        collect_bucket_sizes: collect_buckets,
        ..Default::default()
    };
    let mut results = Vec::with_capacity(w.queries.len());
    let mut agg = SearchStats::default();
    let t0 = Instant::now();
    for qi in 0..w.queries.len() {
        let (res, st) = knn_search(index, &w.data, w.queries.point(qi), k, &opts);
        agg.radii_searched += st.radii_searched;
        agg.buckets_probed += st.buckets_probed;
        agg.nonempty_buckets += st.nonempty_buckets;
        agg.candidates += st.candidates;
        agg.distance_computations += st.distance_computations;
        agg.hash_evaluations += st.hash_evaluations;
        agg.bucket_examined.extend(st.bucket_examined);
        results.push(res);
    }
    let elapsed = t0.elapsed().as_secs_f64() / w.queries.len() as f64;
    let nq = w.queries.len() as f64;
    let point = OperatingPoint {
        knob: 0.0,
        ratio: mean_ratio(&results, w, k),
        query_time: elapsed,
        n_io: 2.0 * agg.nonempty_buckets as f64 / nq,
    };
    (point, agg)
}

/// A storage configuration for E2LSHoS sweeps.
#[derive(Clone, Copy, Debug)]
pub struct StorageConfig {
    pub profile: DeviceProfile,
    pub num_devices: usize,
    pub interface: Interface,
}

impl StorageConfig {
    pub fn name(&self) -> String {
        format!(
            "{}×{} + {}",
            self.profile.name, self.num_devices, self.interface.name
        )
    }
}

/// Sweep E2LSHoS over the γ schedule on a simulated storage
/// configuration. Reuses cached disk indices.
pub fn sweep_e2lshos(w: &Workload, k: usize, storage: StorageConfig) -> (Curve, Vec<BatchReport>) {
    let mut curve = Curve::default();
    let mut reports = Vec::new();
    for &(gamma, s_mult) in &gamma_schedule() {
        let (point, report) = measure_e2lshos(w, k, gamma, s_mult, storage, None);
        curve.points.push(OperatingPoint {
            knob: gamma as f64,
            ..point
        });
        reports.push(report);
    }
    (curve, reports)
}

/// Measure one E2LSHoS operating point on simulated storage. `engine`
/// overrides the default simulated engine config (contexts etc.).
pub fn measure_e2lshos(
    w: &Workload,
    k: usize,
    gamma: f32,
    s_mult: f64,
    storage: StorageConfig,
    engine: Option<EngineConfig>,
) -> (OperatingPoint, BatchReport) {
    let path = ensure_disk_index(w, gamma);
    let mut dev = SimStorage::new(
        storage.profile,
        storage.num_devices,
        Backing::open(&path).expect("open index"),
    );
    let index = StorageIndex::open(&mut dev).expect("open storage index");
    let mut cfg = engine.unwrap_or_else(|| EngineConfig::simulated(storage.interface, k));
    cfg.interface = storage.interface;
    cfg.k = k;
    let s = ((s_mult * index.params().l as f64).ceil() as usize).max(k);
    cfg.s_override = Some(s * k.max(1));
    let report = run_queries(&index, &w.data, &w.queries, &cfg, &mut dev);
    let results: Vec<Vec<(u32, f32)>> = report
        .outcomes
        .iter()
        .map(|o| o.neighbors.clone())
        .collect();
    let point = OperatingPoint {
        knob: gamma as f64,
        ratio: mean_ratio(&results, w, k),
        query_time: report.mean_query_time(),
        n_io: report.mean_n_io(),
    };
    (point, report)
}

/// Sweep SRS over the examination budget `T'` (fractions of `n`), with
/// the chi-square early stop disabled so `T'` binds (the paper's regime).
pub fn sweep_srs(w: &Workload, k: usize) -> Curve {
    let srs = Srs::build(
        &w.data,
        SrsConfig {
            early_stop: false,
            ..Default::default()
        },
    );
    sweep_srs_prebuilt(&srs, w, k)
}

/// Same against an existing SRS index.
pub fn sweep_srs_prebuilt(srs: &Srs, w: &Workload, k: usize) -> Curve {
    let n = w.data.len();
    let fracs = [0.002, 0.005, 0.01, 0.03, 0.1, 0.3, 0.6, 1.0];
    let mut curve = Curve::default();
    for &f in &fracs {
        let t_prime = ((f * n as f64).ceil() as usize).max(k + 1);
        let mut results = Vec::with_capacity(w.queries.len());
        let t0 = Instant::now();
        for qi in 0..w.queries.len() {
            let (res, _) = srs.query(&w.data, w.queries.point(qi), k, Some(t_prime));
            results.push(res);
        }
        let elapsed = t0.elapsed().as_secs_f64() / w.queries.len() as f64;
        curve.points.push(OperatingPoint {
            knob: f,
            ratio: mean_ratio(&results, w, k),
            query_time: elapsed,
            n_io: 0.0,
        });
    }
    curve
}

/// Sweep QALSH over the approximation ratio `c` (its only tunable).
pub fn sweep_qalsh(w: &Workload, k: usize) -> Curve {
    let mut curve = Curve::default();
    for &c in &[1.5f32, 2.0, 3.0] {
        let qalsh = Qalsh::build(
            &w.data,
            QalshConfig {
                c,
                ..Default::default()
            },
        );
        let mut results = Vec::with_capacity(w.queries.len());
        let t0 = Instant::now();
        for qi in 0..w.queries.len() {
            let (res, _) = qalsh.query(&w.data, w.queries.point(qi), k);
            results.push(res);
        }
        let elapsed = t0.elapsed().as_secs_f64() / w.queries.len() as f64;
        curve.points.push(OperatingPoint {
            knob: c as f64,
            ratio: mean_ratio(&results, w, k),
            query_time: elapsed,
            n_io: 0.0,
        });
    }
    curve
}

/// Mean overall ratio of a batch of results against the workload's ground
/// truth.
pub fn mean_ratio(results: &[Vec<(u32, f32)>], w: &Workload, k: usize) -> f64 {
    let mut sum = 0.0;
    for (qi, res) in results.iter().enumerate() {
        sum += overall_ratio(res, w.gt.neighbors(qi), k);
    }
    sum / results.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::workload_sized;
    use ann_datasets::suite::DatasetId;

    #[test]
    fn srs_sweep_budget_now_binds() {
        let w = workload_sized(DatasetId::Sift, 2000, 10);
        let curve = sweep_srs(&w, 1);
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        // Full scan is exact.
        assert!(last.ratio <= 1.0 + 1e-9, "full-scan ratio {}", last.ratio);
        // Tiny budget is cheaper and less accurate.
        assert!(first.query_time < last.query_time);
        assert!(first.ratio >= last.ratio);
    }

    #[test]
    fn gamma_schedule_spans_accuracy() {
        let w = workload_sized(DatasetId::Sift, 2000, 10);
        let sweep = sweep_e2lsh_mem(&w, 1, false);
        let best = sweep
            .curve
            .points
            .iter()
            .map(|p| p.ratio)
            .fold(f64::INFINITY, f64::min);
        let worst = sweep
            .curve
            .points
            .iter()
            .map(|p| p.ratio)
            .fold(0.0, f64::max);
        assert!(
            best < worst,
            "γ schedule must move accuracy: best {best} worst {worst}"
        );
        assert!(best <= 1.06, "best achievable ratio {best}");
    }

    #[test]
    fn curve_selection_prefers_cheapest_sufficient_point() {
        let curve = Curve {
            points: vec![
                OperatingPoint {
                    knob: 1.0,
                    ratio: 1.2,
                    query_time: 1.0,
                    n_io: 0.0,
                },
                OperatingPoint {
                    knob: 2.0,
                    ratio: 1.04,
                    query_time: 2.0,
                    n_io: 0.0,
                },
                OperatingPoint {
                    knob: 3.0,
                    ratio: 1.01,
                    query_time: 4.0,
                    n_io: 0.0,
                },
            ],
        };
        assert_eq!(curve.time_at_ratio(1.05), 2.0);
        assert_eq!(curve.time_at_ratio(1.0), 4.0);
    }
}
