//! # e2lsh-bench
//!
//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the E2LSHoS paper (see `DESIGN.md` §4 for the map from
//! experiment to binary).
//!
//! * [`prep`] — load a named dataset, derive the per-dataset E2LSH
//!   parameters the harness uses, compute ground truth;
//! * [`sweep`] — accuracy sweeps: each method exposes one knob (E2LSH: the
//!   candidate budget `S`; SRS: the examination budget `T'`; QALSH: the
//!   approximation ratio `c`), and the sweep walks the knob to produce
//!   (overall ratio, query time) curves and to hit a target ratio;
//! * [`report`] — uniform stdout tables plus JSON-lines records under
//!   `results/` for archival.

pub mod prep;
pub mod report;
pub mod sweep;
