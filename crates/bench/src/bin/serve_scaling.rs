//! **Serving-layer scaling** — extends the paper's Figure 15 (device
//! scaling) and Figure 16 (thread scaling) from a replayed batch to a
//! served workload: a sharded service with per-replica reactors, a shared
//! simulated device array per shard, and a DRAM block cache, under a
//! Zipf-skewed query stream.
//!
//! Part 1 (closed loop) sweeps the compute-thread count at a fixed in-flight
//! window and reports QPS plus p50/p95/p99 latency — throughput grows
//! with threads until the shard arrays' total IOPS (minus the cache's
//! DRAM hits) caps it, the served-traffic version of Figure 16's
//! `QPS(T) = min(T·QPS_cpu, IOPS/N_IO)`.
//!
//! Part 2 (open loop) drives Poisson arrivals at a fraction of the
//! saturated throughput and reports the latency distribution including
//! queueing delay — the paper's latency-vs-usage trade-off (Figure 15)
//! as a client would see it.
//!
//! Part 3 (sync vs async, service scale) re-runs the paper's §6.5
//! comparison through the per-replica reactor: a **fixed 4-thread
//! compute pool** per replica while `inflight_per_replica` sweeps
//! 4 → 1024. At 4 the service is the synchronous analogue (every
//! in-flight query effectively owns a thread, QD per query ≈ 1); at
//! 1024 the reactor multiplexes 256× more in-flight queries than
//! compute threads over the devices' native queue depth. The closed
//! loop shows the throughput gap; the open loop drives both at the
//! *same* moderate offered load and reports service p99 against the
//! device's modeled service time — deep inflight keeps p99 within a
//! small multiple of the model while the thread-bound config queues.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload_sized;
use e2lsh_bench::report;
use e2lsh_service::{
    skewed_queries, DeviceSpec, Load, ServiceConfig, ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use serde::Serialize;

#[derive(Serialize)]
struct ClosedRow {
    workers_per_replica: usize,
    shards: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// Enqueue-wait p99 (queue entry → first reactor start). Closed and
    /// open loop book this identically now: both timestamps are
    /// recorded per op, so the end-to-end percentiles above are
    /// decomposable instead of mixing wait into service time
    /// differently per mode.
    wait_p99_ms: f64,
    /// Service-only p99 (first reactor start → last shard finish).
    service_p99_ms: f64,
    mean_n_io: f64,
    cache_hit_rate: f64,
    observed_kiops: f64,
}

#[derive(Serialize)]
struct OpenRow {
    rate_qps: f64,
    achieved_qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    wait_p99_ms: f64,
    service_p99_ms: f64,
    cache_hit_rate: f64,
}

#[derive(Serialize)]
struct AsyncRow {
    /// Interleaved query slots per replica reactor.
    inflight_per_replica: usize,
    /// Compute-pool threads per replica (fixed across the sweep).
    compute_threads: usize,
    /// Closed loop when true, moderate-load open loop when false.
    closed: bool,
    offered_qps: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    wait_p99_ms: f64,
    service_p99_ms: f64,
    mean_n_io: f64,
    cache_hit_rate: f64,
    observed_kiops: f64,
    /// Modeled per-I/O device service time (the simulated die's fixed
    /// service latency — what one random read costs with no queueing).
    model_io_ms: f64,
    /// Modeled service time of a near-worst-case (uncached) query: its
    /// per-shard I/Os served serially at `model_io_ms` — the
    /// synchronous QD1 floor.
    model_query_ms: f64,
    /// Service p99 over `model_query_ms`: ≈1 means the reactor serves
    /// tail queries at device speed even with hundreds of other
    /// queries in flight; queueing pushes it above.
    svc_p99_over_model: f64,
}

const NUM_SHARDS: usize = 2;
const QUERIES: usize = 1500;
const ZIPF_S: f64 = 1.1;

fn build_service(workers: usize, data: &e2lsh_core::dataset::Dataset) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: NUM_SHARDS,
            seed: 99,
            dir: std::env::temp_dir().join(format!("e2lsh-serve-scaling-{}", std::process::id())),
            cache_blocks: 1 << 16, // 32 MiB of 512-byte blocks per shard
            ..Default::default()
        },
        e2lsh_bench::prep::e2lsh_params,
    )
    .expect("shard build");
    ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: workers,
            contexts_per_worker: 32,
            k: 1,
            s_override: None,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::CSSD,
                num_devices: 2,
            },
            ..Default::default()
        },
    )
}

/// Part 3 services: a fixed compute pool, an explicit reactor slot
/// count. Everything else matches `build_service` so the sweep isolates
/// the in-flight depth.
fn build_service_inflight(
    compute: usize,
    inflight: usize,
    data: &e2lsh_core::dataset::Dataset,
) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: NUM_SHARDS,
            seed: 99,
            dir: std::env::temp_dir().join(format!("e2lsh-serve-async-{}", std::process::id())),
            cache_blocks: 1 << 16,
            ..Default::default()
        },
        e2lsh_bench::prep::e2lsh_params,
    )
    .expect("shard build");
    ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: compute,
            inflight_per_replica: inflight,
            k: 1,
            s_override: None,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::CSSD,
                num_devices: 2,
            },
            ..Default::default()
        },
    )
}

fn main() {
    report::banner(
        "serve_scaling",
        "Figures 15–16, served",
        "Sharded service QPS and latency percentiles vs workers (SIFT, \
         cSSD×2 per shard, 32 MiB DRAM cache, Zipf-skewed queries).",
    );
    let w = workload_sized(DatasetId::Sift, 12_000, 100);
    let queries = skewed_queries(&w.queries, QUERIES, ZIPF_S, 7);
    let mut artifact = report::BenchArtifact::new("serve_scaling");

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8} {:>9} {:>12}",
        "workers", "QPS", "p50", "p95", "p99", "wait-p99", "svc-p99", "N_IO", "cache", "dev kIOPS"
    );
    let mut saturated_qps: f64 = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let svc = build_service(workers, &w.data);
        let rep = svc.serve(&queries, Load::Closed { window: 64 });
        let lat = rep.latency();
        let wait = rep.queue_wait();
        let svc_lat = rep.service_latency();
        let row = ClosedRow {
            workers_per_replica: workers,
            shards: NUM_SHARDS,
            qps: rep.qps(),
            p50_ms: lat.p50 * 1e3,
            p95_ms: lat.p95 * 1e3,
            p99_ms: lat.p99 * 1e3,
            wait_p99_ms: wait.p99 * 1e3,
            service_p99_ms: svc_lat.p99 * 1e3,
            mean_n_io: rep.mean_n_io(),
            cache_hit_rate: rep.device.cache_hit_rate(),
            observed_kiops: rep.device.completed as f64 / rep.duration.max(1e-9) / 1e3,
        };
        println!(
            "{:>8} {:>10.0} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8.1} {:>8.1}% {:>12.1}",
            row.workers_per_replica,
            row.qps,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p95),
            report::fmt_time(lat.p99),
            report::fmt_time(wait.p99),
            report::fmt_time(svc_lat.p99),
            row.mean_n_io,
            row.cache_hit_rate * 100.0,
            row.observed_kiops,
        );
        report::record("serve_scaling_closed", &row);
        artifact.push("closed", &row);
        saturated_qps = saturated_qps.max(row.qps);
        svc.shards().cleanup();
    }

    println!();
    println!("Open loop (Poisson arrivals, 4 workers/shard):");
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "offered QPS", "achieved", "p50", "p95", "p99", "wait-p99", "svc-p99", "cache"
    );
    for frac in [0.3, 0.6, 0.9] {
        let rate = (saturated_qps * frac).max(1.0);
        let svc = build_service(4, &w.data);
        let rep = svc.serve(
            &queries,
            Load::Open {
                rate_qps: rate,
                seed: 13,
            },
        );
        let lat = rep.latency();
        let wait = rep.queue_wait();
        let svc_lat = rep.service_latency();
        let row = OpenRow {
            rate_qps: rate,
            achieved_qps: rep.qps(),
            p50_ms: lat.p50 * 1e3,
            p95_ms: lat.p95 * 1e3,
            p99_ms: lat.p99 * 1e3,
            wait_p99_ms: wait.p99 * 1e3,
            service_p99_ms: svc_lat.p99 * 1e3,
            cache_hit_rate: rep.device.cache_hit_rate(),
        };
        println!(
            "{:>12.0} {:>12.0} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8.1}%",
            row.rate_qps,
            row.achieved_qps,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p95),
            report::fmt_time(lat.p99),
            report::fmt_time(wait.p99),
            report::fmt_time(svc_lat.p99),
            row.cache_hit_rate * 100.0,
        );
        report::record("serve_scaling_open", &row);
        artifact.push("open", &row);
        artifact.attach_service(e2lsh_service::report_json(&rep));
        svc.shards().cleanup();
    }

    // ----- Part 3: sync vs async at service scale ---------------------
    const COMPUTE: usize = 4;
    let model_io_ms = DeviceProfile::CSSD.service_time() * 1e3;
    println!();
    println!(
        "Sync vs async, service scale ({COMPUTE}-thread compute pool per replica, \
         modeled device service time {model_io_ms:.3} ms/IO):"
    );
    println!(
        "{:>9} {:>7} {:>11} {:>10} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "inflight", "mode", "offered", "QPS", "p50", "p99", "svc-p99", "p99/mdl", "dev kIOPS"
    );
    let mut async_row = |inflight: usize, closed: bool, offered: f64| -> f64 {
        let svc = build_service_inflight(COMPUTE, inflight, &w.data);
        let rep = if closed {
            svc.serve(
                &queries,
                Load::Closed {
                    window: 2 * inflight * NUM_SHARDS,
                },
            )
        } else {
            svc.serve(
                &queries,
                Load::Open {
                    rate_qps: offered,
                    seed: 13,
                },
            )
        };
        let lat = rep.latency();
        let wait = rep.queue_wait();
        let svc_lat = rep.service_latency();
        // Modeled service time of a near-worst-case (fully uncached)
        // query: its per-shard device I/Os served serially at the die's
        // fixed service latency — the synchronous QD1 floor. A
        // completion-driven engine at moderate load should sit near 1×
        // this even with hundreds of other queries in flight; queueing
        // (thread-bound configs) pushes it above.
        let model_query_ms = rep.mean_n_io() / NUM_SHARDS as f64 * model_io_ms;
        let row = AsyncRow {
            inflight_per_replica: inflight,
            compute_threads: COMPUTE,
            closed,
            offered_qps: offered,
            qps: rep.qps(),
            p50_ms: lat.p50 * 1e3,
            p99_ms: lat.p99 * 1e3,
            wait_p99_ms: wait.p99 * 1e3,
            service_p99_ms: svc_lat.p99 * 1e3,
            mean_n_io: rep.mean_n_io(),
            cache_hit_rate: rep.device.cache_hit_rate(),
            observed_kiops: rep.device.completed as f64 / rep.duration.max(1e-9) / 1e3,
            model_io_ms,
            model_query_ms,
            svc_p99_over_model: svc_lat.p99 * 1e3 / model_query_ms.max(1e-12),
        };
        println!(
            "{:>9} {:>7} {:>11.0} {:>10.0} {:>10} {:>10} {:>9} {:>8.1}x {:>10.1}",
            row.inflight_per_replica,
            if closed { "closed" } else { "open" },
            row.offered_qps,
            row.qps,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p99),
            report::fmt_time(svc_lat.p99),
            row.svc_p99_over_model,
            row.observed_kiops,
        );
        report::record("serve_scaling_async", &row);
        artifact.push("sync_vs_async", &row);
        svc.shards().cleanup();
        row.qps
    };
    // Closed loop: the throughput gap. inflight=4 is the synchronous
    // analogue (every in-flight query owns a compute thread); 1024
    // multiplexes 256× more queries than threads.
    let mut deep_qps: f64 = 0.0;
    for inflight in [4usize, 64, 256, 1024] {
        deep_qps = async_row(inflight, true, 0.0).max(deep_qps);
    }
    // Open loop: the same moderate offered load (half the deep config's
    // saturated throughput) against both extremes. The thread-bound
    // config queues; the deep config's service p99 stays within a small
    // multiple of the modeled device service time.
    let moderate = (deep_qps * 0.5).max(1.0);
    for inflight in [4usize, 1024] {
        async_row(inflight, false, moderate);
    }
    artifact.write();
}
