//! **Replica groups** — read scaling and load-aware routing, beyond the
//! paper: the paper's engine is embarrassingly read-parallel (every
//! probe an independent block read), so a serving tier scales reads by
//! backing each shard with R replicas that share the index but own
//! private reactors, caches and admission queues
//! (`service::topology`), and by routing each query to one replica per
//! shard (`service::router`).
//!
//! Part 1 (closed loop, one private device array per replica —
//! "replicas add hardware") sweeps R = 1..4 on a read-only Zipf
//! workload: goodput must scale with R, and the acceptance bar is
//! **R = 3 ≥ 2× R = 1**.
//!
//! Part 2 (open loop at a fixed fraction of measured capacity, shared
//! per-shard array — replicas contend for one device, bounded
//! admission) compares routing policies: power-of-two-choices routes by
//! live queue depth and is expected to beat blind round-robin on
//! accepted p99 (and shed rate) under skewed load, while broadcast
//! shows the R× work amplification that makes it a correctness
//! baseline, not a serving mode.
//!
//! Part 3 (replica-aware cache warming) hands a heated replica's
//! traffic to a fresh sibling, cold vs pre-filled from the sibling's
//! MRU blocks (`ServiceConfig::cache_warm_blocks`): warming must
//! shrink the cold-start p99 gap and report the copied blocks in
//! `DeviceStats::cache_warmed`.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload_sized;
use e2lsh_bench::report;
use e2lsh_service::{
    skewed_queries, AdmissionBudget, DeviceSpec, Load, RoutePolicy, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use serde::Serialize;

#[derive(Serialize)]
struct ScalingRow {
    replicas: usize,
    goodput_qps: f64,
    speedup_vs_r1: f64,
    p50_ms: f64,
    p99_ms: f64,
    replica_imbalance: f64,
}

#[derive(Serialize)]
struct WarmingRow {
    variant: String,
    warmed_blocks: u64,
    cache_hit_rate: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct SlowRow {
    e2e_ms: f64,
    route_ms: f64,
    wait_ms: f64,
    service_ms: f64,
    merge_ms: f64,
    n_io: u64,
}

#[derive(Serialize)]
struct RoutingRow {
    policy: String,
    offered_qps: f64,
    goodput_qps: f64,
    shed_rate: f64,
    acc_p50_ms: f64,
    acc_p99_ms: f64,
    wait_p99_ms: f64,
    replica_imbalance: f64,
}

const NUM_SHARDS: usize = 2;
/// Part-1 query count (slow modeled devices: keep the sweep short).
const SCALE_QUERIES: usize = 400;
/// Part-2 query count.
const ROUTE_QUERIES: usize = 1000;
const ZIPF_S: f64 = 1.1;

#[allow(clippy::too_many_arguments)]
fn build_warm(
    data: &e2lsh_core::dataset::Dataset,
    replicas: usize,
    routing: RoutePolicy,
    device: DeviceSpec,
    cache_blocks: usize,
    bound: Option<usize>,
    warm_blocks: usize,
    tag: &str,
) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: NUM_SHARDS,
            seed: 99,
            dir: std::env::temp_dir()
                .join(format!("e2lsh-serve-replicas-{}-{tag}", std::process::id())),
            cache_blocks,
            ..Default::default()
        },
        e2lsh_bench::prep::e2lsh_params,
    )
    .expect("shard build");
    ShardedService::new(
        shards,
        ServiceConfig {
            replicas_per_shard: replicas,
            routing,
            workers_per_replica: 1,
            contexts_per_worker: 32,
            k: 1,
            s_override: None,
            device,
            admission: match bound {
                Some(d) => AdmissionBudget::depth(d).into(),
                None => Default::default(),
            },
            cache_warm_blocks: warm_blocks,
            ..Default::default()
        },
    )
}

fn build(
    data: &e2lsh_core::dataset::Dataset,
    replicas: usize,
    routing: RoutePolicy,
    device: DeviceSpec,
    cache_blocks: usize,
    bound: Option<usize>,
    tag: &str,
) -> ShardedService {
    build_warm(data, replicas, routing, device, cache_blocks, bound, 0, tag)
}

fn main() {
    report::banner(
        "serve_replicas",
        "beyond the paper: replica groups + routing",
        "Read goodput vs replicas per shard (R=1..4, one device array \
         per replica), then routing policies (p2c vs round-robin \
         vs broadcast) on accepted p99 under Zipf load at a fixed \
         offered rate with bounded admission (SIFT, 2 shards).",
    );
    let w = workload_sized(DatasetId::Sift, 12_000, 100);
    let scale_queries = skewed_queries(&w.queries, SCALE_QUERIES, ZIPF_S, 7);
    let queries = skewed_queries(&w.queries, ROUTE_QUERIES, ZIPF_S, 7);
    let mut artifact = report::BenchArtifact::new("serve_replicas");

    // Part 1: read scaling with R. Uncached + one private array per
    // replica: goodput is device-bound, so each replica adds its
    // array's IOPS — the "replicas are machines" model. The HDD
    // profile's millisecond service times keep the reactors asleep
    // between completions, so the sweep is meaningful even on a
    // single-core runner (NVMe-speed models would turn the wall-clock
    // sim into a CPU race between serving threads there).
    println!(
        "{:>3} {:>10} {:>9} {:>10} {:>10} {:>10}",
        "R", "goodput", "speedup", "p50", "p99", "imbalance"
    );
    let mut r1_qps = 0.0f64;
    let mut r3_qps = 0.0f64;
    for replicas in 1..=4usize {
        let svc = build(
            &w.data,
            replicas,
            RoutePolicy::PowerOfTwoChoices,
            DeviceSpec::SimPerWorker {
                profile: DeviceProfile::HDD,
                num_devices: 4,
            },
            0,
            None,
            &format!("scale{replicas}"),
        );
        let rep = svc.serve(
            &scale_queries,
            Load::Closed {
                window: 64 * replicas,
            },
        );
        let lat = rep.latency();
        if replicas == 1 {
            r1_qps = rep.goodput();
        }
        if replicas == 3 {
            r3_qps = rep.goodput();
        }
        let row = ScalingRow {
            replicas,
            goodput_qps: rep.goodput(),
            speedup_vs_r1: rep.goodput() / r1_qps.max(1e-9),
            p50_ms: lat.p50 * 1e3,
            p99_ms: lat.p99 * 1e3,
            replica_imbalance: rep.replica_imbalance(),
        };
        println!(
            "{:>3} {:>10.0} {:>8.2}x {:>10} {:>10} {:>10.2}",
            row.replicas,
            row.goodput_qps,
            row.speedup_vs_r1,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p99),
            row.replica_imbalance,
        );
        report::record("serve_replicas_scaling", &row);
        artifact.push("scaling", &row);
        svc.shards().cleanup();
    }
    assert!(
        r3_qps >= 2.0 * r1_qps,
        "R=3 goodput {r3_qps:.0} < 2x R=1 goodput {r1_qps:.0}"
    );

    // Part 2: routing policy face-off at R=3 with a private array per
    // replica (each replica's queue depth is its own real backlog) and
    // a private cache per replica: under Zipf traffic a query is a DRAM
    // hit or a multi-millisecond miss chain, so per-replica service
    // times are wildly uneven — exactly where blind routing hurts.
    // Offered rate is a fixed fraction of measured closed-loop
    // capacity; admission is bounded so overload is visible as sheds,
    // not queue growth.
    const R: usize = 3;
    const BOUND: usize = 512;
    let shared = DeviceSpec::SimPerWorker {
        profile: DeviceProfile::HDD,
        num_devices: 4,
    };
    let cache = 1 << 16; // 32 MiB of 512-byte blocks per replica
    let cap_svc = build(
        &w.data,
        R,
        RoutePolicy::PowerOfTwoChoices,
        shared,
        cache,
        Some(BOUND),
        "cap",
    );
    let capacity = cap_svc
        .serve(&queries, Load::Closed { window: 48 })
        .goodput();
    cap_svc.shards().cleanup();
    let rate = capacity * 0.95;
    println!("\nRouting at R={R}, offered {rate:.0} QPS (0.95x capacity {capacity:.0}):");
    println!(
        "{:>10} {:>10} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "policy", "goodput", "shed%", "a-p50", "a-p99", "wait-p99", "imbalance"
    );
    let mut p99_by_policy = std::collections::HashMap::new();
    for (policy, name) in [
        (RoutePolicy::RoundRobin, "rr"),
        (RoutePolicy::PowerOfTwoChoices, "p2c"),
        (RoutePolicy::Broadcast, "bcast"),
    ] {
        let svc = build(&w.data, R, policy, shared, cache, Some(BOUND), name);
        let rep = svc.serve(
            &queries,
            Load::Open {
                rate_qps: rate,
                seed: 13,
            },
        );
        let lat = rep.latency();
        let wait = rep.queue_wait();
        let row = RoutingRow {
            policy: name.to_string(),
            offered_qps: rate,
            goodput_qps: rep.goodput(),
            shed_rate: rep.shed_rate(),
            acc_p50_ms: lat.p50 * 1e3,
            acc_p99_ms: lat.p99 * 1e3,
            wait_p99_ms: wait.p99 * 1e3,
            replica_imbalance: rep.replica_imbalance(),
        };
        println!(
            "{:>10} {:>10.0} {:>6.1}% {:>10} {:>10} {:>10} {:>10.2}",
            row.policy,
            row.goodput_qps,
            row.shed_rate * 100.0,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p99),
            report::fmt_time(wait.p99),
            row.replica_imbalance,
        );
        report::record("serve_replicas_routing", &row);
        artifact.push("routing", &row);
        p99_by_policy.insert(name, (lat.p99, wait.p99));
        svc.shards().cleanup();
    }
    let ((p2c, p2c_wait), (rr, rr_wait)) = (p99_by_policy["p2c"], p99_by_policy["rr"]);
    println!(
        "\npower-of-two vs round-robin: accepted p99 {:.2} ms vs {:.2} ms ({:+.0}%), \
         queue-wait p99 {:.2} ms vs {:.2} ms ({:+.0}%)",
        p2c * 1e3,
        rr * 1e3,
        (p2c / rr - 1.0) * 100.0,
        p2c_wait * 1e3,
        rr_wait * 1e3,
        (p2c_wait / rr_wait - 1.0) * 100.0
    );
    // The end-to-end p99 includes the intrinsic service time of
    // cache-miss-heavy queries (identical under every policy), so the
    // routing win shows there with run-to-run noise — small tolerance.
    // The queue-wait p99 is the component routing actually controls:
    // load-aware dispatch must win it outright.
    assert!(
        p2c <= rr * 1.05,
        "load-aware routing lost to round-robin: p2c p99 {p2c:.4}s vs rr {rr:.4}s"
    );
    assert!(
        p2c_wait < rr_wait,
        "p2c queue-wait p99 {p2c_wait:.4}s did not beat round-robin {rr_wait:.4}s"
    );

    // Part 3: replica-aware cache warming. A fresh (or unfenced)
    // replica starts with an empty block cache: under Zipf traffic its
    // first queries pay full miss chains that a seasoned sibling serves
    // from DRAM. With `cache_warm_blocks` set, session start pre-fills
    // a cold replica's cache with its warmest sibling's MRU blocks —
    // the cold-start p99 gap shrinks to near the steady state. Protocol
    // per variant: heat replica 0 alone (replica 1 fenced), then swap
    // the fence — replica 1 serves the same stream cold vs warmed.
    const WARM_QUERIES: usize = 300;
    let warm_queries = skewed_queries(&w.queries, WARM_QUERIES, 1.2, 9);
    println!("\nReplica cache warming (fresh replica takes over a heated sibling's traffic):");
    println!(
        "{:>8} {:>8} {:>7} {:>10} {:>10}",
        "variant", "warmed", "hit%", "p50", "p99"
    );
    let mut p99_by_variant = std::collections::HashMap::new();
    for (warm_budget, name) in [(0usize, "cold"), (cache, "warmed")] {
        let svc = build_warm(
            &w.data,
            2,
            RoutePolicy::PowerOfTwoChoices,
            DeviceSpec::SimPerWorker {
                profile: DeviceProfile::HDD,
                num_devices: 4,
            },
            cache,
            None,
            warm_budget,
            &format!("warm-{name}"),
        );
        // Heat replica 0's cache alone.
        for s in 0..NUM_SHARDS {
            svc.topology().fence(s, 1);
        }
        svc.serve(&warm_queries, Load::Closed { window: 32 });
        // Hand the traffic to replica 1: cold, or warmed at session
        // start from replica 0's cache.
        for s in 0..NUM_SHARDS {
            svc.topology().unfence(s, 1);
            svc.topology().fence(s, 0);
        }
        let rep = svc.serve(&warm_queries, Load::Closed { window: 32 });
        let lat = rep.latency();
        let row = WarmingRow {
            variant: name.to_string(),
            warmed_blocks: rep.device.cache_warmed,
            cache_hit_rate: rep.device.cache_hit_rate(),
            p50_ms: lat.p50 * 1e3,
            p99_ms: lat.p99 * 1e3,
        };
        println!(
            "{:>8} {:>8} {:>6.1}% {:>10} {:>10}",
            row.variant,
            row.warmed_blocks,
            row.cache_hit_rate * 100.0,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p99),
        );
        report::record("serve_replicas_warming", &row);
        artifact.push("warming", &row);
        if warm_budget > 0 {
            assert!(
                rep.device.cache_warmed > 0,
                "warming budget set but no blocks were copied"
            );
        }
        p99_by_variant.insert(name, lat.p99);
        svc.shards().cleanup();
    }
    let (cold, warmed) = (p99_by_variant["cold"], p99_by_variant["warmed"]);
    println!(
        "\ncold-start p99 {:.2} ms vs warmed {:.2} ms ({:+.0}%)",
        cold * 1e3,
        warmed * 1e3,
        (warmed / cold - 1.0) * 100.0
    );
    assert!(
        warmed < cold,
        "warming did not shrink the cold-start p99: warmed {warmed:.4}s vs cold {cold:.4}s"
    );

    // Part 4: end-to-end request tracing. Re-run the R=2 read workload
    // with full-sample tracing and a zero slow-query threshold (the
    // demo setting: *every* request qualifies, the log keeps the most
    // recent `slow_log_capacity`), then check the tracing invariant on
    // real traffic: each logged request's stage spans — route + queue
    // wait + per-shard service + merge — sum to its end-to-end latency.
    println!("\nSlow-query log (traced run; threshold 0 s, log capacity 16):");
    let shards = ShardSet::build(
        &w.data,
        &ShardBuildConfig {
            num_shards: NUM_SHARDS,
            seed: 99,
            dir: std::env::temp_dir()
                .join(format!("e2lsh-serve-replicas-{}-trace", std::process::id())),
            cache_blocks: 1 << 14,
            ..Default::default()
        },
        e2lsh_bench::prep::e2lsh_params,
    )
    .expect("shard build");
    let traced = ShardedService::new(
        shards,
        ServiceConfig {
            replicas_per_shard: 2,
            routing: RoutePolicy::PowerOfTwoChoices,
            workers_per_replica: 1,
            contexts_per_worker: 32,
            k: 1,
            s_override: None,
            device: DeviceSpec::SimPerWorker {
                profile: DeviceProfile::HDD,
                num_devices: 4,
            },
            trace_sample: 1.0,
            trace_capacity: 512,
            slow_query_threshold: 0.0,
            slow_log_capacity: 16,
            ..Default::default()
        },
    );
    let rep = traced.serve(&scale_queries, Load::Closed { window: 32 });
    assert!(
        !rep.slow_queries.is_empty(),
        "traced run produced no slow-query log"
    );
    for s in &rep.slow_queries {
        let stages = s.route() + s.queue_wait() + s.service() + s.merge();
        assert!(
            (stages - s.end_to_end()).abs() <= 1e-9,
            "stage spans do not sum to end-to-end: {stages:.9}s vs {:.9}s",
            s.end_to_end()
        );
        artifact.push(
            "slow_log",
            &SlowRow {
                e2e_ms: s.end_to_end() * 1e3,
                route_ms: s.route() * 1e3,
                wait_ms: s.queue_wait() * 1e3,
                service_ms: s.service() * 1e3,
                merge_ms: s.merge() * 1e3,
                n_io: s.total_io(),
            },
        );
    }
    for s in rep.slow_queries.iter().take(5) {
        println!("  {}", s.render());
    }
    println!(
        "  ({} requests logged; every span's stages sum to its end-to-end latency)",
        rep.slow_queries.len()
    );
    artifact.attach_service(e2lsh_service::report_json(&rep));
    traced.shards().cleanup();
    artifact.write();
}
