//! **Figure 16** — Query throughput vs thread count (1–32) for SRS,
//! E2LSHoS on cSSD×4 and E2LSHoS on XLFDD×12 (SIFT).
//!
//! Thread scaling follows the paper's model: CPU-side throughput scales
//! linearly with cores while the storage array caps total IOPS, so
//! `QPS(T) = min(T · QPS_1cpu, IOPS_total / N_IO)`. The single-thread
//! CPU-side rate and per-query I/O count are measured (SRS by real
//! execution, E2LSHoS on the virtual-time engine); the cap comes from the
//! device model.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::{measure_e2lshos, sweep_srs, StorageConfig};
use e2lsh_storage::device::sim::DeviceProfile;
use e2lsh_storage::device::Interface;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    threads: usize,
    srs_qps: f64,
    cssd4_qps: f64,
    xlfdd_qps: f64,
}

fn main() {
    report::banner(
        "fig16_multithreading",
        "Figure 16",
        "Query speed vs threads (SIFT, ratio-1.05 operating points).",
    );
    let w = workload(DatasetId::Sift);
    let srs_curve = sweep_srs(&w, 1);
    let srs_t = srs_curve.time_at_ratio(1.05);

    let cssd4 = StorageConfig {
        profile: DeviceProfile::CSSD,
        num_devices: 4,
        interface: Interface::IO_URING,
    };
    let xlfdd = StorageConfig {
        profile: DeviceProfile::XLFDD,
        num_devices: 12,
        interface: Interface::XLFDD,
    };
    let (p_cssd, rep_cssd) = measure_e2lshos(&w, 1, 0.7, 8.0, cssd4, None);
    let (p_xl, rep_xl) = measure_e2lshos(&w, 1, 0.7, 8.0, xlfdd, None);
    let nq = rep_cssd.outcomes.len() as f64;
    // Single-core CPU time per query (compute + submission overhead).
    let cpu_cssd = (rep_cssd.cpu_compute + rep_cssd.cpu_io) / nq;
    let cpu_xl = (rep_xl.cpu_compute + rep_xl.cpu_io) / nq;
    let cap_cssd = 4.0 * DeviceProfile::CSSD.max_kiops * 1e3 / p_cssd.n_io;
    let cap_xl = 12.0 * DeviceProfile::XLFDD.max_kiops * 1e3 / p_xl.n_io;

    println!(
        "{:>8} {:>12} {:>14} {:>14}",
        "threads", "SRS QPS", "cSSD×4 QPS", "XLFDD QPS"
    );
    for t in [1usize, 2, 4, 8, 16, 32] {
        let row = Row {
            threads: t,
            srs_qps: t as f64 / srs_t,
            cssd4_qps: (t as f64 / cpu_cssd).min(cap_cssd),
            xlfdd_qps: (t as f64 / cpu_xl).min(cap_xl),
        };
        println!(
            "{:>8} {:>12.0} {:>14.0} {:>14.0}",
            row.threads, row.srs_qps, row.cssd4_qps, row.xlfdd_qps
        );
        report::record("fig16_multithreading", &row);
    }
    println!("\npaper shape: all methods scale linearly; E2LSHoS on cSSDs plateaus");
    println!("at the storage IOPS cap while XLFDD stays ~an order above SRS.");
}
