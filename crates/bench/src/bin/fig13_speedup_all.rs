//! **Figure 13** — Speedups over SRS at overall ratio 1.05, for every
//! dataset, for k = 1 and k = 100: in-memory E2LSH and E2LSHoS on cSSD×4
//! with io_uring / SPDK, and XLFDD×12.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::{e2lsh_params_gamma, gamma_schedule, workload};
use e2lsh_bench::report;
use e2lsh_bench::sweep::{
    measure_e2lsh_mem, measure_e2lshos, sweep_srs, Curve, OperatingPoint, StorageConfig,
};
use e2lsh_core::index::MemIndex;
use e2lsh_storage::device::sim::DeviceProfile;
use e2lsh_storage::device::Interface;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    k: usize,
    method: &'static str,
    query_us: f64,
    speedup_over_srs: f64,
}

fn main() {
    let target = 1.05;
    report::banner(
        "fig13_speedup_all",
        "Figure 13",
        "Speedups over SRS at overall ratio 1.05 for k = 1 and k = 100.",
    );
    let ks = [1usize, 100];
    let storages = [
        (
            "E2LSHoS(io_uring)",
            StorageConfig {
                profile: DeviceProfile::CSSD,
                num_devices: 4,
                interface: Interface::IO_URING,
            },
        ),
        (
            "E2LSHoS(SPDK)",
            StorageConfig {
                profile: DeviceProfile::CSSD,
                num_devices: 4,
                interface: Interface::SPDK,
            },
        ),
        (
            "E2LSHoS(XLFDD)",
            StorageConfig {
                profile: DeviceProfile::XLFDD,
                num_devices: 12,
                interface: Interface::XLFDD,
            },
        ),
    ];
    println!(
        "{:<8} {:>4} {:<18} {:>12} {:>10}",
        "Dataset", "k", "Method", "time", "vs SRS"
    );
    for id in DatasetId::ALL {
        let w = workload(id);
        // One in-memory index build per γ serves both k values.
        let mut mem_curves = [Curve::default(), Curve::default()];
        for &(gamma, s_mult) in &gamma_schedule() {
            let params = e2lsh_params_gamma(&w.data, gamma);
            let index = MemIndex::build(&w.data, &params, 7);
            for (ki, &k) in ks.iter().enumerate() {
                let (point, _) = measure_e2lsh_mem(&index, &w, k, s_mult, false);
                mem_curves[ki].points.push(OperatingPoint {
                    knob: gamma as f64,
                    ..point
                });
            }
        }
        for (ki, &k) in ks.iter().enumerate() {
            let srs = sweep_srs(&w, k);
            let t_srs = srs.time_at_ratio(target);
            let emit = |method: &'static str, t: f64| {
                let row = Row {
                    dataset: id.name(),
                    k,
                    method,
                    query_us: t * 1e6,
                    speedup_over_srs: t_srs / t,
                };
                println!(
                    "{:<8} {:>4} {:<18} {:>12} {:>9.2}x",
                    row.dataset,
                    row.k,
                    row.method,
                    report::fmt_time(t),
                    row.speedup_over_srs
                );
                report::record("fig13_speedup_all", &row);
            };
            emit("E2LSH(in-memory)", mem_curves[ki].time_at_ratio(target));
            for (name, storage) in &storages {
                let mut curve = Curve::default();
                for &(gamma, s_mult) in &gamma_schedule() {
                    let (point, _) = measure_e2lshos(&w, k, gamma, s_mult, *storage, None);
                    curve.points.push(point);
                }
                emit(name, curve.time_at_ratio(target));
            }
        }
    }
    println!("\npaper shape: E2LSHoS consistently beats SRS (most at BIGANN);");
    println!("XLFDD approaches / exceeds in-memory; io_uring < SPDK < XLFDD.");
}
