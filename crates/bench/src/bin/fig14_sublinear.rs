//! **Figure 14** — Query time vs database size `n` (BIGANN subsets) at
//! overall ratio 1.05: SRS grows linearly; E2LSHoS (XLFDD) grows
//! sublinearly; in-memory E2LSH follows the same curve but stops at the
//! DRAM limit; in-memory E2LSH with a very small ρ reaches the largest n
//! but is far slower.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::{workload_sized, C, GAMMA, W};
use e2lsh_bench::report;
use e2lsh_bench::sweep::{
    measure_e2lsh_mem, measure_e2lshos, sweep_srs, Curve, OperatingPoint, StorageConfig,
};
use e2lsh_core::index::MemIndex;
use e2lsh_core::params::E2lshParams;
use e2lsh_storage::device::sim::DeviceProfile;
use e2lsh_storage::device::Interface;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    n: usize,
    method: &'static str,
    query_us: f64,
    ratio: f64,
}

fn main() {
    let target = 1.05;
    report::banner(
        "fig14_sublinear",
        "Figure 14",
        "Query time vs database size (BIGANN subsets) at overall ratio 1.05.",
    );
    // Paper: up to 10^9; scaled default sweeps up to 400k (override the
    // largest size with E2LSH_FIG14_MAX).
    let max_n: usize = std::env::var("E2LSH_FIG14_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400_000);
    let mut sizes = vec![50_000usize, 100_000, 200_000, 400_000];
    sizes.retain(|&n| n <= max_n);
    // The analog of the paper's 768 GB DRAM limit: in-memory E2LSH stops
    // at half the sweep.
    let dram_limit = sizes[sizes.len() / 2];
    let storage = StorageConfig {
        profile: DeviceProfile::XLFDD,
        num_devices: 12,
        interface: Interface::XLFDD,
    };
    println!("{:>9} {:<26} {:>12} {:>8}", "n", "Method", "time", "ratio");
    let schedule = [(GAMMA, 2.0f64), (0.7f32, 8.0)];
    for &n in &sizes {
        let w = workload_sized(DatasetId::Bigann, n, 50);
        let emit = |method: &'static str, t: f64, ratio: f64| {
            println!(
                "{:>9} {:<26} {:>12} {:>8.4}",
                n,
                method,
                report::fmt_time(t),
                ratio
            );
            report::record(
                "fig14_sublinear",
                &Row {
                    n,
                    method,
                    query_us: t * 1e6,
                    ratio,
                },
            );
        };
        // SRS (linear time).
        let srs = sweep_srs(&w, 1);
        let p = srs.point_at_ratio(target);
        emit("SRS", p.query_time, p.ratio);
        // E2LSHoS on XLFDD (sublinear).
        let mut curve = Curve::default();
        for &(gamma, s_mult) in &schedule {
            let (point, _) = measure_e2lshos(&w, 1, gamma, s_mult, storage, None);
            curve.points.push(point);
        }
        let p = curve.point_at_ratio(target);
        emit("E2LSHoS(XLFDD)", p.query_time, p.ratio);
        // In-memory E2LSH with the same parameters (up to the DRAM limit).
        if n <= dram_limit {
            let mut curve = Curve::default();
            for &(gamma, s_mult) in &schedule {
                let params = crate_params(&w.data, gamma, RHO_NORMAL);
                let index = MemIndex::build(&w.data, &params, 7);
                let (point, _) = measure_e2lsh_mem(&index, &w, 1, s_mult, false);
                curve.points.push(OperatingPoint {
                    knob: gamma as f64,
                    ..point
                });
            }
            let p = curve.point_at_ratio(target);
            emit("E2LSH(in-memory)", p.query_time, p.ratio);
        } else {
            println!(
                "{:>9} {:<26} {:>12} {:>8}",
                n, "E2LSH(in-memory)", "— (DRAM limit)", "—"
            );
        }
        // In-memory E2LSH with an extremely small ρ (tiny index, reaches
        // every n, but needs far more candidate checking).
        let params = crate_params(&w.data, 0.7, RHO_SMALL);
        let index = MemIndex::build(&w.data, &params, 7);
        let (point, _) = measure_e2lsh_mem(&index, &w, 1, 64.0, false);
        emit("E2LSH(in-memory, small ρ)", point.query_time, point.ratio);
    }
    println!("\npaper shape: SRS linear; E2LSHoS sublinear; in-memory E2LSH on the");
    println!("same curve until its DRAM limit; small-ρ in-memory far slower.");
}

const RHO_NORMAL: f64 = e2lsh_bench::prep::RHO_TARGET;
/// The paper's Figure 14 uses ρ = 0.09 for the small-index in-memory run.
const RHO_SMALL: f64 = 0.09;

fn crate_params(data: &e2lsh_core::Dataset, gamma: f32, rho: f64) -> E2lshParams {
    E2lshParams::derive_practical(
        data.len(),
        C,
        W,
        gamma,
        rho,
        data.max_abs_coord(),
        data.dim(),
    )
}
