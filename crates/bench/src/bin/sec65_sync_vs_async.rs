//! **Section 6.5** — Comparison with synchronous I/Os: the paper runs
//! in-memory E2LSH over memory-mapped storage (page cache, blocking
//! faults) and finds it ~20× slower than asynchronous E2LSHoS on the same
//! cSSD×4 array, because a queue depth of 1 cannot hide storage latency.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::{ensure_disk_index, workload};
use e2lsh_bench::report;
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::query::{run_queries, EngineConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    mode: &'static str,
    query_us: f64,
    mean_queue_depth_proxy: f64,
    slowdown: f64,
}

fn main() {
    report::banner(
        "sec65_sync_vs_async",
        "Section 6.5",
        "Synchronous (mmap-style, QD 1) vs asynchronous E2LSHoS on cSSD×4 (SIFT).",
    );
    let w = workload(DatasetId::Sift);
    let path = ensure_disk_index(&w, 0.7);

    let run = |cfg: &EngineConfig| {
        let mut dev = SimStorage::new(DeviceProfile::CSSD, 4, Backing::open(&path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        run_queries(&index, &w.data, &w.queries, cfg, &mut dev)
    };

    let mut async_cfg = EngineConfig::simulated(e2lsh_storage::device::Interface::IO_URING, 1);
    async_cfg.s_override = Some(8 * 36);
    let async_rep = run(&async_cfg);

    let mut sync_cfg = EngineConfig::synchronous(1);
    sync_cfg.s_override = Some(8 * 36);
    let sync_rep = run(&sync_cfg);

    let t_async = async_rep.mean_query_time();
    let t_sync = sync_rep.mean_query_time();
    println!("{:<14} {:>12} {:>12}", "Mode", "query time", "slowdown");
    println!(
        "{:<14} {:>12} {:>12}",
        "asynchronous",
        report::fmt_time(t_async),
        "1.0x"
    );
    println!(
        "{:<14} {:>12} {:>11.1}x",
        "synchronous",
        report::fmt_time(t_sync),
        t_sync / t_async
    );
    report::record(
        "sec65_sync_vs_async",
        &Row {
            mode: "async",
            query_us: t_async * 1e6,
            mean_queue_depth_proxy: async_rep.device.completed as f64,
            slowdown: 1.0,
        },
    );
    report::record(
        "sec65_sync_vs_async",
        &Row {
            mode: "sync",
            query_us: t_sync * 1e6,
            mean_queue_depth_proxy: sync_rep.device.completed as f64,
            slowdown: t_sync / t_async,
        },
    );
    println!("\npaper: the synchronous implementation is 19.7× slower (93% page-cache");
    println!("miss rate); the asynchronous engine hides storage latency entirely.");
}
