//! **Figure 3** — Average number of I/Os per query vs overall ratio for
//! block sizes B ∈ {128 B, 512 B, 4 KiB, ∞} (SIFT).
//!
//! Uses the paper's accounting: 4-byte object entries, so a block of `B`
//! bytes returns `B/4` objects per I/O; each non-empty bucket costs one
//! hash-table read plus `⌈examined/(B/4)⌉` bucket reads.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::sweep_e2lsh_mem;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    gamma: f64,
    ratio: f64,
    io_b128: f64,
    io_b512: f64,
    io_b4k: f64,
    io_inf: f64,
}

fn main() {
    report::banner(
        "fig3_io_vs_accuracy",
        "Figure 3",
        "I/Os per query vs accuracy for varying block size B (SIFT, k = 1).",
    );
    let w = workload(DatasetId::Sift);
    let sweep = sweep_e2lsh_mem(&w, 1, true);
    let nq = w.queries.len() as f64;
    println!(
        "{:>6} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "gamma", "ratio", "B=128", "B=512", "B=4K", "B=inf"
    );
    for (point, stats) in sweep.curve.points.iter().zip(&sweep.stats) {
        let row = Row {
            gamma: point.knob,
            ratio: point.ratio,
            io_b128: stats.n_io_block(128 / 4) as f64 / nq,
            io_b512: stats.n_io_block(512 / 4) as f64 / nq,
            io_b4k: stats.n_io_block(4096 / 4) as f64 / nq,
            io_inf: stats.n_io_inf() as f64 / nq,
        };
        println!(
            "{:>6.2} {:>8.4} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            row.gamma, row.ratio, row.io_b128, row.io_b512, row.io_b4k, row.io_inf
        );
        report::record("fig3_io_vs_accuracy", &row);
    }
    println!("\npaper shape: I/O count grows toward higher accuracy (left) and");
    println!("with smaller blocks; B = 512 B stays close to the B = ∞ floor.");
}
