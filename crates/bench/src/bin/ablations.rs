//! **Ablations** (DESIGN.md §5) — the E2LSHoS design choices the paper
//! calls out, each toggled in isolation on SIFT:
//!
//! * occupancy filter on/off (I/Os for empty buckets);
//! * context interleaving depth (queue depth vs throughput);
//! * fingerprint width `v − u` (false-collision distance checks);
//! * candidate budget `S` (γ fixed).

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::{ensure_disk_index, workload};
use e2lsh_bench::report;
use e2lsh_storage::build::{build_index, BuildConfig};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::Interface;
use e2lsh_storage::index::StorageIndex;
use e2lsh_storage::query::{run_queries, EngineConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ablation: String,
    query_us: f64,
    n_io: f64,
    qps: f64,
    extra: f64,
}

fn main() {
    report::banner(
        "ablations",
        "Section 5 design choices",
        "Each design choice toggled in isolation (SIFT, cSSD×4, io_uring, γ = 0.7).",
    );
    let w = workload(DatasetId::Sift);
    let path = ensure_disk_index(&w, 0.7);
    let gamma_s = 8 * 36; // γ=0.7 budget used elsewhere

    let emit = |name: String, cfg: &EngineConfig, extra: f64| {
        let mut dev = SimStorage::new(DeviceProfile::CSSD, 4, Backing::open(&path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let rep = run_queries(&index, &w.data, &w.queries, cfg, &mut dev);
        let fp_rejects: u64 = rep.outcomes.iter().map(|o| o.fp_rejects as u64).sum();
        println!(
            "{:<34} {:>10.1} µs {:>8.1} I/O {:>9.0} qps {:>12.0}",
            name,
            rep.mean_query_time() * 1e6,
            rep.mean_n_io(),
            rep.qps(),
            if extra < 0.0 {
                fp_rejects as f64 / rep.outcomes.len() as f64
            } else {
                extra
            }
        );
        report::record(
            "ablations",
            &Row {
                ablation: name,
                query_us: rep.mean_query_time() * 1e6,
                n_io: rep.mean_n_io(),
                qps: rep.qps(),
                extra,
            },
        );
    };

    println!(
        "{:<34} {:>13} {:>12} {:>13} {:>12}",
        "Ablation", "query time", "N_IO", "QPS", "extra"
    );
    // 1. Occupancy filter.
    let mut cfg = EngineConfig::simulated(Interface::IO_URING, 1);
    cfg.s_override = Some(gamma_s);
    emit("filter: on (default)".into(), &cfg, -1.0);
    let mut off = cfg.clone();
    off.use_occupancy_filter = false;
    emit("filter: off".into(), &off, -1.0);

    // 2. Context interleaving depth.
    for contexts in [1usize, 4, 16, 64, 256] {
        let mut c = cfg.clone();
        c.contexts = contexts;
        emit(format!("contexts: {contexts}"), &c, contexts as f64);
    }

    // 3. Candidate budget S.
    for mult in [2usize, 8, 32] {
        let mut c = cfg.clone();
        c.s_override = Some(mult * 36);
        emit(format!("budget S = {mult}L"), &c, mult as f64);
    }

    // 4. Fingerprint width: rebuild with a narrow filter/fingerprint
    //    (u close to 32 leaves few fingerprint bits).
    for u in [10u32, 14, 18] {
        let p = e2lsh_bench::prep::e2lsh_params_gamma(&w.data, 0.7);
        let path2 = e2lsh_bench::prep::index_cache_dir().join(format!("ablate-u{u}.idx"));
        if !path2.exists() {
            build_index(
                &w.data,
                &p,
                &BuildConfig {
                    u_bits: Some(u),
                    ..Default::default()
                },
                &path2,
            )
            .unwrap();
        }
        let mut dev = SimStorage::new(DeviceProfile::CSSD, 4, Backing::open(&path2).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let rep = run_queries(&index, &w.data, &w.queries, &cfg, &mut dev);
        let fp_rejects: u64 = rep.outcomes.iter().map(|o| o.fp_rejects as u64).sum();
        println!(
            "{:<34} {:>10.1} µs {:>8.1} I/O {:>9.0} qps {:>9.0} fp-rej",
            format!("table bits u = {u} (fp = {} bits)", 32 - u),
            rep.mean_query_time() * 1e6,
            rep.mean_n_io(),
            rep.qps(),
            fp_rejects as f64 / rep.outcomes.len() as f64
        );
    }
}
