//! **Table 6** — Index size and runtime memory usage: E2LSHoS keeps a
//! large index on storage but only small metadata in DRAM, so its memory
//! usage (database + index metadata) is comparable to SRS.

use ann_baselines::srs::{Srs, SrsConfig};
use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::{ensure_disk_index, workload};
use e2lsh_bench::report;
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::index::StorageIndex;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    e2lshos_storage_bytes: u64,
    e2lshos_mem_bytes: u64,
    e2lshos_index_mem_bytes: u64,
    srs_mem_bytes: u64,
    srs_index_bytes: u64,
}

fn main() {
    report::banner(
        "table6_index_sizes",
        "Table 6",
        "Index size on storage and runtime memory usage (database resident in DRAM for all).",
    );
    println!(
        "{:<8} {:>14} {:>14} {:>13} {:>14} {:>13}",
        "Dataset", "oS storage", "oS mem", "(oS idx mem)", "SRS mem", "(SRS idx)"
    );
    for id in DatasetId::ALL {
        let w = workload(id);
        let path = ensure_disk_index(&w, 1.0);
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::open(&path).unwrap());
        let index = StorageIndex::open(&mut dev).unwrap();
        let srs = Srs::build(&w.data, SrsConfig::default());
        let db = w.data.nbytes() as u64;
        let row = Row {
            dataset: id.name(),
            e2lshos_storage_bytes: index.storage_bytes(),
            e2lshos_mem_bytes: db + index.mem_bytes() as u64,
            e2lshos_index_mem_bytes: index.mem_bytes() as u64,
            srs_mem_bytes: db + srs.index_bytes() as u64,
            srs_index_bytes: srs.index_bytes() as u64,
        };
        println!(
            "{:<8} {:>14} {:>14} {:>13} {:>14} {:>13}",
            row.dataset,
            report::fmt_bytes(row.e2lshos_storage_bytes),
            report::fmt_bytes(row.e2lshos_mem_bytes),
            report::fmt_bytes(row.e2lshos_index_mem_bytes),
            report::fmt_bytes(row.srs_mem_bytes),
            report::fmt_bytes(row.srs_index_bytes),
        );
        report::record("table6_index_sizes", &row);
    }
    println!("\npaper shape: the on-storage index dwarfs everything; E2LSHoS DRAM");
    println!("usage (database + megabytes of metadata) is comparable to SRS.");
}
