//! **Artifact schema check** — validates every `results/BENCH_*.json`
//! emitted by the serve_* bench bins against the export schema: the
//! file must parse as JSON and carry the required top-level keys
//! (`schema_version`, `bench`, `rows`, `service`) with the expected
//! shapes. CI runs this after the bench bins; it exits non-zero on the
//! first violation so a schema drift fails the job instead of silently
//! producing unreadable artifacts.
//!
//! Usage: `cargo run --release --bin schema_check` (optionally with a
//! results directory argument; defaults to `results/`).

use e2lsh_service::SCHEMA_VERSION;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn check_artifact(path: &Path) -> Result<usize, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let v = serde_json::from_str(&doc).map_err(|e| format!("does not parse: {e:?}"))?;
    for key in ["schema_version", "bench", "rows", "service"] {
        if v.get(key).is_none() {
            return Err(format!("missing required top-level key `{key}`"));
        }
    }
    let version = v
        .get("schema_version")
        .unwrap()
        .as_f64()
        .ok_or("schema_version is not a number")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    if v.get("bench").unwrap().as_str().is_none() {
        return Err("`bench` is not a string".to_string());
    }
    let rows = v
        .get("rows")
        .unwrap()
        .as_array()
        .ok_or("`rows` is not an array")?;
    for (i, row) in rows.iter().enumerate() {
        if row.get("section").and_then(|s| s.as_str()).is_none() {
            return Err(format!("rows[{i}] missing string `section`"));
        }
        if row.get("data").and_then(|d| d.as_object()).is_none() {
            return Err(format!("rows[{i}] missing object `data`"));
        }
    }
    // `service` is null or a full report_json document with its own
    // required keys (mirrors the export tests in e2lsh_service). The
    // net-tier bench must attach one — its whole point is the v3 net
    // counters.
    let service = v.get("service").unwrap();
    let is_net_bench = path
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.contains("serve_swarm"));
    if is_net_bench && service.is_null() {
        return Err("serve_swarm artifact has no service report".to_string());
    }
    if !service.is_null() {
        for key in [
            "schema_version",
            "counters",
            "gauges",
            "histograms",
            "slow_queries",
        ] {
            if service.get(key).is_none() {
                return Err(format!("service report missing key `{key}`"));
            }
        }
        // Schema v2: cache-policy counters must be present (even when 0
        // under the default LRU policy).
        let counters = service
            .get("counters")
            .unwrap()
            .as_object()
            .ok_or("service `counters` is not an object")?;
        for key in [
            "cache_admission_rejected",
            "cache_table_hits",
            "cache_table_misses",
            "cache_bucket_hits",
            "cache_bucket_misses",
            "coalesced_reads",
        ] {
            if !counters.iter().any(|(k, _)| k == key) {
                return Err(format!("service counters missing v2 key `{key}`"));
            }
        }
        // Schema v3: net-tier counters must be present (zero for
        // in-process-only runs; live for BENCH_serve_swarm.json).
        for key in [
            "connections_accepted",
            "connections_dropped",
            "connections_peak",
            "frames_in",
            "frames_out",
            "frame_decode_errors",
            "tickets_orphaned",
        ] {
            if !counters.iter().any(|(k, _)| k == key) {
                return Err(format!("service counters missing v3 key `{key}`"));
            }
        }
    }
    Ok(rows.len())
}

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let mut artifacts: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("schema_check: cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    artifacts.sort();
    if artifacts.is_empty() {
        eprintln!(
            "schema_check: no BENCH_*.json artifacts under {} — run the serve_* bins first",
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &artifacts {
        match check_artifact(path) {
            Ok(rows) => println!("ok   {} ({rows} rows)", path.display()),
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("schema_check: {} artifact(s) valid", artifacts.len());
        ExitCode::SUCCESS
    }
}
