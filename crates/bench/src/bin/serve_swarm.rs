//! **Connection swarm** — the net tier under hundreds of concurrent
//! TCP connections.
//!
//! PR 10 puts a real protocol in front of the session API; this bench
//! is its proof under hostile serving conditions, on one loopback
//! [`NetServer`] over one session:
//!
//! 1. **swarm + churn** — 210 simultaneous connections (held open
//!    together, asserted via `connections_peak ≥ 200`), each pipelining
//!    queries, with 60 of them disconnecting and reconnecting mid-run;
//! 2. **disconnect mid-flight** — connections die with dozens of
//!    queries outstanding; every ticket must still resolve (the
//!    session registry returns to **zero** — asserted), the responses
//!    are counted as orphaned (`tickets_orphaned > 0` — asserted), and
//!    a fresh connection serves correctly afterwards;
//! 3. **slow reader** — a connection that stops reading while dozens
//!    of its responses are in flight must not stall the collector or
//!    any other connection;
//! 4. **tenant isolation** — one hostile tenant floods far past its
//!    per-tenant in-flight budget while a well-behaved tenant runs its
//!    normal closed loop: the flood sheds (typed error frames with
//!    `retry_after`), and the victim's p99 stays within 1.5× its
//!    isolated baseline (asserted).
//!
//! The artifact attaches the final schema-v3 service report, so
//! `schema_check` validates the new net counters
//! (`connections_accepted/dropped`, `frames_in/out`,
//! `frame_decode_errors`, `tickets_orphaned`) end to end.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload_sized;
use e2lsh_bench::report;
use e2lsh_service::{
    percentile, DeviceSpec, NetClient, NetServer, NetServerConfig, OpStatus, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const NUM_SHARDS: usize = 2;
const N: usize = 10_000;
const DIM_QUERIES: usize = 400;

/// Swarm scenario: connections held open simultaneously (the peak
/// floor the acceptance criterion demands is 200).
const SWARM_CONNS: usize = 210;
/// Of those, how many disconnect and reconnect mid-run (churn).
const CHURN_CONNS: usize = 60;
const SWARM_QUERIES: usize = 12;
const CHURN_QUERIES: usize = 6;

/// Disconnect scenario.
const KILL_CONNS: usize = 8;
const KILL_INFLIGHT: usize = 48;

/// Slow-reader scenario.
const SLOW_PIPELINE: usize = 48;
const SLOW_STALL_MS: u64 = 300;
const VICTIM_QUERIES: usize = 40;

/// Tenant isolation scenario: runs on its **own** listener with a
/// tight per-tenant budget. Isolation is an admission property — the
/// budget must keep the admitted flood small against device capacity,
/// or the victim queues behind it no matter how fairly it was
/// admitted. The well-behaved tenant (2 sequential connections) fits
/// its budget exactly and is never shed.
const PER_TENANT_INFLIGHT: usize = 2;
const GOOD_TENANT: u16 = 2;
const EVIL_TENANT: u16 = 1;
const GOOD_CONNS: usize = 2;
const GOOD_QUERIES: usize = 300;
const EVIL_CONNS: usize = 3;
const EVIL_PIPELINE: usize = 16;
/// Pause between flood rounds: the flood must overwhelm its *budget*
/// (it offers 96× its cap), not the benchmark host's CPU — an
/// unpaced shed-retry spin would starve every thread on a small
/// machine and measure the scheduler instead of the server.
const EVIL_PAUSE_MS: u64 = 25;

#[derive(Serialize)]
struct SwarmRow {
    connections: usize,
    churned: usize,
    connections_peak: u64,
    queries_ok: usize,
    queries_shed: usize,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct DisconnectRow {
    killed_connections: usize,
    inflight_per_connection: usize,
    tickets_orphaned_delta: u64,
    outstanding_after_quiesce: usize,
    post_kill_query_ok: bool,
}

#[derive(Serialize)]
struct SlowReaderRow {
    pipelined: usize,
    stall_ms: u64,
    victim_queries: usize,
    victim_p99_ms: f64,
    victim_done_before_stall_end: bool,
    slow_replies_received: usize,
}

#[derive(Serialize)]
struct TenantRow {
    tenant: u16,
    phase: &'static str,
    queries: usize,
    ok: usize,
    shed: usize,
    shed_rate: f64,
    goodput_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct NetSummaryRow {
    connections_accepted: u64,
    connections_dropped: u64,
    connections_peak: u64,
    frames_in: u64,
    frames_out: u64,
    frame_decode_errors: u64,
    tickets_orphaned: u64,
    victim_p99_ratio: f64,
}

/// One tenant-side closed-loop run: sequential queries on one
/// connection, per-query wall latencies out.
fn run_closed_loop(
    addr: std::net::SocketAddr,
    tenant: u16,
    queries: &[Vec<f32>],
) -> (usize, usize, Vec<f64>) {
    let mut client = NetClient::connect(addr, tenant).expect("connect");
    let (mut ok, mut shed) = (0, 0);
    let mut lats = Vec::with_capacity(queries.len());
    for q in queries {
        let t0 = Instant::now();
        let reply = client.query(q).expect("query round trip");
        match reply.status {
            OpStatus::Ok => {
                ok += 1;
                lats.push(t0.elapsed().as_secs_f64());
            }
            OpStatus::Shed => shed += 1,
        }
    }
    (ok, shed, lats)
}

fn query_set(src: &e2lsh_core::dataset::Dataset, count: usize, offset: usize) -> Vec<Vec<f32>> {
    (0..count)
        .map(|i| src.point((offset + i) % src.len()).to_vec())
        .collect()
}

fn main() {
    report::banner(
        "serve_swarm",
        "beyond the paper: network serving tier",
        "One loopback NetServer over a 2-shard session (SIFT 10k, \
         cSSD×2 per shard), driven by hundreds of concurrent TCP \
         connections: swarm with churn (peak >= 200 asserted), \
         disconnect-mid-flight (zero leaked registry entries and \
         tickets_orphaned > 0 asserted), a slow reader that must not \
         stall anyone else, and a flooding tenant shed by its own \
         budget while a well-behaved tenant's p99 holds within 1.5x \
         of its isolated baseline (asserted).",
    );
    let w = workload_sized(DatasetId::Sift, N, DIM_QUERIES);
    let mut artifact = report::BenchArtifact::new("serve_swarm");

    let shards = ShardSet::build(
        &w.data,
        &ShardBuildConfig {
            num_shards: NUM_SHARDS,
            seed: 99,
            dir: std::env::temp_dir().join(format!("e2lsh-serve-swarm-{}", std::process::id())),
            cache_blocks: 1 << 15,
            ..Default::default()
        },
        e2lsh_bench::prep::e2lsh_params,
    )
    .expect("shard build");
    let svc = ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 4,
            contexts_per_worker: 32,
            k: 10,
            s_override: Some(1_000_000),
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::CSSD,
                num_devices: 2,
            },
            ..Default::default()
        },
    );
    let session = svc.start();
    // Scenarios 1–3 run uncapped (they measure connection mechanics,
    // not admission); the isolation scenario gets its own listener
    // with the tight per-tenant budget below.
    let server = NetServer::spawn(&session, NetServerConfig::default()).expect("bind net server");
    let addr = server.addr();
    println!("serving on {addr}\n");

    // ------------------------------------------------ 1. swarm + churn
    // Every connection gets its own tenant id so the per-tenant budget
    // never binds here — this scenario measures connection scale, not
    // admission.
    let all_connected = Arc::new(Barrier::new(SWARM_CONNS));
    let all_pinged = Arc::new(Barrier::new(SWARM_CONNS));
    let lat_pool: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let shed_count = Arc::new(AtomicU64::new(0));
    let queries = Arc::new(query_set(&w.queries, DIM_QUERIES, 0));
    let handles: Vec<_> = (0..SWARM_CONNS)
        .map(|i| {
            let all_connected = Arc::clone(&all_connected);
            let all_pinged = Arc::clone(&all_pinged);
            let lat_pool = Arc::clone(&lat_pool);
            let shed_count = Arc::clone(&shed_count);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let tenant = 1000 + i as u16;
                let mut client = NetClient::connect(addr, tenant).expect("swarm connect");
                all_connected.wait();
                // A served ping proves the *server* accepted this
                // connection; after the second barrier all 210 are
                // provably live at once — the peak the criterion wants.
                client.ping().expect("swarm ping");
                all_pinged.wait();
                let mut lats = Vec::with_capacity(SWARM_QUERIES + CHURN_QUERIES);
                let mut shed = 0u64;
                let mut run = |client: &mut NetClient, n: usize, off: usize| {
                    for j in 0..n {
                        let q = &queries[(i * 7 + off + j) % queries.len()];
                        let t0 = Instant::now();
                        match client.query(q).expect("swarm query").status {
                            OpStatus::Ok => lats.push(t0.elapsed().as_secs_f64()),
                            OpStatus::Shed => shed += 1,
                        }
                    }
                };
                run(&mut client, SWARM_QUERIES, 0);
                if i < CHURN_CONNS {
                    // Churn: clean disconnect, fresh connection, keep
                    // serving.
                    drop(client);
                    let mut again = NetClient::connect(addr, tenant).expect("churn reconnect");
                    run(&mut again, CHURN_QUERIES, SWARM_QUERIES);
                }
                lat_pool.lock().unwrap().extend(lats);
                shed_count.fetch_add(shed, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("swarm thread");
    }
    let swarm_net = server.metrics().net;
    let lats = lat_pool.lock().unwrap().clone();
    let row = SwarmRow {
        connections: SWARM_CONNS,
        churned: CHURN_CONNS,
        connections_peak: swarm_net.connections_peak,
        queries_ok: lats.len(),
        queries_shed: shed_count.load(Ordering::Relaxed) as usize,
        p50_ms: percentile(&lats, 50.0) * 1e3,
        p99_ms: percentile(&lats, 99.0) * 1e3,
    };
    println!(
        "swarm: {} conns ({} churned), peak {}, {} ok / {} shed, p50 {:.3}ms p99 {:.3}ms",
        row.connections,
        row.churned,
        row.connections_peak,
        row.queries_ok,
        row.queries_shed,
        row.p50_ms,
        row.p99_ms
    );
    assert!(
        row.connections_peak >= 200,
        "swarm peaked at {} concurrent connections (< 200)",
        row.connections_peak
    );
    assert_eq!(
        row.queries_ok + row.queries_shed,
        SWARM_CONNS * SWARM_QUERIES + CHURN_CONNS * CHURN_QUERIES,
        "every swarm query must resolve one way or the other"
    );
    report::record("serve_swarm", &row);
    artifact.push("swarm", &row);

    // ----------------------------------------- 2. disconnect mid-flight
    let orphaned_before = server.metrics().net.tickets_orphaned;
    let kill_handles: Vec<_> = (0..KILL_CONNS)
        .map(|i| {
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr, 2000 + i as u16).expect("kill connect");
                for j in 0..KILL_INFLIGHT {
                    client
                        .send_query(&queries[(i + j) % queries.len()])
                        .expect("pipeline");
                }
                // Drop with every response still owed: the socket
                // closes, the server's reader dies, and the pump must
                // orphan — not leak — the outstanding tickets.
            })
        })
        .collect();
    for h in kill_handles {
        h.join().expect("kill thread");
    }
    let quiesce_start = Instant::now();
    while session.outstanding_tickets() > 0 {
        assert!(
            quiesce_start.elapsed() < Duration::from_secs(30),
            "registry did not quiesce: {} tickets still outstanding",
            session.outstanding_tickets()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let orphaned_delta = server.metrics().net.tickets_orphaned - orphaned_before;
    // The proof the wreckage is contained: a fresh connection serves.
    let mut probe = NetClient::connect(addr, 2999).expect("post-kill connect");
    let reply = probe.query(&queries[0]).expect("post-kill query");
    let row = DisconnectRow {
        killed_connections: KILL_CONNS,
        inflight_per_connection: KILL_INFLIGHT,
        tickets_orphaned_delta: orphaned_delta,
        outstanding_after_quiesce: session.outstanding_tickets(),
        post_kill_query_ok: reply.status == OpStatus::Ok && !reply.neighbors.is_empty(),
    };
    drop(probe);
    println!(
        "disconnect: {} conns killed with {} in flight each -> {} orphaned, \
         {} outstanding after quiesce, next connection ok={}",
        row.killed_connections,
        row.inflight_per_connection,
        row.tickets_orphaned_delta,
        row.outstanding_after_quiesce,
        row.post_kill_query_ok
    );
    assert_eq!(
        row.outstanding_after_quiesce, 0,
        "disconnect-mid-flight leaked routing-table entries"
    );
    assert!(
        row.tickets_orphaned_delta > 0,
        "killing {KILL_CONNS} connections with {KILL_INFLIGHT} in flight orphaned nothing"
    );
    assert!(row.post_kill_query_ok, "service did not survive the kills");
    report::record("serve_swarm", &row);
    artifact.push("disconnect", &row);

    // --------------------------------------------------- 3. slow reader
    let stall_over = Arc::new(AtomicBool::new(false));
    let slow = {
        let queries = Arc::clone(&queries);
        let stall_over = Arc::clone(&stall_over);
        std::thread::spawn(move || {
            let mut client = NetClient::connect(addr, 3000).expect("slow connect");
            let corrs: Vec<u64> = (0..SLOW_PIPELINE)
                .map(|j| {
                    client
                        .send_query(&queries[j % queries.len()])
                        .expect("pipeline")
                })
                .collect();
            // Stop reading: responses pile into the kernel buffers (or
            // the pump's in-progress write), never into the collector.
            std::thread::sleep(Duration::from_millis(SLOW_STALL_MS));
            stall_over.store(true, Ordering::Release);
            corrs
                .into_iter()
                .filter(|&c| client.wait_query(c).is_ok())
                .count()
        })
    };
    // While the slow reader stalls, a victim connection must make
    // normal progress — the collector never blocks on a slow socket.
    let victim_queries = query_set(&w.queries, VICTIM_QUERIES, 17);
    let (v_ok, v_shed, v_lats) = run_closed_loop(addr, 3001, &victim_queries);
    let victim_done_early = !stall_over.load(Ordering::Acquire);
    let slow_replies = slow.join().expect("slow thread");
    let row = SlowReaderRow {
        pipelined: SLOW_PIPELINE,
        stall_ms: SLOW_STALL_MS,
        victim_queries: v_ok + v_shed,
        victim_p99_ms: percentile(&v_lats, 99.0) * 1e3,
        victim_done_before_stall_end: victim_done_early,
        slow_replies_received: slow_replies,
    };
    println!(
        "slow reader: {} pipelined, {}ms stall -> victim ran {} queries \
         (p99 {:.3}ms, finished before stall end: {}), slow conn got {} replies",
        row.pipelined,
        row.stall_ms,
        row.victim_queries,
        row.victim_p99_ms,
        row.victim_done_before_stall_end,
        row.slow_replies_received
    );
    assert_eq!(
        row.victim_queries, VICTIM_QUERIES,
        "victim queries stalled behind the slow reader"
    );
    assert_eq!(
        row.slow_replies_received, SLOW_PIPELINE,
        "slow reader lost responses after catching up"
    );
    report::record("serve_swarm", &row);
    artifact.push("slow_reader", &row);

    // ----------------------------------------------- 4. tenant isolation
    let iso_server = NetServer::spawn(
        &session,
        NetServerConfig {
            per_tenant_inflight: PER_TENANT_INFLIGHT,
            ..Default::default()
        },
    )
    .expect("bind isolation server");
    let iso_addr = iso_server.addr();
    // Isolated baseline for the well-behaved tenant.
    let good_queries = query_set(&w.queries, GOOD_QUERIES, 31);
    let baseline: Vec<_> = (0..GOOD_CONNS)
        .map(|i| {
            let qs: Vec<Vec<f32>> = good_queries
                .iter()
                .skip(i)
                .step_by(GOOD_CONNS)
                .cloned()
                .collect();
            std::thread::spawn(move || run_closed_loop(iso_addr, GOOD_TENANT, &qs))
        })
        .collect();
    let mut base_lats = Vec::new();
    let (mut base_ok, mut base_shed) = (0, 0);
    let base_t0 = Instant::now();
    for h in baseline {
        let (ok, shed, lats) = h.join().expect("baseline thread");
        base_ok += ok;
        base_shed += shed;
        base_lats.extend(lats);
    }
    let base_dur = base_t0.elapsed().as_secs_f64();
    let base_p99 = percentile(&base_lats, 99.0);
    let base_row = TenantRow {
        tenant: GOOD_TENANT,
        phase: "isolated",
        queries: base_ok + base_shed,
        ok: base_ok,
        shed: base_shed,
        shed_rate: base_shed as f64 / (base_ok + base_shed).max(1) as f64,
        goodput_qps: base_ok as f64 / base_dur,
        p50_ms: percentile(&base_lats, 50.0) * 1e3,
        p99_ms: base_p99 * 1e3,
    };
    report::record("serve_swarm", &base_row);
    artifact.push("isolation", &base_row);

    // The flood: one tenant pipelines far past its budget on several
    // connections while the good tenant repeats its exact workload.
    let stop = Arc::new(AtomicBool::new(false));
    let evil: Vec<_> = (0..EVIL_CONNS)
        .map(|i| {
            let queries = Arc::clone(&queries);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = NetClient::connect(iso_addr, EVIL_TENANT).expect("evil connect");
                let (mut ok, mut shed) = (0u64, 0u64);
                while !stop.load(Ordering::Acquire) {
                    let corrs: Vec<u64> = (0..EVIL_PIPELINE)
                        .map(|j| {
                            client
                                .send_query(&queries[(i + j) % queries.len()])
                                .expect("flood send")
                        })
                        .collect();
                    for c in corrs {
                        match client.wait_query(c).expect("flood reply").status {
                            OpStatus::Ok => ok += 1,
                            OpStatus::Shed => shed += 1,
                        }
                    }
                    std::thread::sleep(Duration::from_millis(EVIL_PAUSE_MS));
                }
                (ok, shed)
            })
        })
        .collect();
    // Let the flood reach steady state before measuring the victim.
    std::thread::sleep(Duration::from_millis(100));
    let contended: Vec<_> = (0..GOOD_CONNS)
        .map(|i| {
            let qs: Vec<Vec<f32>> = good_queries
                .iter()
                .skip(i)
                .step_by(GOOD_CONNS)
                .cloned()
                .collect();
            std::thread::spawn(move || run_closed_loop(iso_addr, GOOD_TENANT, &qs))
        })
        .collect();
    let mut cont_lats = Vec::new();
    let (mut cont_ok, mut cont_shed) = (0, 0);
    let cont_t0 = Instant::now();
    for h in contended {
        let (ok, shed, lats) = h.join().expect("contended thread");
        cont_ok += ok;
        cont_shed += shed;
        cont_lats.extend(lats);
    }
    let cont_dur = cont_t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    let (mut evil_ok, mut evil_shed) = (0u64, 0u64);
    for h in evil {
        let (ok, shed) = h.join().expect("evil thread");
        evil_ok += ok;
        evil_shed += shed;
    }
    let cont_p99 = percentile(&cont_lats, 99.0);
    let cont_row = TenantRow {
        tenant: GOOD_TENANT,
        phase: "under_flood",
        queries: cont_ok + cont_shed,
        ok: cont_ok,
        shed: cont_shed,
        shed_rate: cont_shed as f64 / (cont_ok + cont_shed).max(1) as f64,
        goodput_qps: cont_ok as f64 / cont_dur,
        p50_ms: percentile(&cont_lats, 50.0) * 1e3,
        p99_ms: cont_p99 * 1e3,
    };
    let evil_total = evil_ok + evil_shed;
    let evil_row = TenantRow {
        tenant: EVIL_TENANT,
        phase: "flood",
        queries: evil_total as usize,
        ok: evil_ok as usize,
        shed: evil_shed as usize,
        shed_rate: evil_shed as f64 / evil_total.max(1) as f64,
        goodput_qps: evil_ok as f64 / cont_dur,
        p50_ms: 0.0,
        p99_ms: 0.0,
    };
    println!(
        "isolation: tenant {} isolated p99 {:.3}ms -> under flood p99 {:.3}ms ({:.2}x); \
         flood tenant {}: {} ok / {} shed ({:.1}% shed)",
        GOOD_TENANT,
        base_row.p99_ms,
        cont_row.p99_ms,
        cont_p99 / base_p99,
        EVIL_TENANT,
        evil_ok,
        evil_shed,
        evil_row.shed_rate * 100.0
    );
    report::record("serve_swarm", &cont_row);
    report::record("serve_swarm", &evil_row);
    artifact.push("isolation", &cont_row);
    artifact.push("isolation", &evil_row);
    assert!(
        evil_row.shed_rate > base_row.shed_rate && evil_shed > 0,
        "the flooding tenant was never shed (shed rate {:.3})",
        evil_row.shed_rate
    );
    assert_eq!(
        cont_shed, 0,
        "the well-behaved tenant was shed by someone else's flood"
    );
    // 1.5x the isolated baseline, plus a small absolute floor so a
    // sub-millisecond baseline doesn't flake on scheduler noise.
    assert!(
        cont_p99 <= base_p99 * 1.5 + 5e-4,
        "victim p99 {:.3}ms exceeds 1.5x isolated baseline {:.3}ms",
        cont_p99 * 1e3,
        base_p99 * 1e3
    );

    // --------------------------------------------------------- shutdown
    // Two listeners served one session; the artifact reports their
    // combined wire totals.
    let mut final_report = server.shutdown();
    let iso_net = iso_server.shutdown().net;
    let a = final_report.net;
    final_report.net = e2lsh_service::NetCounters {
        connections_accepted: a.connections_accepted + iso_net.connections_accepted,
        connections_dropped: a.connections_dropped + iso_net.connections_dropped,
        connections_peak: a.connections_peak.max(iso_net.connections_peak),
        frames_in: a.frames_in + iso_net.frames_in,
        frames_out: a.frames_out + iso_net.frames_out,
        frame_decode_errors: a.frame_decode_errors + iso_net.frame_decode_errors,
        tickets_orphaned: a.tickets_orphaned + iso_net.tickets_orphaned,
    };
    let net = final_report.net;
    let summary = NetSummaryRow {
        connections_accepted: net.connections_accepted,
        connections_dropped: net.connections_dropped,
        connections_peak: net.connections_peak,
        frames_in: net.frames_in,
        frames_out: net.frames_out,
        frame_decode_errors: net.frame_decode_errors,
        tickets_orphaned: net.tickets_orphaned,
        victim_p99_ratio: cont_p99 / base_p99,
    };
    println!(
        "\nnet totals: {} accepted ({} dropped, peak {}), {} frames in / {} out, \
         {} decode errors, {} tickets orphaned",
        summary.connections_accepted,
        summary.connections_dropped,
        summary.connections_peak,
        summary.frames_in,
        summary.frames_out,
        summary.frame_decode_errors,
        summary.tickets_orphaned
    );
    report::record("serve_swarm", &summary);
    artifact.push("summary", &summary);
    artifact.attach_service(e2lsh_service::report_json(&final_report));
    session.shutdown();
    svc.shards().cleanup();
    artifact.write();
}
