//! **Figure 15** — Query speed, total observed IOPS, mean latency and
//! device usage vs the number of cSSDs (SIFT).
//!
//! Reproduces the paper's observation that query speed tracks total IOPS
//! until the array can sustain more than the workload needs; per-I/O
//! latency is high while the devices run near 100% usage and falls once
//! the array is over-provisioned — and latency by itself does not
//! determine application performance.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::{measure_e2lshos, StorageConfig};
use e2lsh_storage::device::sim::DeviceProfile;
use e2lsh_storage::device::Interface;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    devices: usize,
    qps: f64,
    observed_kiops: f64,
    latency_us: f64,
    usage_pct: f64,
}

fn main() {
    report::banner(
        "fig15_device_scaling",
        "Figure 15",
        "Query speed and device statistics vs number of cSSDs (SIFT, io_uring, γ = 0.7).",
    );
    let w = workload(DatasetId::Sift);
    println!(
        "{:>8} {:>10} {:>14} {:>12} {:>10}",
        "devices", "QPS", "total kIOPS", "latency", "usage"
    );
    for num in 1..=6usize {
        let storage = StorageConfig {
            profile: DeviceProfile::CSSD,
            num_devices: num,
            interface: Interface::IO_URING,
        };
        let (_, rep) = measure_e2lshos(&w, 1, 0.7, 8.0, storage, None);
        let observed_iops = rep.device.completed as f64 / rep.makespan;
        let max_iops = num as f64 * DeviceProfile::CSSD.max_kiops * 1e3;
        let usage = rep.device.busy_sum / (rep.makespan * num as f64)
            * (DeviceProfile::CSSD.dies() as f64).recip()
            * DeviceProfile::CSSD.dies() as f64; // busy fraction of array
        let usage_pct = (observed_iops / max_iops * 100.0)
            .min(100.0)
            .max(usage * 0.0);
        let row = Row {
            devices: num,
            qps: rep.qps(),
            observed_kiops: observed_iops / 1e3,
            latency_us: rep.device.mean_latency() * 1e6,
            usage_pct,
        };
        println!(
            "{:>8} {:>10.0} {:>14.1} {:>12} {:>9.0}%",
            row.devices,
            row.qps,
            row.observed_kiops,
            report::fmt_time(rep.device.mean_latency()),
            row.usage_pct
        );
        report::record("fig15_device_scaling", &row);
    }
    println!("\npaper shape: QPS ∝ total IOPS until the workload is satisfied;");
    println!("latency is long at high usage but does not determine performance.");
}
