//! **Figure 7** — Required storage IOPS for E2LSHoS to reach *in-memory
//! E2LSH* speeds, all datasets (Equation 15: `1/T_read ≥ N_IO/T_E2LSH`),
//! plus the CPU-overhead requirement of Equation 16
//! (`1/T_request ≥ 10·N_IO/T_E2LSH`, using the paper's measured ~10%
//! memory-stall advantage of the storage version).

use ann_datasets::suite::DatasetId;
use e2lsh_analysis::required_iops;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::sweep_e2lsh_mem;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    ratio: f64,
    n_io: f64,
    t_e2lsh_us: f64,
    kiops: f64,
    max_t_request_ns: f64,
}

fn main() {
    report::banner(
        "fig7_iops_req_inmemory",
        "Figure 7 (and Eq. 16)",
        "Required kIOPS (and max T_request) to reach in-memory E2LSH speeds, B = 512 B.",
    );
    println!(
        "{:<8} {:>8} {:>9} {:>12} {:>10} {:>14}",
        "Dataset", "ratio", "N_IO", "T_E2LSH", "kIOPS", "max T_req"
    );
    for id in DatasetId::ALL {
        let w = workload(id);
        let e2 = sweep_e2lsh_mem(&w, 1, true);
        let nq = w.queries.len() as f64;
        for (point, stats) in e2.curve.points.iter().zip(&e2.stats) {
            let n_io = stats.n_io_block(128) as f64 / nq;
            let iops = required_iops(n_io, point.query_time);
            // Eq. 16: T_compute ≈ 0.9·T_E2LSH ⇒ 1/T_request ≥ 10·N_IO/T.
            let max_t_request = 1.0 / (10.0 * iops);
            let row = Row {
                dataset: id.name(),
                ratio: point.ratio,
                n_io,
                t_e2lsh_us: point.query_time * 1e6,
                kiops: iops / 1e3,
                max_t_request_ns: max_t_request * 1e9,
            };
            println!(
                "{:<8} {:>8.4} {:>9.1} {:>12} {:>10.0} {:>14}",
                row.dataset,
                row.ratio,
                row.n_io,
                report::fmt_time(point.query_time),
                row.kiops,
                report::fmt_time(max_t_request)
            );
            report::record("fig7_iops_req_inmemory", &row);
        }
    }
    println!("\npaper shape: a few MIOPS and a CPU overhead of at most a few tens");
    println!("of nanoseconds per I/O — the XLFDD class, beyond io_uring/SPDK.");
}
