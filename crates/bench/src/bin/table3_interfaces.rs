//! **Table 3** — Storage interfaces and their CPU overhead (time per I/O
//! and the implied max IOPS one core can issue).
//!
//! Verifies the implied submission ceiling by driving the virtual-time
//! engine's submission path: with a device fast enough to never be the
//! bottleneck, the achieved IOPS equals `1/T_request`.

use e2lsh_bench::report;
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, Interface, IoRequest};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    interface: &'static str,
    t_request_ns: f64,
    max_iops_per_core: f64,
}

fn main() {
    report::banner(
        "table3_interfaces",
        "Table 3",
        "Per-I/O CPU overhead of the storage interfaces and the implied IOPS/core ceiling.",
    );
    println!(
        "{:<12} {:>16} {:>18}",
        "Interface", "CPU time / I/O", "Max IOPS / core"
    );
    for iface in [Interface::IO_URING, Interface::SPDK, Interface::XLFDD] {
        // Drive a saturated submission loop in virtual time: the CPU
        // timeline advances by t_request per submission; an infinitely
        // parallel device (many XLFDDs) never throttles it.
        let mut dev = SimStorage::new(DeviceProfile::XLFDD, 64, Backing::Mem(vec![0; 1 << 20]));
        let total = 200_000u64;
        let mut clock = 0.0;
        for i in 0..total {
            clock += iface.t_request;
            dev.submit(
                IoRequest {
                    addr: (i * 512 * 131) % (1 << 20),
                    len: 512,
                    tag: i,
                },
                clock,
            );
        }
        let achieved = total as f64 / clock;
        println!(
            "{:<12} {:>16} {:>18}",
            iface.name,
            report::fmt_time(iface.t_request),
            report::fmt_iops(achieved)
        );
        report::record(
            "table3_interfaces",
            &Row {
                interface: iface.name,
                t_request_ns: iface.t_request * 1e9,
                max_iops_per_core: achieved,
            },
        );
    }
    println!(
        "\npaper: io_uring 1.0 µs → 1.0 MIOPS; SPDK 350 ns → 2.9 MIOPS; XLFDD 50 ns → 20 MIOPS"
    );
}
