//! **Figure 4** — Required storage IOPS for E2LSHoS to match in-memory
//! SRS speed, vs accuracy, for varying block size B (SIFT; Equation 13:
//! `1/T_read ≥ N_IO / T_SRS`).

use ann_datasets::suite::DatasetId;
use e2lsh_analysis::required_iops;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::{sweep_e2lsh_mem, sweep_srs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    ratio: f64,
    t_srs_us: f64,
    kiops_b128: f64,
    kiops_b512: f64,
    kiops_b4k: f64,
    kiops_inf: f64,
}

fn main() {
    report::banner(
        "fig4_iops_req_blocksize",
        "Figure 4",
        "Required kIOPS for SRS speed vs accuracy and block size (SIFT, Eq. 13).",
    );
    let w = workload(DatasetId::Sift);
    let e2 = sweep_e2lsh_mem(&w, 1, true);
    let srs = sweep_srs(&w, 1);
    let nq = w.queries.len() as f64;
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "ratio", "T_SRS", "B=128", "B=512", "B=4K", "B=inf"
    );
    for (point, stats) in e2.curve.points.iter().zip(&e2.stats) {
        let t_srs = srs.time_at_ratio(point.ratio);
        let req = |objs: usize| required_iops(stats.n_io_block(objs) as f64 / nq, t_srs) / 1e3;
        let row = Row {
            ratio: point.ratio,
            t_srs_us: t_srs * 1e6,
            kiops_b128: req(32),
            kiops_b512: req(128),
            kiops_b4k: req(1024),
            kiops_inf: required_iops(stats.n_io_inf() as f64 / nq, t_srs) / 1e3,
        };
        println!(
            "{:>8.4} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            row.ratio,
            report::fmt_time(t_srs),
            row.kiops_b128,
            row.kiops_b512,
            row.kiops_b4k,
            row.kiops_inf
        );
        report::record("fig4_iops_req_blocksize", &row);
    }
    println!("\npaper shape: a few hundred kIOPS suffice at every accuracy level;");
    println!("small blocks only raise the requirement in the high-accuracy region.");
}
