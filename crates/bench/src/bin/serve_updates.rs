//! **Mutable serving** — read-latency degradation vs write rate.
//!
//! The paper evaluates a static index; this experiment opens the first
//! mutable-workload scenario: a sharded service with a DRAM block
//! cache serves a Zipf-skewed query stream while a configurable
//! fraction of ops are online inserts/deletes routed through the
//! per-shard write path (`storage::update::Updater` + per-key cache
//! invalidation epochs).
//!
//! The sweep raises the write fraction under a closed loop and reports
//! read p50/p95/p99 (degradation comes from two sources: write-induced
//! cache invalidations turning hits back into device reads, and
//! occupied window slots), write p50/p95/p99, cache hit rate, and the
//! invalidation / stale-fill counters that per-key epochs keep low —
//! under the PR-1 cache-global generation, *every* in-flight miss fill
//! was discarded on *every* write.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload_sized;
use e2lsh_bench::report;
use e2lsh_service::{
    mixed_ops, skewed_queries, DeviceSpec, Load, ServiceConfig, ShardBuildConfig, ShardSet,
    ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    write_fraction: f64,
    inserts: usize,
    deletes: usize,
    qps: f64,
    wps: f64,
    read_p50_ms: f64,
    read_p95_ms: f64,
    read_p99_ms: f64,
    /// Read enqueue-wait p99 — recorded from separate queue-entry and
    /// service-start timestamps, so closed- and open-loop rows book
    /// waiting identically instead of folding it into service time
    /// differently per mode.
    read_wait_p99_ms: f64,
    read_service_p99_ms: f64,
    write_p50_ms: f64,
    write_p99_ms: f64,
    /// Write wait p99 (queue entry → writer dequeue): under a single
    /// writer thread per shard this, not the update itself, is where
    /// write p99 lives at high write fractions.
    write_wait_p99_ms: f64,
    write_service_p99_ms: f64,
    cache_hit_rate: f64,
    invalidations: u64,
    stale_fills: u64,
}

const NUM_SHARDS: usize = 2;
const QUERIES: usize = 1200;
const ZIPF_S: f64 = 1.1;
const N: usize = 10_000;
const POOL: usize = 4_000;

fn main() {
    report::banner(
        "serve_updates",
        "beyond the paper: online updates",
        "Read p50/p95/p99 degradation vs write rate through the sharded \
         service (SIFT, cSSD×2 per shard, 32 MiB DRAM cache per shard, \
         Zipf-skewed reads, closed loop, per-key cache invalidation epochs).",
    );
    let w = workload_sized(DatasetId::Sift, N + POOL, 100);
    let data = w.data.prefix(N);
    let pool = e2lshos_pool(&w.data, N, POOL);
    let queries = skewed_queries(&w.queries, QUERIES, ZIPF_S, 7);
    let mut artifact = report::BenchArtifact::new("serve_updates");

    println!(
        "{:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9} {:>7}",
        "write%",
        "QPS",
        "WPS",
        "r-p50",
        "r-p95",
        "r-p99",
        "r-wait99",
        "w-p50",
        "w-p99",
        "w-wait99",
        "cache",
        "invals",
        "stale"
    );
    for write_fraction in [0.0, 0.01, 0.05, 0.2] {
        let shards = ShardSet::build(
            &data,
            &ShardBuildConfig {
                num_shards: NUM_SHARDS,
                seed: 99,
                dir: std::env::temp_dir()
                    .join(format!("e2lsh-serve-updates-{}", std::process::id())),
                cache_blocks: 1 << 16, // 32 MiB of 512-byte blocks per shard
                capacity: Some(2 * (N + POOL) / NUM_SHARDS),
                ..Default::default()
            },
            e2lsh_bench::prep::e2lsh_params,
        )
        .expect("shard build");
        let svc = ShardedService::new(
            shards,
            ServiceConfig {
                workers_per_replica: 4,
                contexts_per_worker: 32,
                k: 1,
                s_override: None,
                device: DeviceSpec::SimShared {
                    profile: DeviceProfile::CSSD,
                    num_devices: 2,
                },
                ..Default::default()
            },
        );
        let wl = mixed_ops(queries.len(), write_fraction, 0.4, N, POOL, 11);
        let rep = svc.serve_mixed(&queries, &pool, &wl.ops, Load::Closed { window: 64 });
        let lat = rep.latency();
        let rwait = rep.queue_wait();
        let rsvc = rep.service_latency();
        let wlat = rep.write_latency();
        let wsvc = rep.write_service_latency();
        let wwait_p99 = rep.write_queue_wait().p99;
        let row = Row {
            write_fraction,
            inserts: wl.num_inserts,
            deletes: wl.num_deletes,
            qps: rep.qps(),
            wps: rep.wps(),
            read_p50_ms: lat.p50 * 1e3,
            read_p95_ms: lat.p95 * 1e3,
            read_p99_ms: lat.p99 * 1e3,
            read_wait_p99_ms: rwait.p99 * 1e3,
            read_service_p99_ms: rsvc.p99 * 1e3,
            write_p50_ms: wlat.p50 * 1e3,
            write_p99_ms: wlat.p99 * 1e3,
            write_wait_p99_ms: wwait_p99 * 1e3,
            write_service_p99_ms: wsvc.p99 * 1e3,
            cache_hit_rate: rep.device.cache_hit_rate(),
            invalidations: rep.device.cache_invalidations,
            stale_fills: rep.device.cache_stale_fills,
        };
        println!(
            "{:>7.1}% {:>8.0} {:>8.0} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7.1}% {:>9} {:>7}",
            row.write_fraction * 100.0,
            row.qps,
            row.wps,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p95),
            report::fmt_time(lat.p99),
            report::fmt_time(rwait.p99),
            report::fmt_time(wlat.p50),
            report::fmt_time(wlat.p99),
            report::fmt_time(wwait_p99),
            row.cache_hit_rate * 100.0,
            row.invalidations,
            row.stale_fills,
        );
        assert_eq!(rep.writes_failed, 0, "writes must not fail in the sweep");
        report::record("serve_updates", &row);
        artifact.push("mixed", &row);
        if write_fraction >= 0.2 {
            // Snapshot the heaviest-write run: its write histograms and
            // invalidation counters are the ones worth archiving.
            artifact.attach_service(e2lsh_service::report_json(&rep));
        }
        svc.shards().cleanup();
    }
    artifact.write();
}

/// The insert pool: rows `n..n+pool` of the generated dataset.
fn e2lshos_pool(
    all: &e2lsh_core::dataset::Dataset,
    n: usize,
    pool: usize,
) -> e2lsh_core::dataset::Dataset {
    let mut out = e2lsh_core::dataset::Dataset::with_capacity(all.dim(), pool);
    for i in n..n + pool {
        out.push(all.point(i));
    }
    out
}
