//! **Table 4** — Average number of hash bucket reads per query: per
//! dataset, the number of compound hashes `L`, the total radius count `r`,
//! the average searched radii `r̄`, and the minimum I/O count `N_IO,∞`
//! (one hash-table read plus one bucket read per non-empty probed bucket).
//!
//! Produced by running in-memory E2LSH (γ = 1) over each dataset's query
//! set, exactly as the paper does in Section 4.3.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::{e2lsh_params, workload};
use e2lsh_bench::report;
use e2lsh_core::index::MemIndex;
use e2lsh_core::search::{knn_search, SearchOptions};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    n: usize,
    l: usize,
    total_radii: usize,
    avg_radii: f64,
    n_io_inf: f64,
}

fn main() {
    report::banner(
        "table4_io_counts",
        "Table 4",
        "L, radius counts and minimum I/Os per query (in-memory E2LSH, γ = 1, k = 1).",
    );
    println!(
        "{:<8} {:>9} {:>5} {:>9} {:>10} {:>12}",
        "Dataset", "n", "L", "r", "avg r̄", "N_IO,inf"
    );
    for id in DatasetId::ALL {
        let w = workload(id);
        let params = e2lsh_params(&w.data);
        let index = MemIndex::build(&w.data, &params, 7);
        let opts = SearchOptions::default();
        let mut radii = 0usize;
        let mut nonempty = 0usize;
        for qi in 0..w.queries.len() {
            let (_, st) = knn_search(&index, &w.data, w.queries.point(qi), 1, &opts);
            radii += st.radii_searched;
            nonempty += st.nonempty_buckets;
        }
        let nq = w.queries.len() as f64;
        let row = Row {
            dataset: id.name(),
            n: w.data.len(),
            l: params.l,
            total_radii: params.num_radii(),
            avg_radii: radii as f64 / nq,
            n_io_inf: 2.0 * nonempty as f64 / nq,
        };
        println!(
            "{:<8} {:>9} {:>5} {:>9} {:>10.2} {:>12.1}",
            row.dataset, row.n, row.l, row.total_radii, row.avg_radii, row.n_io_inf
        );
        report::record("table4_io_counts", &row);
    }
    println!("\npaper (n up to 10^9): L 16–51, r 4–13, r̄ 1.7–11.6, N_IO,inf 49–791");
}
