//! **Cache policy comparison** — W-TinyLFU admission vs plain LRU.
//!
//! The paper's premise is that disk-resident LSH lives or dies on how
//! few device reads a query costs, so what the DRAM block cache keeps
//! matters as much as how big it is. This experiment measures the
//! PR 9 cache work in three legs:
//!
//! 1. **Zipf sweep** (deterministic, cache-level) — replay Zipf block
//!    traces at skew × capacity × policy; asserts TinyLFU ≥ LRU hit
//!    rate at Zipf(1.1), strictly higher at ≤ 25% of the working set.
//! 2. **Scan resistance** (deterministic, cache-level) — a one-shot
//!    sequential sweep (the shape of a maintenance chain scan or a
//!    churn pass) interleaved with steady Zipf(1.1) traffic; asserts
//!    the TinyLFU hit-rate drop stays under 5 points while LRU drops
//!    more. A service-level leg runs real churn + budgeted maintenance
//!    concurrently with skewed reads under both policies (maintenance
//!    scans read through the cache peek-only, so neither policy is
//!    polluted by them — the leg verifies exactly that).
//! 3. **Read coalescing** (service-level) — duplicate-heavy queries
//!    through a reactor at `inflight_per_replica = 128` with
//!    single-flight coalescing on; asserts `coalesced_reads > 0`.
//!
//! Emits `BENCH_serve_cache.json` (validated by `schema_check`).

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload_sized;
use e2lsh_bench::report;
use e2lsh_service::{
    mixed_ops_resuming, skewed_queries, zipf_indices, CachePolicy, DeviceSpec, Load, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService, TinyLfuConfig,
};
use e2lsh_storage::device::cached::BlockCache;
use serde::Serialize;
use std::sync::Arc;

/// Distinct blocks in the synthetic working set (cache-level legs).
const WORKING_SET: usize = 4096;
/// Accesses per cache-level replay.
const ACCESSES: usize = 120_000;
const SKEWS: [f64; 3] = [0.8, 1.1, 1.4];
const CAP_FRACS: [f64; 3] = [0.05, 0.25, 0.5];
/// Scan-resistance leg: cold blocks swept once, interleaved 1:1 with
/// Zipf traffic.
const SCAN_BLOCKS: usize = 8192;
/// Measurement window on either side of the scan.
const WINDOW: usize = 30_000;

/// Service-level legs.
const N: usize = 6_000;
const CHURN_OPS: usize = 600;
const POOL: usize = 300;
const QUERIES: usize = 800;
const ZIPF_S: f64 = 1.1;
const MAINT_BUDGET: usize = 256;

#[derive(Serialize)]
struct SweepRow {
    skew: f64,
    capacity_frac: f64,
    capacity_blocks: usize,
    lru_hit_rate: f64,
    tinylfu_hit_rate: f64,
    tinylfu_admission_rejected: u64,
}

#[derive(Serialize)]
struct ScanRow {
    policy: &'static str,
    pre_scan_hit_rate: f64,
    /// Hit rate of the Zipf stream *while* the cold sweep runs
    /// concurrently (two scan blocks per query — the scan outpaces the
    /// queries, the regime where LRU gets flushed).
    during_scan_hit_rate: f64,
    post_scan_hit_rate: f64,
    drop_pts: f64,
}

#[derive(Serialize)]
struct ServiceScanRow {
    policy: &'static str,
    pre_hit_rate: f64,
    churn_hit_rate: f64,
    post_hit_rate: f64,
    drop_pts: f64,
    blocks_reclaimed: u64,
    admission_rejected: u64,
    table_hits: u64,
    bucket_hits: u64,
}

#[derive(Serialize)]
struct CoalesceRow {
    inflight_per_replica: usize,
    queries: usize,
    distinct_queries: usize,
    coalesced_reads: u64,
    cache_hits: u64,
    cache_misses: u64,
}

fn tinylfu() -> CachePolicy {
    CachePolicy::TinyLfu(TinyLfuConfig::default())
}

fn cache(capacity: usize, policy: CachePolicy) -> BlockCache {
    BlockCache::with_policy(capacity, 8, policy)
}

/// Replay one access: read-through fill on miss, like a CachedDevice.
fn access(c: &BlockCache, key: u64, block: &Arc<[u8]>) {
    if let Err(epoch) = c.get_or_begin_fill(key) {
        c.insert_if_fresh(key, Arc::clone(block), epoch);
    }
}

fn replay(c: &BlockCache, trace: &[usize], block: &Arc<[u8]>) {
    for &k in trace {
        access(c, k as u64, block);
    }
}

/// Hit rate over a window: replay and report the counter deltas.
fn windowed_hit_rate(c: &BlockCache, trace: &[usize], block: &Arc<[u8]>) -> f64 {
    let (h0, m0) = (c.hits(), c.misses());
    replay(c, trace, block);
    let (h, m) = (c.hits() - h0, c.misses() - m0);
    h as f64 / (h + m).max(1) as f64
}

fn main() {
    report::banner(
        "serve_cache",
        "beyond the paper: cache admission policy",
        "W-TinyLFU (window + count-min admission + segmented main) vs \
         plain LRU: Zipf hit-rate sweep, scan resistance under a \
         sequential sweep and under real churn + maintenance, and \
         single-flight read coalescing through the reactor.",
    );
    let mut artifact = report::BenchArtifact::new("serve_cache");
    let block: Arc<[u8]> = Arc::from(vec![0u8; 512].into_boxed_slice());

    // ── Leg 1: Zipf skew × capacity × policy ─────────────────────────
    println!(
        "{:>6} {:>10} {:>8} {:>9} {:>9} {:>10}",
        "skew", "cap-frac", "blocks", "LRU", "TinyLFU", "rejected"
    );
    let mut zipf11: Vec<SweepRow> = Vec::new();
    for &skew in &SKEWS {
        let trace = zipf_indices(WORKING_SET, ACCESSES, skew, 1009 + (skew * 10.0) as u64);
        for &frac in &CAP_FRACS {
            let capacity = ((WORKING_SET as f64 * frac) as usize).max(2);
            let lru = cache(capacity, CachePolicy::Lru);
            replay(&lru, &trace, &block);
            let tiny = cache(capacity, tinylfu());
            replay(&tiny, &trace, &block);
            let row = SweepRow {
                skew,
                capacity_frac: frac,
                capacity_blocks: capacity,
                lru_hit_rate: lru.hit_rate(),
                tinylfu_hit_rate: tiny.hit_rate(),
                tinylfu_admission_rejected: tiny.admission_rejected(),
            };
            println!(
                "{:>6.1} {:>10.2} {:>8} {:>8.1}% {:>8.1}% {:>10}",
                row.skew,
                row.capacity_frac,
                row.capacity_blocks,
                row.lru_hit_rate * 100.0,
                row.tinylfu_hit_rate * 100.0,
                row.tinylfu_admission_rejected,
            );
            report::record("serve_cache", &row);
            artifact.push("zipf_sweep", &row);
            if skew == 1.1 {
                zipf11.push(row);
            }
        }
    }
    for row in &zipf11 {
        assert!(
            row.tinylfu_hit_rate >= row.lru_hit_rate,
            "TinyLFU below LRU at Zipf(1.1), cap {:.2}: {:.4} < {:.4}",
            row.capacity_frac,
            row.tinylfu_hit_rate,
            row.lru_hit_rate
        );
        if row.capacity_frac <= 0.25 {
            assert!(
                row.tinylfu_hit_rate > row.lru_hit_rate,
                "TinyLFU not strictly above LRU at small capacity {:.2}",
                row.capacity_frac
            );
        }
    }

    // ── Leg 2a: scan resistance, deterministic ───────────────────────
    // Steady Zipf(1.1) at 25% capacity; a one-shot sequential sweep of
    // cold keys (>= WORKING_SET) interleaved 1:1 with the Zipf stream.
    let capacity = WORKING_SET / 4;
    let warm = zipf_indices(WORKING_SET, ACCESSES, 1.1, 77);
    let pre = zipf_indices(WORKING_SET, WINDOW, 1.1, 78);
    let during = zipf_indices(WORKING_SET, SCAN_BLOCKS, 1.1, 79);
    let post = zipf_indices(WORKING_SET, WINDOW, 1.1, 80);
    let mut scan_rows = Vec::new();
    for (name, policy) in [("lru", CachePolicy::Lru), ("tinylfu", tinylfu())] {
        let c = cache(capacity, policy);
        replay(&c, &warm, &block);
        let hr_pre = windowed_hit_rate(&c, &pre, &block);
        // Concurrent sweep: one-shot cold blocks at 2× the query rate.
        let mut zipf_hits = 0usize;
        for (i, &k) in during.iter().enumerate() {
            match c.get_or_begin_fill(k as u64) {
                Ok(_) => zipf_hits += 1,
                Err(epoch) => {
                    c.insert_if_fresh(k as u64, Arc::clone(&block), epoch);
                }
            }
            access(&c, (WORKING_SET + 2 * i) as u64, &block);
            access(&c, (WORKING_SET + 2 * i + 1) as u64, &block);
        }
        let hr_during = zipf_hits as f64 / during.len() as f64;
        let hr_post = windowed_hit_rate(&c, &post, &block);
        let row = ScanRow {
            policy: name,
            pre_scan_hit_rate: hr_pre,
            during_scan_hit_rate: hr_during,
            post_scan_hit_rate: hr_post,
            drop_pts: (hr_pre - hr_during) * 100.0,
        };
        println!(
            "scan resistance [{:>8}]: {:.1}% -> during {:.1}% -> {:.1}% (drop {:.2} pts)",
            row.policy,
            row.pre_scan_hit_rate * 100.0,
            row.during_scan_hit_rate * 100.0,
            row.post_scan_hit_rate * 100.0,
            row.drop_pts
        );
        report::record("serve_cache", &row);
        artifact.push("scan_resistance", &row);
        scan_rows.push(row);
    }
    let (lru_drop, tiny_drop) = (scan_rows[0].drop_pts, scan_rows[1].drop_pts);
    assert!(
        tiny_drop < 5.0,
        "TinyLFU hit rate dropped {tiny_drop:.2} pts across the scan (>= 5)"
    );
    assert!(
        lru_drop > tiny_drop,
        "LRU should drop more than TinyLFU across a scan ({lru_drop:.2} <= {tiny_drop:.2})"
    );

    // ── Leg 2b: scan resistance under real churn + maintenance ───────
    let w = workload_sized(DatasetId::Sift, N + POOL, 100);
    let data = w.data.prefix(N);
    let warm_q = skewed_queries(&w.queries, QUERIES, ZIPF_S, 3);
    let read_q = skewed_queries(&w.queries, QUERIES, ZIPF_S, 7);
    let churn_q = skewed_queries(&w.queries, CHURN_OPS, ZIPF_S, 11);
    let pool: Vec<Vec<f32>> = (N..N + POOL).map(|i| w.data.point(i).to_vec()).collect();
    let pool_ds = {
        let mut d = e2lsh_core::dataset::Dataset::with_capacity(w.data.dim(), POOL);
        for p in &pool {
            d.push(p);
        }
        d
    };
    let wl = mixed_ops_resuming(
        CHURN_OPS,
        0.5,
        0.5,
        (0..N as u32).collect(),
        N as u32,
        POOL,
        13,
    );
    for (name, policy) in [("lru", CachePolicy::Lru), ("tinylfu", tinylfu())] {
        let shards = ShardSet::build(
            &data,
            &ShardBuildConfig {
                num_shards: 1,
                seed: 99,
                dir: std::env::temp_dir()
                    .join(format!("e2lsh-serve-cache-{name}-{}", std::process::id())),
                cache_blocks: 1 << 13, // 4 MiB: small enough to contend
                capacity: Some(2 * (N + POOL)),
                ..Default::default()
            },
            e2lsh_bench::prep::e2lsh_params,
        )
        .expect("shard build");
        let svc = ShardedService::new(
            shards,
            ServiceConfig {
                workers_per_replica: 2,
                contexts_per_worker: 32,
                k: 1,
                device: DeviceSpec::File { io_workers: 4 },
                maintenance_blocks_per_tick: MAINT_BUDGET,
                cache_policy: policy,
                ..Default::default()
            },
        );
        svc.serve(&warm_q, Load::Closed { window: 64 });
        let pre = svc.serve(&read_q, Load::Closed { window: 64 });
        let churn = svc.serve_mixed(&churn_q, &pool_ds, &wl.ops, Load::Closed { window: 64 });
        let post = svc.serve(&read_q, Load::Closed { window: 64 });
        let row = ServiceScanRow {
            policy: name,
            pre_hit_rate: pre.device.cache_hit_rate(),
            churn_hit_rate: churn.device.cache_hit_rate(),
            post_hit_rate: post.device.cache_hit_rate(),
            drop_pts: (pre.device.cache_hit_rate() - post.device.cache_hit_rate()) * 100.0,
            blocks_reclaimed: churn.device.blocks_reclaimed,
            admission_rejected: post.device.cache_admission_rejected,
            table_hits: post.device.cache_table_hits,
            bucket_hits: post.device.cache_bucket_hits,
        };
        println!(
            "service churn+maintenance [{:>8}]: {:.1}% -> churn {:.1}% -> {:.1}% \
             (drop {:.2} pts, {} blocks reclaimed)",
            row.policy,
            row.pre_hit_rate * 100.0,
            row.churn_hit_rate * 100.0,
            row.post_hit_rate * 100.0,
            row.drop_pts,
            row.blocks_reclaimed,
        );
        if name == "tinylfu" {
            assert!(
                row.drop_pts < 5.0,
                "TinyLFU hit rate dropped {:.2} pts across churn + maintenance",
                row.drop_pts
            );
            assert!(
                row.table_hits + row.bucket_hits > 0,
                "region counters did not flow"
            );
        }
        report::record("serve_cache", &row);
        artifact.push("service_scan", &row);
        svc.shards().cleanup();
    }

    // ── Leg 3: single-flight coalescing through the reactor ──────────
    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: 1,
            seed: 99,
            dir: std::env::temp_dir().join(format!("e2lsh-serve-cache-co-{}", std::process::id())),
            cache_blocks: 1 << 13,
            capacity: Some(2 * (N + POOL)),
            ..Default::default()
        },
        e2lsh_bench::prep::e2lsh_params,
    )
    .expect("shard build");
    let inflight = 128;
    let svc = ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 2,
            inflight_per_replica: inflight,
            k: 1,
            device: DeviceSpec::File { io_workers: 4 },
            cache_policy: tinylfu(),
            cache_coalescing: true,
            ..Default::default()
        },
    );
    let session = svc.start();
    let client = session.client();
    // Duplicate-heavy open stream against a cold cache: 25 distinct
    // points, each submitted 32 times round-robin so duplicates are in
    // flight together (Client::query does not dedup — only the batch
    // wrapper does).
    let distinct = 25;
    let mut tickets = Vec::new();
    for round in 0..32 {
        let _ = round;
        for q in 0..distinct {
            tickets.push(client.query(w.queries.point(q)));
        }
    }
    let total = tickets.len();
    for t in tickets {
        t.wait();
    }
    let rep = session.shutdown();
    let row = CoalesceRow {
        inflight_per_replica: inflight,
        queries: total,
        distinct_queries: distinct,
        coalesced_reads: rep.device.coalesced_reads,
        cache_hits: rep.device.cache_hits,
        cache_misses: rep.device.cache_misses,
    };
    println!(
        "coalescing: {} queries ({} distinct) at inflight {} -> {} coalesced reads \
         ({} hits / {} misses)",
        row.queries,
        row.distinct_queries,
        row.inflight_per_replica,
        row.coalesced_reads,
        row.cache_hits,
        row.cache_misses,
    );
    assert!(
        row.coalesced_reads > 0,
        "no reads coalesced under a duplicate-heavy stream at inflight {inflight}"
    );
    report::record("serve_cache", &row);
    artifact.push("coalescing", &row);
    artifact.attach_service(e2lsh_service::report_json(&rep));
    svc.shards().cleanup();

    artifact.write();
    println!("\nserve_cache: all assertions passed");
}
