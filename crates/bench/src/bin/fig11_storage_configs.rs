//! **Figure 11** — Speedup of E2LSHoS over SRS for the paper's six
//! storage-configuration groups (SIFT, accuracy sweep):
//!
//! 1. cSSD×1 (io_uring / SPDK) — device-IOPS-bound
//! 2. cSSD×4, eSSD×1, eSSD×8 with io_uring — interface-bound
//! 3. cSSD×4 with SPDK
//! 4. eSSD×1 / eSSD×8 with SPDK
//! 5. in-memory E2LSH
//! 6. XLFDD×12 with its lightweight interface

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::{sweep_e2lsh_mem, sweep_e2lshos, sweep_srs, StorageConfig};
use e2lsh_storage::device::sim::DeviceProfile;
use e2lsh_storage::device::Interface;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    gamma: f64,
    ratio: f64,
    query_us: f64,
    speedup_over_srs: f64,
}

fn main() {
    report::banner(
        "fig11_storage_configs",
        "Figure 11",
        "Speedup over SRS for six storage-configuration groups (SIFT, k = 1).",
    );
    let w = workload(DatasetId::Sift);
    let srs = sweep_srs(&w, 1);

    let configs: Vec<(String, StorageConfig)> = vec![
        (
            "G1 cSSD×1 io_uring",
            (DeviceProfile::CSSD, 1, Interface::IO_URING),
        ),
        ("G1 cSSD×1 SPDK", (DeviceProfile::CSSD, 1, Interface::SPDK)),
        (
            "G2 cSSD×4 io_uring",
            (DeviceProfile::CSSD, 4, Interface::IO_URING),
        ),
        (
            "G2 eSSD×1 io_uring",
            (DeviceProfile::ESSD, 1, Interface::IO_URING),
        ),
        (
            "G2 eSSD×8 io_uring",
            (DeviceProfile::ESSD, 8, Interface::IO_URING),
        ),
        ("G3 cSSD×4 SPDK", (DeviceProfile::CSSD, 4, Interface::SPDK)),
        ("G4 eSSD×1 SPDK", (DeviceProfile::ESSD, 1, Interface::SPDK)),
        ("G4 eSSD×8 SPDK", (DeviceProfile::ESSD, 8, Interface::SPDK)),
        ("G6 XLFDD×12", (DeviceProfile::XLFDD, 12, Interface::XLFDD)),
    ]
    .into_iter()
    .map(|(name, (profile, num, iface))| {
        (
            name.to_string(),
            StorageConfig {
                profile,
                num_devices: num,
                interface: iface,
            },
        )
    })
    .collect();

    println!(
        "{:<22} {:>6} {:>8} {:>12} {:>10}",
        "Config", "gamma", "ratio", "time", "vs SRS"
    );
    for (name, storage) in &configs {
        let (curve, _) = sweep_e2lshos(&w, 1, *storage);
        for p in &curve.points {
            let t_srs = srs.time_at_ratio(p.ratio);
            let row = Row {
                config: name.clone(),
                gamma: p.knob,
                ratio: p.ratio,
                query_us: p.query_time * 1e6,
                speedup_over_srs: t_srs / p.query_time,
            };
            println!(
                "{:<22} {:>6.2} {:>8.4} {:>12} {:>9.2}x",
                row.config,
                row.gamma,
                row.ratio,
                report::fmt_time(p.query_time),
                row.speedup_over_srs
            );
            report::record("fig11_storage_configs", &row);
        }
    }
    // Group 5: in-memory E2LSH.
    let mem = sweep_e2lsh_mem(&w, 1, false);
    for p in &mem.curve.points {
        let t_srs = srs.time_at_ratio(p.ratio);
        let row = Row {
            config: "G5 in-memory E2LSH".into(),
            gamma: p.knob,
            ratio: p.ratio,
            query_us: p.query_time * 1e6,
            speedup_over_srs: t_srs / p.query_time,
        };
        println!(
            "{:<22} {:>6.2} {:>8.4} {:>12} {:>9.2}x",
            row.config,
            row.gamma,
            row.ratio,
            report::fmt_time(p.query_time),
            row.speedup_over_srs
        );
        report::record("fig11_storage_configs", &row);
    }
    println!("\npaper shape: G1 < G2 < G3 < G4 ≤ G5 ≤ G6 — device IOPS first,");
    println!("then interface overhead, then the in-memory/XLFDD frontier.");
}
