//! **Saturation behaviour** — goodput, shed rate and accepted-request
//! latency as the offered open-loop rate sweeps *through and past*
//! capacity, under bounded admission queues.
//!
//! The paper measures a system that is allowed to queue without bound;
//! a serving tier cannot. This experiment measures the closed-loop
//! capacity of a sharded cached service, then offers Poisson arrivals
//! at fractions of that capacity from well below to 2× above, with a
//! finite per-shard admission budget: above capacity the queue bound
//! holds, the excess is shed with the typed `Overload` error, and the
//! *accepted*-request percentiles stay flat instead of growing with the
//! stream (the regime the PR-1 unbounded queues simply hung in).
//! Queue wait and service time are reported separately (the enqueue-wait
//! accounting fix: both open- and closed-loop runs now record
//! queue-entry and service-start timestamps per op).
//!
//! Part 2 measures the batch path: duplicate-heavy (Zipf) batches
//! through `query_batch` vs the same queries served one-by-one —
//! engine probes saved by hot-query dedup, per-batch latency, and the
//! dedup rate.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload_sized;
use e2lsh_bench::report;
use e2lsh_core::dataset::Dataset;
use e2lsh_service::{
    skewed_queries, zipf_indices, AdmissionBudget, DeviceSpec, Load, ServiceConfig,
    ShardBuildConfig, ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use serde::Serialize;

#[derive(Serialize)]
struct SaturationRow {
    offered_frac: f64,
    offered_qps: f64,
    goodput_qps: f64,
    shed_rate: f64,
    peak_queue_depth: usize,
    queue_bound: usize,
    acc_p50_ms: f64,
    acc_p95_ms: f64,
    acc_p99_ms: f64,
    wait_p99_ms: f64,
    service_p99_ms: f64,
}

#[derive(Serialize)]
struct BatchRow {
    batch_size: usize,
    zipf_s: f64,
    dedup_rate: f64,
    batch_probes: u64,
    per_query_probes: u64,
    probe_saving: f64,
    batch_p99_ms: f64,
}

const NUM_SHARDS: usize = 2;
const QUERIES: usize = 1500;
const ZIPF_S: f64 = 1.1;
const QUEUE_BOUND: usize = 64;

fn build_service(data: &Dataset, bounded: bool) -> ShardedService {
    let shards = ShardSet::build(
        data,
        &ShardBuildConfig {
            num_shards: NUM_SHARDS,
            seed: 99,
            dir: std::env::temp_dir()
                .join(format!("e2lsh-serve-saturation-{}", std::process::id())),
            cache_blocks: 1 << 16, // 32 MiB of 512-byte blocks per shard
            ..Default::default()
        },
        e2lsh_bench::prep::e2lsh_params,
    )
    .expect("shard build");
    ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 4,
            contexts_per_worker: 32,
            k: 1,
            s_override: None,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::CSSD,
                num_devices: 2,
            },
            admission: if bounded {
                AdmissionBudget::depth(QUEUE_BOUND).into()
            } else {
                AdmissionBudget::UNBOUNDED.into()
            },
            ..Default::default()
        },
    )
}

fn main() {
    report::banner(
        "serve_saturation",
        "beyond the paper: admission control",
        "Goodput, shed rate and accepted-request p50/p95/p99 vs offered \
         open-loop rate through and past capacity (SIFT, cSSD×2 per \
         shard, 32 MiB cache, Zipf reads, per-shard queue bound 64); \
         plus query_batch dedup savings on duplicate-heavy batches.",
    );
    let w = workload_sized(DatasetId::Sift, 12_000, 100);
    let queries = skewed_queries(&w.queries, QUERIES, ZIPF_S, 7);
    let mut artifact = report::BenchArtifact::new("serve_saturation");

    // Capacity: closed loop, window under the queue bound.
    let svc = build_service(&w.data, true);
    let cap = svc.serve(&queries, Load::Closed { window: 48 });
    let capacity = cap.qps();
    println!("measured capacity (closed loop, window 48): {capacity:.0} QPS\n");

    println!(
        "{:>8} {:>10} {:>10} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "offered",
        "off QPS",
        "goodput",
        "shed%",
        "peakQ",
        "a-p50",
        "a-p95",
        "a-p99",
        "wait-p99",
        "svc-p99"
    );
    for frac in [0.5, 0.8, 1.0, 1.25, 1.5, 2.0] {
        let rate = capacity * frac;
        let rep = svc.serve(
            &queries,
            Load::Open {
                rate_qps: rate,
                seed: 13,
            },
        );
        let lat = rep.latency();
        let wait = rep.queue_wait();
        let svc_lat = rep.service_latency();
        let row = SaturationRow {
            offered_frac: frac,
            offered_qps: rate,
            goodput_qps: rep.goodput(),
            shed_rate: rep.shed_rate(),
            peak_queue_depth: rep.peak_queue_depth,
            queue_bound: QUEUE_BOUND,
            acc_p50_ms: lat.p50 * 1e3,
            acc_p95_ms: lat.p95 * 1e3,
            acc_p99_ms: lat.p99 * 1e3,
            wait_p99_ms: wait.p99 * 1e3,
            service_p99_ms: svc_lat.p99 * 1e3,
        };
        println!(
            "{:>7.2}x {:>10.0} {:>10.0} {:>6.1}% {:>6} {:>9} {:>9} {:>9} {:>9} {:>9}",
            row.offered_frac,
            row.offered_qps,
            row.goodput_qps,
            row.shed_rate * 100.0,
            row.peak_queue_depth,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p95),
            report::fmt_time(lat.p99),
            report::fmt_time(wait.p99),
            report::fmt_time(svc_lat.p99),
        );
        assert!(
            rep.peak_queue_depth <= QUEUE_BOUND,
            "queue bound violated: {} > {QUEUE_BOUND}",
            rep.peak_queue_depth
        );
        if frac >= 1.5 {
            assert!(rep.shed_rate() > 0.0, "no shedding at {frac}× capacity");
        }
        report::record("serve_saturation", &row);
        artifact.push("saturation", &row);
        if frac >= 2.0 {
            // Representative snapshot: the deepest-overload run, where
            // shed counters and wait histograms are most interesting.
            artifact.attach_service(e2lsh_service::report_json(&rep));
        }
    }

    svc.shards().cleanup();

    // Part 2: batched serving with hot-query dedup. Unbounded
    // admission: a whole batch hits the queues at one instant, and a
    // shed unique query would issue zero probes — silently inflating
    // the measured "dedup saving". This part isolates dedup.
    let svc = build_service(&w.data, false);
    println!("\nBatched serving (query_batch, Zipf-duplicate batches):");
    println!(
        "{:>7} {:>7} {:>8} {:>12} {:>12} {:>8} {:>10}",
        "batch", "zipf s", "dedup%", "batch N_IO", "1-by-1 N_IO", "saving", "b-p99"
    );
    for (batch_size, s) in [(64usize, 1.0), (256, 1.2), (1024, 1.4)] {
        let picks = zipf_indices(w.queries.len(), batch_size, s, 17);
        let mut batch = Dataset::with_capacity(w.queries.dim(), batch_size);
        for &i in &picks {
            batch.push(w.queries.point(i));
        }
        let brep = svc.query_batch(&batch);
        assert_eq!(brep.shed, 0, "unbounded batch serving must not shed");
        let qrep = svc.serve(&batch, Load::Closed { window: 48 });
        let saving = 1.0 - brep.total_io as f64 / qrep.total_io.max(1) as f64;
        let row = BatchRow {
            batch_size,
            zipf_s: s,
            dedup_rate: brep.dedup_rate(),
            batch_probes: brep.total_io,
            per_query_probes: qrep.total_io,
            probe_saving: saving,
            batch_p99_ms: brep.latency().p99 * 1e3,
        };
        println!(
            "{:>7} {:>7.1} {:>7.1}% {:>12} {:>12} {:>7.1}% {:>10}",
            row.batch_size,
            row.zipf_s,
            row.dedup_rate * 100.0,
            row.batch_probes,
            row.per_query_probes,
            row.probe_saving * 100.0,
            report::fmt_time(brep.latency().p99),
        );
        assert!(
            brep.total_io <= qrep.total_io,
            "dedup must never cost extra probes"
        );
        report::record("serve_saturation_batch", &row);
        artifact.push("batch", &row);
    }
    svc.shards().cleanup();
    artifact.write();
}
