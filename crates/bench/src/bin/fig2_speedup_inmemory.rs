//! **Figure 2** — Speedup gains of in-memory E2LSH over SRS and QALSH
//! (query-time ratio at equal accuracy, overall ratio 1.05, top-1).

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::{sweep_e2lsh_mem, sweep_qalsh, sweep_srs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    e2lsh_us: f64,
    srs_us: f64,
    qalsh_us: f64,
    speedup_srs: f64,
    speedup_qalsh: f64,
}

fn main() {
    let target = 1.05;
    report::banner(
        "fig2_speedup_inmemory",
        "Figure 2",
        "In-memory E2LSH speedup over SRS / QALSH at overall ratio 1.05 (k = 1).",
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "Dataset", "E2LSH", "SRS", "QALSH", "vs SRS", "vs QALSH"
    );
    for id in DatasetId::ALL {
        let w = workload(id);
        let e2 = sweep_e2lsh_mem(&w, 1, false);
        let srs = sweep_srs(&w, 1);
        let qalsh = sweep_qalsh(&w, 1);
        let te = e2.curve.time_at_ratio(target);
        let ts = srs.time_at_ratio(target);
        let tq = qalsh.time_at_ratio(target);
        let row = Row {
            dataset: id.name(),
            e2lsh_us: te * 1e6,
            srs_us: ts * 1e6,
            qalsh_us: tq * 1e6,
            speedup_srs: ts / te,
            speedup_qalsh: tq / te,
        };
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>9.1}x {:>11.1}x",
            row.dataset,
            report::fmt_time(te),
            report::fmt_time(ts),
            report::fmt_time(tq),
            row.speedup_srs,
            row.speedup_qalsh
        );
        report::record("fig2_speedup_inmemory", &row);
    }
    println!("\npaper (n up to 10^8): speedups consistently > 1, often 10–100×;");
    println!("at laptop scale the linear-time baselines lose less ground, so the");
    println!("gaps are compressed but the ordering (E2LSH fastest, QALSH slowest) holds.");
}
