//! **Table 2** — Storage devices and their random read performance
//! (kIOPS at queue depth 1 and 128, 512-byte reads).
//!
//! The paper measures real drives; here the discrete-event device models
//! are driven with a closed-loop random-read workload at each queue depth,
//! verifying that the models reproduce the calibration points.

use e2lsh_bench::report;
use e2lsh_storage::device::sim::{measure_iops, DeviceProfile};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: &'static str,
    qd1_kiops: f64,
    qd128_kiops: f64,
    paper_qd1: f64,
    paper_qd128: f64,
}

fn main() {
    report::banner(
        "table2_devices",
        "Table 2",
        "Random-read performance of the simulated devices vs the paper's measurements.",
    );
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "Device", "QD1 kIOPS", "QD128 kIOPS", "paper QD1", "paper QD128"
    );
    for p in [
        DeviceProfile::CSSD,
        DeviceProfile::ESSD,
        DeviceProfile::XLFDD,
        DeviceProfile::HDD,
    ] {
        let qd1 = measure_iops(p, 1, 1) / 1e3;
        let qd128 = measure_iops(p, 1, 128) / 1e3;
        println!(
            "{:<8} {:>12.2} {:>12.1} {:>12.2} {:>12.1}",
            p.name, qd1, qd128, p.qd1_kiops, p.max_kiops
        );
        report::record(
            "table2_devices",
            &Row {
                device: p.name,
                qd1_kiops: qd1,
                qd128_kiops: qd128,
                paper_qd1: p.qd1_kiops,
                paper_qd128: p.max_kiops,
            },
        );
    }
}
