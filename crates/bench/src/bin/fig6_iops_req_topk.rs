//! **Figures 6 and 8** — Required storage IOPS for varying `k` in top-k
//! ANNS on SIFT: Figure 6 targets SRS speeds (Eq. 13), Figure 8 targets
//! in-memory E2LSH speeds (Eq. 15).
//!
//! One index build per γ serves every k.

use ann_baselines::srs::{Srs, SrsConfig};
use ann_datasets::suite::DatasetId;
use e2lsh_analysis::required_iops;
use e2lsh_bench::prep::{e2lsh_params_gamma, gamma_schedule, workload};
use e2lsh_bench::report;
use e2lsh_bench::sweep::{measure_e2lsh_mem, sweep_srs_prebuilt};
use e2lsh_core::index::MemIndex;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: usize,
    gamma: f64,
    ratio: f64,
    n_io: f64,
    kiops_vs_srs: f64,
    kiops_vs_inmem: f64,
}

fn main() {
    report::banner(
        "fig6_fig8_iops_req_topk",
        "Figures 6 and 8",
        "Required kIOPS vs accuracy for k in {1,5,10,50,100} (SIFT, B = 512 B).",
    );
    let w = workload(DatasetId::Sift);
    let ks = [1usize, 5, 10, 50, 100];
    let srs = Srs::build(
        &w.data,
        SrsConfig {
            early_stop: false,
            ..Default::default()
        },
    );
    println!(
        "{:>4} {:>6} {:>8} {:>9} {:>14} {:>16}",
        "k", "gamma", "ratio", "N_IO", "kIOPS(SRS)", "kIOPS(in-mem)"
    );
    for &(gamma, s_mult) in &gamma_schedule() {
        let params = e2lsh_params_gamma(&w.data, gamma);
        let index = MemIndex::build(&w.data, &params, 7);
        for &k in &ks {
            let (point, stats) = measure_e2lsh_mem(&index, &w, k, s_mult, true);
            let srs_curve = sweep_srs_prebuilt(&srs, &w, k);
            let t_srs = srs_curve.time_at_ratio(point.ratio);
            let nq = w.queries.len() as f64;
            let n_io = stats.n_io_block(128) as f64 / nq;
            let row = Row {
                k,
                gamma: gamma as f64,
                ratio: point.ratio,
                n_io,
                kiops_vs_srs: required_iops(n_io, t_srs) / 1e3,
                kiops_vs_inmem: required_iops(n_io, point.query_time) / 1e3,
            };
            println!(
                "{:>4} {:>6.2} {:>8.4} {:>9.1} {:>14.1} {:>16.1}",
                row.k, row.gamma, row.ratio, row.n_io, row.kiops_vs_srs, row.kiops_vs_inmem
            );
            report::record("fig6_fig8_iops_req_topk", &row);
        }
    }
    println!("\npaper shape: larger k raises the requirement in the high-accuracy");
    println!("region but never far above the low-accuracy k = 1 level (Fig. 6);");
    println!("the in-memory-speed requirement stays a few MIOPS for all k (Fig. 8).");
}
