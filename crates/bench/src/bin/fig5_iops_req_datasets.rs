//! **Figure 5** — Required storage IOPS for in-memory SRS speeds across
//! all datasets (block size 512 B; Equation 13).

use ann_datasets::suite::DatasetId;
use e2lsh_analysis::required_iops;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::{sweep_e2lsh_mem, sweep_srs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    ratio: f64,
    n_io: f64,
    t_srs_us: f64,
    kiops: f64,
}

fn main() {
    report::banner(
        "fig5_iops_req_datasets",
        "Figure 5",
        "Required kIOPS for SRS speeds, all datasets, B = 512 B (Eq. 13).",
    );
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>10}",
        "Dataset", "ratio", "N_IO", "T_SRS", "kIOPS"
    );
    for id in DatasetId::ALL {
        let w = workload(id);
        let e2 = sweep_e2lsh_mem(&w, 1, true);
        let srs = sweep_srs(&w, 1);
        let nq = w.queries.len() as f64;
        for (point, stats) in e2.curve.points.iter().zip(&e2.stats) {
            let n_io = stats.n_io_block(128) as f64 / nq; // 512 B / 4 B
            let t_srs = srs.time_at_ratio(point.ratio);
            let row = Row {
                dataset: id.name(),
                ratio: point.ratio,
                n_io,
                t_srs_us: t_srs * 1e6,
                kiops: required_iops(n_io, t_srs) / 1e3,
            };
            println!(
                "{:<8} {:>8.4} {:>10.1} {:>12} {:>10.1}",
                row.dataset,
                row.ratio,
                row.n_io,
                report::fmt_time(t_srs),
                row.kiops
            );
            report::record("fig5_iops_req_datasets", &row);
        }
    }
    println!("\npaper shape: ≤ a few hundred kIOPS for every dataset and accuracy —");
    println!("within a single consumer NVMe SSD's asynchronous random-read envelope.");
}
