//! **Churn serving** — space reclamation under sustained
//! delete-reinsert load.
//!
//! The paper's index is append-only; PR 7 adds block free-lists,
//! filter-bit GC, and online compaction so a mutable deployment does
//! not leak space. This experiment is the end-to-end check: a sharded
//! service holds its live set constant while a 50/50 delete-reinsert
//! stream churns ~40% of ops per cycle, with background maintenance
//! enabled (budgeted blocks per writer tick).
//!
//! Three acceptance properties are asserted, not just reported:
//!
//! 1. **space plateau** — on-disk bytes stay within 2× of the
//!    post-build footprint, and second-half growth does not exceed
//!    first-half growth (reuse catches up with churn);
//! 2. **read latency holds** — a post-churn read-only p99 stays within
//!    10% of the pre-churn baseline (compacted chains, GC'd filters);
//! 3. **the counters flow** — `blocks_reclaimed` and
//!    `filter_bits_cleared` are non-zero in the archived service
//!    report.

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload_sized;
use e2lsh_bench::report;
use e2lsh_service::{
    mixed_ops_resuming, skewed_queries, DeviceSpec, Load, Op, ServiceConfig, ShardBuildConfig,
    ShardSet, ShardedService,
};
use e2lsh_storage::device::sim::DeviceProfile;
use serde::Serialize;

#[derive(Serialize)]
struct CycleRow {
    cycle: usize,
    inserts: usize,
    deletes: usize,
    live: usize,
    qps: f64,
    read_p50_ms: f64,
    read_p99_ms: f64,
    write_p99_ms: f64,
    cache_hit_rate: f64,
    blocks_reclaimed: u64,
    filter_bits_cleared: u64,
    bytes_reclaimed: u64,
    chain_inconsistencies: u64,
    /// Sum of shard index file sizes after the cycle (the plateau
    /// metric: reuse keeps this flat once reclamation catches up).
    disk_bytes: u64,
}

#[derive(Serialize)]
struct SummaryRow {
    baseline_read_p99_ms: f64,
    churned_read_p99_ms: f64,
    read_p99_ratio: f64,
    disk_bytes_initial: u64,
    disk_bytes_final: u64,
    disk_growth_ratio: f64,
    total_blocks_reclaimed: u64,
    total_filter_bits_cleared: u64,
    total_bytes_reclaimed: u64,
}

const NUM_SHARDS: usize = 2;
const N: usize = 10_000;
const CYCLES: usize = 6;
const QUERIES_PER_CYCLE: usize = 500;
const READ_QUERIES: usize = 1200;
const WARMUP_QUERIES: usize = 400;
const WRITE_FRACTION: f64 = 0.4;
const DELETE_FRACTION: f64 = 0.5;
const POOL_PER_CYCLE: usize = 400;
const POOL_TOTAL: usize = CYCLES * POOL_PER_CYCLE;
const ZIPF_S: f64 = 1.1;
const MAINT_BUDGET: usize = 256;

fn main() {
    report::banner(
        "serve_churn",
        "beyond the paper: space reclamation",
        "Constant live set under 50/50 delete-reinsert churn with \
         background maintenance (SIFT, cSSD×2 per shard, 32 MiB DRAM \
         cache per shard, closed loop). Asserts the disk-bytes plateau, \
         post-churn read p99 within 10% of baseline, and non-zero \
         reclamation counters.",
    );
    let w = workload_sized(DatasetId::Sift, N + POOL_TOTAL, 100);
    let data = w.data.prefix(N);
    let read_queries = skewed_queries(&w.queries, READ_QUERIES, ZIPF_S, 7);
    let warmup_queries = skewed_queries(&w.queries, WARMUP_QUERIES, ZIPF_S, 3);
    let mut artifact = report::BenchArtifact::new("serve_churn");

    let shards = ShardSet::build(
        &data,
        &ShardBuildConfig {
            num_shards: NUM_SHARDS,
            seed: 99,
            dir: std::env::temp_dir().join(format!("e2lsh-serve-churn-{}", std::process::id())),
            cache_blocks: 1 << 16, // 32 MiB of 512-byte blocks per shard
            capacity: Some(2 * (N + POOL_TOTAL) / NUM_SHARDS),
            ..Default::default()
        },
        e2lsh_bench::prep::e2lsh_params,
    )
    .expect("shard build");
    let svc = ShardedService::new(
        shards,
        ServiceConfig {
            workers_per_replica: 4,
            contexts_per_worker: 32,
            k: 1,
            s_override: None,
            device: DeviceSpec::SimShared {
                profile: DeviceProfile::CSSD,
                num_devices: 2,
            },
            maintenance_blocks_per_tick: MAINT_BUDGET,
            ..Default::default()
        },
    );

    // Pre-churn baseline: one warmup pass to fill the cache, then the
    // measured read-only run.
    svc.serve(&warmup_queries, Load::Closed { window: 64 });
    let base = svc.serve(&read_queries, Load::Closed { window: 64 });
    let base_p99 = base.latency().p99;
    let bytes0 = disk_bytes(&svc);
    println!(
        "baseline: read p99 {} over {READ_QUERIES} queries, {bytes0} bytes on disk\n",
        report::fmt_time(base_p99)
    );

    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>12}",
        "cycle",
        "ins",
        "del",
        "live",
        "QPS",
        "r-p50",
        "r-p99",
        "w-p99",
        "blocks",
        "fbits",
        "cache",
        "disk-bytes"
    );
    // Live-set mirror: churn streams are generated with
    // `mixed_ops_resuming` and replayed locally so each cycle's
    // generator sees the ids the previous cycles actually left alive.
    let mut live: Vec<u32> = (0..N as u32).collect();
    let mut next_id = N as u32;
    let mut disk_per_cycle = Vec::with_capacity(CYCLES);
    let mut totals = (0u64, 0u64, 0u64); // blocks, filter bits, bytes
    let mut best_report = None;
    for cycle in 0..CYCLES {
        let pool = pool_slice(&w.data, N + cycle * POOL_PER_CYCLE, POOL_PER_CYCLE);
        let queries = skewed_queries(&w.queries, QUERIES_PER_CYCLE, ZIPF_S, 70 + cycle as u64);
        let wl = mixed_ops_resuming(
            QUERIES_PER_CYCLE,
            WRITE_FRACTION,
            DELETE_FRACTION,
            live.clone(),
            next_id,
            POOL_PER_CYCLE,
            11 + cycle as u64,
        );
        for op in &wl.ops {
            match *op {
                Op::Insert(_) => {
                    live.push(next_id);
                    next_id += 1;
                }
                Op::Delete(g) => {
                    let at = live
                        .iter()
                        .position(|&id| id == g)
                        .expect("delete of live id");
                    live.swap_remove(at);
                }
                Op::Query(_) => {}
            }
        }
        let rep = svc.serve_mixed(&queries, &pool, &wl.ops, Load::Closed { window: 64 });
        assert_eq!(rep.writes_failed, 0, "cycle {cycle}: writes must not fail");
        let lat = rep.latency();
        let row = CycleRow {
            cycle,
            inserts: wl.num_inserts,
            deletes: wl.num_deletes,
            live: live.len(),
            qps: rep.qps(),
            read_p50_ms: lat.p50 * 1e3,
            read_p99_ms: lat.p99 * 1e3,
            write_p99_ms: rep.write_latency().p99 * 1e3,
            cache_hit_rate: rep.device.cache_hit_rate(),
            blocks_reclaimed: rep.device.blocks_reclaimed,
            filter_bits_cleared: rep.device.filter_bits_cleared,
            bytes_reclaimed: rep.device.bytes_reclaimed,
            chain_inconsistencies: rep.device.chain_inconsistencies,
            disk_bytes: disk_bytes(&svc),
        };
        assert_eq!(
            row.chain_inconsistencies, 0,
            "cycle {cycle}: healthy churn must not hit inconsistent chains"
        );
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>8.0} {:>9} {:>9} {:>9} {:>8} {:>8} {:>7.1}% {:>12}",
            row.cycle,
            row.inserts,
            row.deletes,
            row.live,
            row.qps,
            report::fmt_time(lat.p50),
            report::fmt_time(lat.p99),
            report::fmt_time(rep.write_latency().p99),
            row.blocks_reclaimed,
            row.filter_bits_cleared,
            row.cache_hit_rate * 100.0,
            row.disk_bytes,
        );
        totals.0 += row.blocks_reclaimed;
        totals.1 += row.filter_bits_cleared;
        totals.2 += row.bytes_reclaimed;
        disk_per_cycle.push(row.disk_bytes);
        if best_report
            .as_ref()
            .map(|(b, _)| row.blocks_reclaimed > *b)
            .unwrap_or(true)
        {
            best_report = Some((row.blocks_reclaimed, e2lsh_service::report_json(&rep)));
        }
        report::record("serve_churn", &row);
        artifact.push("churn", &row);
    }

    // Post-churn read latency, against a cache re-warmed the same way
    // the baseline's was (churn invalidated the deleted keys' blocks).
    svc.serve(&warmup_queries, Load::Closed { window: 64 });
    let churned = svc.serve(&read_queries, Load::Closed { window: 64 });
    let churned_p99 = churned.latency().p99;

    let bytes_final = *disk_per_cycle.last().unwrap();
    let summary = SummaryRow {
        baseline_read_p99_ms: base_p99 * 1e3,
        churned_read_p99_ms: churned_p99 * 1e3,
        read_p99_ratio: churned_p99 / base_p99,
        disk_bytes_initial: bytes0,
        disk_bytes_final: bytes_final,
        disk_growth_ratio: bytes_final as f64 / bytes0 as f64,
        total_blocks_reclaimed: totals.0,
        total_filter_bits_cleared: totals.1,
        total_bytes_reclaimed: totals.2,
    };
    println!(
        "\nsummary: read p99 {} -> {} ({:.2}x), disk {} -> {} bytes ({:.2}x), \
         {} blocks / {} filter bits / {} bytes reclaimed",
        report::fmt_time(base_p99),
        report::fmt_time(churned_p99),
        summary.read_p99_ratio,
        bytes0,
        bytes_final,
        summary.disk_growth_ratio,
        totals.0,
        totals.1,
        totals.2,
    );
    report::record("serve_churn", &summary);
    artifact.push("summary", &summary);
    artifact.attach_service(best_report.expect("at least one cycle ran").1);

    // 1. Space plateau: the live set never grew, so the footprint must
    //    stay within 2× of the post-build bytes, and growth must decay
    //    (second-half growth bounded by first-half growth plus a few
    //    blocks of slack per shard for cursor-position noise).
    assert!(
        bytes_final <= 2 * bytes0,
        "no plateau: disk grew {bytes0} -> {bytes_final} (> 2x) under a constant live set"
    );
    let half = CYCLES / 2;
    let first_half = disk_per_cycle[half - 1].saturating_sub(bytes0);
    let second_half = bytes_final.saturating_sub(disk_per_cycle[half - 1]);
    let slack = (16 * NUM_SHARDS * 512) as u64;
    assert!(
        second_half <= first_half + slack,
        "growth is not decaying: first half +{first_half} B, second half +{second_half} B"
    );
    // 2. Read latency holds after churn + maintenance (10% + a small
    //    absolute floor so a sub-100µs baseline doesn't flake).
    assert!(
        churned_p99 <= base_p99 * 1.10 + 1e-4,
        "post-churn read p99 {} exceeds 110% of baseline {}",
        report::fmt_time(churned_p99),
        report::fmt_time(base_p99)
    );
    // 3. Maintenance actually ran and reclaimed.
    assert!(totals.0 > 0, "churn reclaimed no blocks");
    assert!(totals.1 > 0, "churn cleared no filter bits");

    svc.shards().cleanup();
    artifact.write();
}

/// Sum of the shard index file sizes on disk.
fn disk_bytes(svc: &ShardedService) -> u64 {
    svc.shards()
        .shards()
        .iter()
        .map(|s| std::fs::metadata(&s.path).map(|m| m.len()).unwrap_or(0))
        .sum()
}

/// `count` pool points starting at dataset row `start`.
fn pool_slice(
    all: &e2lsh_core::dataset::Dataset,
    start: usize,
    count: usize,
) -> e2lsh_core::dataset::Dataset {
    let mut out = e2lsh_core::dataset::Dataset::with_capacity(all.dim(), count);
    for i in start..start + count {
        out.push(all.point(i));
    }
    out
}
