//! **Figure 12** — Per-query time split into CPU I/O cost vs computation
//! for in-memory / io_uring / SPDK / XLFDD (SIFT on eSSD×8, so device
//! IOPS is never the limiter).

use ann_datasets::suite::DatasetId;
use e2lsh_bench::prep::workload;
use e2lsh_bench::report;
use e2lsh_bench::sweep::{measure_e2lshos, sweep_e2lsh_mem, StorageConfig};
use e2lsh_storage::device::sim::DeviceProfile;
use e2lsh_storage::device::Interface;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: &'static str,
    io_cost_us: f64,
    compute_us: f64,
    total_us: f64,
}

fn main() {
    report::banner(
        "fig12_io_cost_breakdown",
        "Figure 12",
        "CPU I/O cost vs computation per query (SIFT, eSSD×8, γ = 0.7).",
    );
    let w = workload(DatasetId::Sift);
    let gamma = 0.7f32;
    let s_mult = 8.0;
    println!(
        "{:<12} {:>12} {:>14} {:>12}",
        "Interface", "I/O cost", "Computation", "Total"
    );
    for iface in [Interface::IO_URING, Interface::SPDK, Interface::XLFDD] {
        let storage = StorageConfig {
            profile: DeviceProfile::ESSD,
            num_devices: 8,
            interface: iface,
        };
        let (_, rep) = measure_e2lshos(&w, 1, gamma, s_mult, storage, None);
        let nq = rep.outcomes.len() as f64;
        let row = Row {
            config: iface.name,
            io_cost_us: rep.cpu_io / nq * 1e6,
            compute_us: rep.cpu_compute / nq * 1e6,
            total_us: rep.mean_query_time() * 1e6,
        };
        println!(
            "{:<12} {:>12} {:>14} {:>12}",
            row.config,
            report::fmt_time(rep.cpu_io / nq),
            report::fmt_time(rep.cpu_compute / nq),
            report::fmt_time(rep.mean_query_time())
        );
        report::record("fig12_io_cost_breakdown", &row);
    }
    // In-memory reference: no I/O cost at all.
    let mem = sweep_e2lsh_mem(&w, 1, false);
    let p = mem
        .curve
        .points
        .iter()
        .find(|p| (p.knob - gamma as f64).abs() < 1e-6)
        .expect("gamma in schedule");
    println!(
        "{:<12} {:>12} {:>14} {:>12}",
        "In-memory",
        "0 ns",
        report::fmt_time(p.query_time),
        report::fmt_time(p.query_time)
    );
    report::record(
        "fig12_io_cost_breakdown",
        &Row {
            config: "in-memory",
            io_cost_us: 0.0,
            compute_us: p.query_time * 1e6,
            total_us: p.query_time * 1e6,
        },
    );
    println!("\npaper shape: the I/O bar shrinks io_uring → SPDK → XLFDD;");
    println!("with XLFDD the breakdown approaches the in-memory profile.");
}
