//! Criterion microbenchmarks for the hot kernels and substrates, plus
//! ablation benches for the design choices called out in DESIGN.md §5
//! (fingerprint filtering, context interleaving, block size).

use ann_baselines::bptree::BPlusTree;
use ann_baselines::rtree::RTree;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::{dist2, dot};
use e2lsh_core::index::MemIndex;
use e2lsh_core::lsh::CompoundHash;
use e2lsh_core::params::E2lshParams;
use e2lsh_core::search::{knn_search, SearchOptions};
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, IoRequest};
use e2lsh_storage::layout::{BucketBlock, EntryCodec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(42)
}

fn bench_kernels(c: &mut Criterion) {
    let mut r = rng();
    let a: Vec<f32> = (0..128).map(|_| r.gen()).collect();
    let b: Vec<f32> = (0..128).map(|_| r.gen()).collect();
    c.bench_function("dot_128d", |bench| {
        bench.iter(|| dot(black_box(&a), black_box(&b)))
    });
    c.bench_function("dist2_128d", |bench| {
        bench.iter(|| dist2(black_box(&a), black_box(&b)))
    });
    let ch = CompoundHash::generate(128, 12, 2.0, &mut r);
    let mut scratch = Vec::new();
    c.bench_function("compound_hash_m12_d128", |bench| {
        bench.iter(|| ch.hash64(black_box(&a), 4.0, &mut scratch))
    });
}

fn bench_block_codec(c: &mut Criterion) {
    let codec = EntryCodec::new(1_000_000, 14);
    let block = BucketBlock {
        next: 12345,
        entries: (0..99u32).map(|i| (i * 31, i & codec.fp_mask())).collect(),
    };
    let mut buf = Vec::new();
    block.encode(&codec, &mut buf);
    c.bench_function("bucket_block_encode", |bench| {
        bench.iter_batched(
            Vec::new,
            |mut out| block.encode(&codec, &mut out),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("bucket_block_decode", |bench| {
        bench.iter(|| BucketBlock::decode(&codec, black_box(&buf)))
    });
}

fn bench_device_sim(c: &mut Criterion) {
    c.bench_function("simdevice_submit_poll", |bench| {
        let mut dev = SimStorage::new(DeviceProfile::ESSD, 1, Backing::Mem(vec![0u8; 1 << 20]));
        let mut now = 0.0f64;
        let mut out = Vec::new();
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            dev.submit(
                IoRequest {
                    addr: (i * 512 * 13) % (1 << 20),
                    len: 512,
                    tag: i,
                },
                now,
            );
            if dev.inflight() > 64 {
                now = dev.next_completion_time().unwrap();
                out.clear();
                dev.poll(now, &mut out);
            }
        })
    });
}

fn small_workload() -> (Dataset, Vec<f32>, MemIndex) {
    let mut r = rng();
    let centers: Vec<Vec<f32>> = (0..8)
        .map(|_| (0..32).map(|_| r.gen::<f32>() * 50.0).collect())
        .collect();
    let mut ds = Dataset::with_capacity(32, 4000);
    let mut p = vec![0.0f32; 32];
    for _ in 0..4000 {
        let c = &centers[r.gen_range(0..8usize)];
        for (v, &cv) in p.iter_mut().zip(c) {
            *v = cv + r.gen::<f32>() - 0.5;
        }
        ds.push(&p);
    }
    let params =
        E2lshParams::derive_practical(ds.len(), 2.0, 2.0, 0.8, 0.3, ds.max_abs_coord(), 32);
    let index = MemIndex::build(&ds, &params, 7);
    let q = ds.point(0).to_vec();
    (ds, q, index)
}

fn bench_query(c: &mut Criterion) {
    let (ds, q, index) = small_workload();
    let opts = SearchOptions::default();
    c.bench_function("mem_query_top1_n4000", |bench| {
        bench.iter(|| knn_search(&index, &ds, black_box(&q), 1, &opts))
    });
}

fn bench_substrates(c: &mut Criterion) {
    let mut r = rng();
    let pts: Vec<f32> = (0..8 * 20_000).map(|_| r.gen::<f32>() * 100.0).collect();
    let tree = RTree::bulk_load(8, pts);
    let q = vec![50.0f32; 8];
    c.bench_function("rtree_nn_first10_n20000", |bench| {
        bench.iter(|| {
            let mut it = tree.nn_iter(black_box(&q));
            for _ in 0..10 {
                black_box(it.next());
            }
        })
    });
    let pairs: Vec<(f32, u32)> = (0..100_000).map(|i| (r.gen(), i)).collect();
    let bpt = BPlusTree::bulk_load(pairs);
    c.bench_function("bptree_cursor_walk100_n100000", |bench| {
        bench.iter(|| {
            let mut cur = bpt.cursor(black_box(0.5));
            for _ in 0..50 {
                black_box(cur.next_right());
                black_box(cur.next_left());
            }
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_kernels, bench_block_codec, bench_device_sim, bench_query, bench_substrates
);
criterion_main!(benches);
