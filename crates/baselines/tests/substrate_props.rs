//! Property-based tests for the index substrates: the R-tree's
//! incremental NN must enumerate points in exactly sorted distance order,
//! and the B+-tree cursor must enumerate keys in sorted order around any
//! center.

use ann_baselines::bptree::BPlusTree;
use ann_baselines::rtree::RTree;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// R-tree incremental NN == full sort by distance.
    #[test]
    fn rtree_nn_is_sorted_scan(
        pts in proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, 3),
            1..120,
        ),
        q in proptest::collection::vec(-100.0f32..100.0, 3),
    ) {
        let flat: Vec<f32> = pts.iter().flatten().copied().collect();
        let tree = RTree::bulk_load(3, flat);
        let got: Vec<(u32, f32)> = tree.nn_iter(&q).collect();
        prop_assert_eq!(got.len(), pts.len());
        // Distances ascending.
        for w in got.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-4);
        }
        // Same multiset of distances as brute force.
        let mut brute: Vec<f32> = pts
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&q)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f32>()
            })
            .collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, b) in got.iter().zip(&brute) {
            prop_assert!((g.1 - b).abs() <= 1e-3 * (1.0 + b.abs()));
        }
    }

    /// B+-tree bidirectional cursor == sorted order around the center.
    #[test]
    fn bptree_cursor_is_sorted_partition(
        keys in proptest::collection::vec(-1e6f32..1e6, 0..400),
        center in -1e6f32..1e6,
    ) {
        let pairs: Vec<(f32, u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let tree = BPlusTree::bulk_load(pairs);
        let mut cur = tree.cursor(center);
        let mut right = Vec::new();
        while let Some((k, _)) = cur.next_right() {
            right.push(k);
        }
        let mut left = Vec::new();
        while let Some((k, _)) = cur.next_left() {
            left.push(k);
        }
        // Partition property.
        for &k in &right {
            prop_assert!(k >= center);
        }
        for &k in &left {
            prop_assert!(k < center);
        }
        prop_assert_eq!(right.len() + left.len(), keys.len());
        // Order property.
        for w in right.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for w in left.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }
}
