//! QALSH — query-aware locality-sensitive hashing (Huang, Feng, Zhang,
//! Fang, Ng; VLDB 2015).
//!
//! QALSH uses *query-aware* hash functions `h_i(o) = a_i·o` (no random
//! shift, no flooring): the bucket of width `w` is anchored **at the
//! query's own projection** at query time. One B+-tree per hash function
//! indexes the projections of all objects. A query proceeds in rounds of
//! *virtual rehashing* with radius `R = 1, c, c², …`: in round `R`, object
//! `o` collides with `q` under `h_i` if `|h_i(o) − h_i(q)| ≤ w·R/2`, and
//! an object that collides in at least `l` of the `K` hash functions
//! (collision counting) becomes a candidate whose true distance is
//! computed. The round ends like the `(R, c)`-NN reduction: when `k`
//! results within `c·R` exist, or when the candidate budget
//! (`β·n + k − 1`) is exhausted.
//!
//! Both the index size and query time are `O(n log n)` — the
//! "small-index" regime. Parameters follow the QALSH paper: the bucket
//! width `w = √(8c²·ln c/(c²−1))` minimizes ρ; `K` and the collision
//! threshold `l` come from the Chernoff-bound construction with false-
//! positive rate `β` and error probability `δ`.

use crate::bptree::BPlusTree;
use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::{dist2, dot};
use e2lsh_core::lsh::sample_standard_normal;
use e2lsh_core::math::normal_cdf;
use e2lsh_core::search::TopK;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// QALSH configuration.
#[derive(Clone, Debug)]
pub struct QalshConfig {
    /// Approximation ratio `c` (the accuracy knob the E2LSHoS paper
    /// tunes for QALSH, Section 3.3).
    pub c: f32,
    /// Error probability `δ` (papers use `1/2 − 1/e` success ⇒ δ ≈ 0.87
    /// failure bound per round; we default to the customary `1/e`).
    pub delta: f64,
    /// False-positive fraction `β` (fraction of `n` allowed as wasted
    /// candidates; QALSH uses `100/n`).
    pub beta_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QalshConfig {
    fn default() -> Self {
        Self {
            c: 2.0,
            delta: 1.0 / std::f64::consts::E,
            beta_count: 100,
            seed: 0x0a15,
        }
    }
}

/// Collision probability of a query-aware hash with bucket half-width
/// `w/2` for two points at distance `s`: `2Φ(w/(2s)) − 1`.
pub fn qalsh_collision_probability(w: f64, s: f64) -> f64 {
    assert!(w > 0.0 && s > 0.0);
    2.0 * normal_cdf(w / (2.0 * s)) - 1.0
}

/// Derived parameters.
#[derive(Clone, Copy, Debug)]
pub struct QalshParams {
    /// Bucket width.
    pub w: f64,
    /// Number of hash functions / B+-trees.
    pub k_funcs: usize,
    /// Collision-count threshold `l`.
    pub threshold: usize,
    /// `p1 = p(1)`, `p2 = p(c)`.
    pub p1: f64,
    pub p2: f64,
}

impl QalshParams {
    /// Derive from the config for a database of `n` objects (QALSH paper
    /// Section 5; Chernoff-bound construction).
    pub fn derive(config: &QalshConfig, n: usize) -> Self {
        let c = config.c as f64;
        assert!(c > 1.0);
        let w = (8.0 * c * c * c.ln() / (c * c - 1.0)).sqrt();
        let p1 = qalsh_collision_probability(w, 1.0);
        let p2 = qalsh_collision_probability(w, c);
        let beta = (config.beta_count as f64 / n as f64).clamp(1e-9, 0.5);
        let a = (1.0 / beta).ln().sqrt();
        let b = (1.0 / config.delta).ln().sqrt();
        let alpha = (a * p2 + b * p1) / (a + b);
        let k_funcs = ((a + b) * (a + b) / (2.0 * (p1 - p2) * (p1 - p2)))
            .ceil()
            .max(1.0) as usize;
        let threshold = ((alpha * k_funcs as f64).ceil() as usize).clamp(1, k_funcs);
        Self {
            w,
            k_funcs,
            threshold,
            p1,
            p2,
        }
    }
}

/// Per-query statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct QalshStats {
    /// Candidates whose true distance was computed.
    pub candidates: usize,
    /// Total bucket entries touched during frontier expansion.
    pub entries_scanned: usize,
    /// B+-tree node visits.
    pub node_visits: usize,
    /// Virtual-rehashing rounds performed.
    pub rounds: usize,
}

/// A QALSH index.
pub struct Qalsh {
    config: QalshConfig,
    params: QalshParams,
    /// `K × d` projection vectors.
    proj: Vec<f32>,
    dim: usize,
    trees: Vec<BPlusTree>,
    n: usize,
}

impl Qalsh {
    /// Build: one B+-tree of projections per hash function.
    pub fn build(dataset: &Dataset, config: QalshConfig) -> Self {
        let n = dataset.len();
        let dim = dataset.dim();
        let params = QalshParams::derive(&config, n);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let proj: Vec<f32> = (0..params.k_funcs * dim)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let mut trees = Vec::with_capacity(params.k_funcs);
        for j in 0..params.k_funcs {
            let a = &proj[j * dim..(j + 1) * dim];
            let pairs: Vec<(f32, u32)> = (0..n)
                .map(|i| (dot(a, dataset.point(i)), i as u32))
                .collect();
            trees.push(BPlusTree::bulk_load(pairs));
        }
        Self {
            config,
            params,
            proj,
            dim,
            trees,
            n,
        }
    }

    /// Derived parameters.
    pub fn params(&self) -> QalshParams {
        self.params
    }

    /// Index size in bytes (trees + projections), for Table 6.
    pub fn index_bytes(&self) -> usize {
        self.trees.iter().map(BPlusTree::nbytes).sum::<usize>() + self.proj.len() * 4
    }

    /// Top-`k` c-ANNS via collision counting and virtual rehashing.
    pub fn query(&self, dataset: &Dataset, q: &[f32], k: usize) -> (Vec<(u32, f32)>, QalshStats) {
        assert_eq!(q.len(), self.dim);
        let mut stats = QalshStats::default();
        let budget = self.params_budget(k);
        let qproj: Vec<f32> = (0..self.params.k_funcs)
            .map(|j| dot(&self.proj[j * self.dim..(j + 1) * self.dim], q))
            .collect();
        let mut cursors: Vec<_> = (0..self.params.k_funcs)
            .map(|j| self.trees[j].cursor(qproj[j]))
            .collect();
        let mut counts = vec![0u16; self.n];
        let mut checked = vec![false; self.n];
        let mut topk = TopK::new(k);
        let c = self.config.c;
        let mut radius = 1.0f32;
        let threshold = self.params.threshold as u16;

        loop {
            stats.rounds += 1;
            let half_width = (self.params.w as f32) * radius / 2.0;
            // Expand every tree's frontier to ±half_width around q's
            // projection, counting collisions.
            for (j, cur) in cursors.iter_mut().enumerate() {
                let center = qproj[j];
                loop {
                    match cur.peek_right() {
                        Some(key) if key - center <= half_width => {
                            let (_, id) = cur.next_right().expect("peeked");
                            stats.entries_scanned += 1;
                            bump(
                                id,
                                &mut counts,
                                &mut checked,
                                threshold,
                                dataset,
                                q,
                                &mut topk,
                                &mut stats,
                            );
                        }
                        _ => break,
                    }
                    if stats.candidates >= budget {
                        break;
                    }
                }
                loop {
                    match cur.peek_left() {
                        Some(key) if center - key <= half_width => {
                            let (_, id) = cur.next_left().expect("peeked");
                            stats.entries_scanned += 1;
                            bump(
                                id,
                                &mut counts,
                                &mut checked,
                                threshold,
                                dataset,
                                q,
                                &mut topk,
                                &mut stats,
                            );
                        }
                        _ => break,
                    }
                    if stats.candidates >= budget {
                        break;
                    }
                }
                if stats.candidates >= budget {
                    break;
                }
            }
            // Termination: (R, c)-NN success or budget exhausted or the
            // frontier has consumed the whole database in every tree.
            let c_r = c * radius;
            let success = topk.len() >= k && topk.worst_d2() <= c_r * c_r;
            let exhausted =
                stats.candidates >= budget || stats.entries_scanned >= self.n * self.params.k_funcs;
            if success || exhausted {
                break;
            }
            radius *= c;
            if radius > 1e12 {
                break; // safety for degenerate data
            }
        }
        stats.node_visits = cursors.iter().map(|c| c.node_visits()).sum();
        (topk.into_sorted(), stats)
    }

    fn params_budget(&self, k: usize) -> usize {
        self.config.beta_count + k - 1
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn bump(
    id: u32,
    counts: &mut [u16],
    checked: &mut [bool],
    threshold: u16,
    dataset: &Dataset,
    q: &[f32],
    topk: &mut TopK,
    stats: &mut QalshStats,
) {
    let i = id as usize;
    if checked[i] {
        return;
    }
    counts[i] = counts[i].saturating_add(1);
    if counts[i] >= threshold {
        checked[i] = true;
        stats.candidates += 1;
        topk.offer(id, dist2(q, dataset.point(i)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 30.0).collect())
            .collect();
        let mut ds = Dataset::with_capacity(dim, n);
        let mut p = vec![0.0f32; dim];
        for _ in 0..n {
            let c = &centers[rng.gen_range(0..centers.len())];
            for (v, &cv) in p.iter_mut().zip(c) {
                *v = cv + (rng.gen::<f32>() - 0.5);
            }
            ds.push(&p);
        }
        ds
    }

    #[test]
    fn parameter_derivation_matches_paper_shape() {
        let cfg = QalshConfig::default();
        let p = QalshParams::derive(&cfg, 1_000_000);
        // w for c=2: sqrt(8·4·ln2/3) ≈ 2.719.
        assert!((p.w - 2.719).abs() < 0.01, "w = {}", p.w);
        assert!(p.p1 > p.p2);
        assert!(p.k_funcs > 10 && p.k_funcs < 1000, "K = {}", p.k_funcs);
        assert!(p.threshold >= 1 && p.threshold <= p.k_funcs);
        // K grows with n (O(log n) tables… actually K grows via beta).
        let p_small = QalshParams::derive(&cfg, 10_000);
        assert!(p.k_funcs >= p_small.k_funcs);
    }

    #[test]
    fn finds_near_neighbors() {
        let ds = clustered(2000, 16, 11);
        let q = Qalsh::build(&ds, QalshConfig::default());
        let mut good = 0;
        for t in 0..20 {
            let query: Vec<f32> = ds.point(t * 40).iter().map(|v| v + 0.01).collect();
            let exact = crate::brute::knn(&ds, &query, 1)[0].1;
            let (res, _) = q.query(&ds, &query, 1);
            if let Some(&(_, d)) = res.first() {
                if d <= (exact * 4.0).max(0.5) {
                    good += 1;
                }
            }
        }
        assert!(good >= 17, "quality {good}/20");
    }

    #[test]
    fn candidate_budget_respected() {
        let ds = clustered(3000, 8, 12);
        let q = Qalsh::build(&ds, QalshConfig::default());
        let query = vec![15.0f32; 8];
        let (_, stats) = q.query(&ds, &query, 1);
        assert!(
            stats.candidates <= q.params_budget(1) + q.params.k_funcs,
            "candidates {} budget {}",
            stats.candidates,
            q.params_budget(1)
        );
    }

    #[test]
    fn rounds_grow_for_distant_queries() {
        let ds = clustered(1000, 8, 13);
        let q = Qalsh::build(&ds, QalshConfig::default());
        let near = ds.point(0).to_vec();
        let far = vec![500.0f32; 8];
        let (_, s_near) = q.query(&ds, &near, 1);
        let (_, s_far) = q.query(&ds, &far, 1);
        assert!(
            s_far.rounds >= s_near.rounds,
            "far {} vs near {}",
            s_far.rounds,
            s_near.rounds
        );
    }

    #[test]
    fn index_smaller_than_e2lsh_but_superlinear_structure() {
        let ds = clustered(3000, 32, 14);
        let q = Qalsh::build(&ds, QalshConfig::default());
        // K trees of n entries each: O(n·K) — small relative to E2LSH's
        // r·L tables but larger than SRS's 8 floats per object.
        assert!(q.index_bytes() > 3000 * 8);
        let srs = crate::srs::Srs::build(&ds, crate::srs::SrsConfig::default());
        assert!(q.index_bytes() > srs.index_bytes());
    }

    #[test]
    fn topk_sorted_unique() {
        let ds = clustered(1500, 12, 15);
        let q = Qalsh::build(&ds, QalshConfig::default());
        let query: Vec<f32> = ds.point(7).iter().map(|v| v + 0.1).collect();
        let (res, _) = q.query(&ds, &query, 10);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        let mut ids: Vec<_> = res.iter().map(|r| r.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), res.len());
    }
}
