//! Exact linear-scan k-NN (sanity baseline).

use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::dist2;
use e2lsh_core::search::TopK;

/// Exact top-`k` by scanning every point.
pub fn knn(dataset: &Dataset, q: &[f32], k: usize) -> Vec<(u32, f32)> {
    assert_eq!(q.len(), dataset.dim());
    let mut topk = TopK::new(k.max(1));
    for i in 0..dataset.len() {
        topk.offer(i as u32, dist2(q, dataset.point(i)));
    }
    topk.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbors() {
        let rows: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let ds = Dataset::from_rows(&rows);
        let res = knn(&ds, &[20.2], 3);
        assert_eq!(res[0].0, 20);
        assert_eq!(res[1].0, 21);
        assert_eq!(res[2].0, 19);
    }

    #[test]
    fn k_larger_than_n() {
        let ds = Dataset::from_rows(&[vec![0.0f32], vec![1.0]]);
        let res = knn(&ds, &[0.0], 10);
        assert_eq!(res.len(), 2);
    }
}
