//! # ann-baselines
//!
//! The small-index LSH baselines the paper compares against (Section 3.1),
//! implemented from scratch together with their index substrates:
//!
//! * [`rtree`] — an STR bulk-loaded R-tree with best-first incremental
//!   nearest-neighbor search (the index structure of SRS);
//! * [`bptree`] — a leaf-linked B+-tree with bidirectional cursors (the
//!   index structure of QALSH);
//! * [`srs`] — SRS (Sun et al., VLDB 2014): project the database onto a
//!   tiny m-dimensional space, search it incrementally with an R-tree, and
//!   stop early via a chi-square test. Linear query time, tiny index.
//! * [`qalsh`] — QALSH (Huang et al., VLDB 2015): query-aware bucketing
//!   with collision counting and virtual rehashing over B+-trees.
//!   `O(n log n)` query time and index size.
//! * [`brute`] — exact linear scan (ground truth and sanity baseline).
//!
//! The paper runs both baselines fully in memory (their index is small
//! enough); so does this crate.

pub mod bptree;
pub mod brute;
pub mod qalsh;
pub mod rtree;
pub mod srs;

pub use qalsh::{Qalsh, QalshConfig};
pub use srs::{Srs, SrsConfig};
