//! STR bulk-loaded R-tree over low-dimensional points, with best-first
//! incremental nearest-neighbor search.
//!
//! SRS indexes the m-dimensional (m ≈ 8) projections of the database with
//! an R-tree and consumes points in order of increasing projected distance
//! to the query. The incremental search here is the classic best-first
//! algorithm (Hjaltason & Samet): a priority queue over both nodes (keyed
//! by minimum distance of their rectangle) and points.
//!
//! Node visits are counted: the paper's Section 4.2 attributes the speed
//! gap between E2LSH and SRS to the tens of thousands of tree nodes SRS
//! visits per query.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Maximum children / entries per node.
pub const NODE_CAP: usize = 32;

#[derive(Clone, Debug)]
struct Rect {
    lo: Vec<f32>,
    hi: Vec<f32>,
}

impl Rect {
    fn empty(dim: usize) -> Self {
        Self {
            lo: vec![f32::INFINITY; dim],
            hi: vec![f32::NEG_INFINITY; dim],
        }
    }

    fn add_point(&mut self, p: &[f32]) {
        for ((lo, hi), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(p) {
            *lo = lo.min(v);
            *hi = hi.max(v);
        }
    }

    fn add_rect(&mut self, other: &Rect) {
        for i in 0..self.lo.len() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Squared minimum distance from `q` to this rectangle.
    fn min_dist2(&self, q: &[f32]) -> f32 {
        let mut s = 0.0f32;
        for ((&qv, &lo), &hi) in q.iter().zip(&self.lo).zip(&self.hi) {
            let d = if qv < lo {
                lo - qv
            } else if qv > hi {
                qv - hi
            } else {
                0.0
            };
            s += d * d;
        }
        s
    }
}

enum Node {
    Leaf { rect: Rect, entries: Vec<u32> },
    Inner { rect: Rect, children: Vec<u32> },
}

impl Node {
    fn rect(&self) -> &Rect {
        match self {
            Node::Leaf { rect, .. } | Node::Inner { rect, .. } => rect,
        }
    }
}

/// An immutable, bulk-loaded R-tree over `n` points of dimension `d`.
pub struct RTree {
    dim: usize,
    /// Flat point storage (`n × d`).
    pts: Vec<f32>,
    nodes: Vec<Node>,
    root: u32,
}

impl RTree {
    /// Bulk-load with Sort-Tile-Recursive packing.
    pub fn bulk_load(dim: usize, pts: Vec<f32>) -> Self {
        assert!(dim > 0 && pts.len().is_multiple_of(dim));
        let n = pts.len() / dim;
        assert!(n > 0, "cannot build an empty R-tree");
        let mut order: Vec<u32> = (0..n as u32).collect();
        str_sort(&pts, dim, &mut order, 0);

        let mut nodes: Vec<Node> = Vec::new();
        // Leaves over consecutive STR-ordered points.
        let mut level: Vec<u32> = Vec::new();
        for chunk in order.chunks(NODE_CAP) {
            let mut rect = Rect::empty(dim);
            for &id in chunk {
                rect.add_point(&pts[id as usize * dim..(id as usize + 1) * dim]);
            }
            nodes.push(Node::Leaf {
                rect,
                entries: chunk.to_vec(),
            });
            level.push((nodes.len() - 1) as u32);
        }
        // Parents group consecutive children (children are in STR order).
        while level.len() > 1 {
            let mut next = Vec::new();
            for chunk in level.chunks(NODE_CAP) {
                let mut rect = Rect::empty(dim);
                for &c in chunk {
                    rect.add_rect(nodes[c as usize].rect());
                }
                nodes.push(Node::Inner {
                    rect,
                    children: chunk.to_vec(),
                });
                next.push((nodes.len() - 1) as u32);
            }
            level = next;
        }
        let root = level[0];
        Self {
            dim,
            pts,
            nodes,
            root,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.pts.len() / self.dim
    }

    /// True when the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Approximate heap size of the tree in bytes (for Table 6's SRS
    /// index-size column).
    pub fn nbytes(&self) -> usize {
        let mut b = self.pts.len() * 4;
        for n in &self.nodes {
            b += 2 * self.dim * 4 + 32;
            b += match n {
                Node::Leaf { entries, .. } => entries.len() * 4,
                Node::Inner { children, .. } => children.len() * 4,
            };
        }
        b
    }

    /// Point accessor.
    #[inline]
    pub fn point(&self, id: u32) -> &[f32] {
        &self.pts[id as usize * self.dim..(id as usize + 1) * self.dim]
    }

    /// Begin an incremental nearest-neighbor scan from `q`.
    pub fn nn_iter<'a>(&'a self, q: &'a [f32]) -> NnIter<'a> {
        assert_eq!(q.len(), self.dim);
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            d2: self.nodes[self.root as usize].rect().min_dist2(q),
            item: Item::Node(self.root),
        });
        NnIter {
            tree: self,
            q,
            heap,
            node_visits: 0,
        }
    }
}

/// Recursive STR ordering: sort by dimension `axis`, slice into
/// `⌈(n/cap)^{1/(d−axis)}⌉` slabs, recurse on the next axis.
fn str_sort(pts: &[f32], dim: usize, ids: &mut [u32], axis: usize) {
    if ids.len() <= NODE_CAP || axis >= dim {
        return;
    }
    ids.sort_unstable_by(|&a, &b| {
        let va = pts[a as usize * dim + axis];
        let vb = pts[b as usize * dim + axis];
        va.partial_cmp(&vb).unwrap_or(Ordering::Equal)
    });
    let leaves = ids.len().div_ceil(NODE_CAP);
    let slabs = (leaves as f64)
        .powf(1.0 / (dim - axis) as f64)
        .ceil()
        .max(1.0) as usize;
    let slab_size = ids.len().div_ceil(slabs);
    for chunk in ids.chunks_mut(slab_size) {
        str_sort(pts, dim, chunk, axis + 1);
    }
}

enum Item {
    Node(u32),
    Point(u32),
}

struct HeapEntry {
    d2: f32,
    item: Item,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.d2 == other.d2
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance.
        other.d2.total_cmp(&self.d2)
    }
}

/// Incremental nearest-neighbor iterator (best-first traversal).
pub struct NnIter<'a> {
    tree: &'a RTree,
    q: &'a [f32],
    heap: BinaryHeap<HeapEntry>,
    node_visits: usize,
}

impl<'a> NnIter<'a> {
    /// Tree nodes expanded so far (the SRS cost driver).
    pub fn node_visits(&self) -> usize {
        self.node_visits
    }
}

impl<'a> Iterator for NnIter<'a> {
    /// `(point id, squared projected distance)` in ascending order.
    type Item = (u32, f32);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(HeapEntry { d2, item }) = self.heap.pop() {
            match item {
                Item::Point(id) => return Some((id, d2)),
                Item::Node(nid) => {
                    self.node_visits += 1;
                    match &self.tree.nodes[nid as usize] {
                        Node::Leaf { entries, .. } => {
                            for &id in entries {
                                let p = self.tree.point(id);
                                let d2 = e2lsh_core::distance::dist2(self.q, p);
                                self.heap.push(HeapEntry {
                                    d2,
                                    item: Item::Point(id),
                                });
                            }
                        }
                        Node::Inner { children, .. } => {
                            for &c in children {
                                self.heap.push(HeapEntry {
                                    d2: self.tree.nodes[c as usize].rect().min_dist2(self.q),
                                    item: Item::Node(c),
                                });
                            }
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen::<f32>() * 100.0).collect()
    }

    #[test]
    fn nn_iter_yields_ascending_distances() {
        let dim = 4;
        let pts = random_points(2000, dim, 1);
        let tree = RTree::bulk_load(dim, pts);
        let q = vec![50.0f32; dim];
        let mut prev = 0.0f32;
        let mut count = 0;
        for (_, d2) in tree.nn_iter(&q).take(500) {
            assert!(d2 >= prev - 1e-5, "order violated: {d2} after {prev}");
            prev = d2;
            count += 1;
        }
        assert_eq!(count, 500);
    }

    #[test]
    fn nn_iter_is_exhaustive_and_exact() {
        let dim = 3;
        let n = 500;
        let pts = random_points(n, dim, 2);
        let tree = RTree::bulk_load(dim, pts.clone());
        let q = vec![10.0f32, 20.0, 30.0];
        let got: Vec<u32> = tree.nn_iter(&q).map(|(id, _)| id).collect();
        assert_eq!(got.len(), n);
        // First result must be the exact NN.
        let mut best = (0u32, f32::INFINITY);
        for i in 0..n {
            let d = e2lsh_core::distance::dist2(&q, &pts[i * dim..(i + 1) * dim]);
            if d < best.1 {
                best = (i as u32, d);
            }
        }
        assert_eq!(got[0], best.0);
        // No duplicates.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n);
    }

    #[test]
    fn node_visits_sublinear_for_prefix_scan_low_dim() {
        // Spatial pruning only bites in low dimension; in 8-d uniform data
        // best-first legitimately touches most nodes (the curse of
        // dimensionality — exactly why SRS visits tens of thousands of
        // nodes per query in the paper's Section 4.2).
        let dim = 2;
        let n = 20_000;
        let pts = random_points(n, dim, 3);
        let tree = RTree::bulk_load(dim, pts);
        let q = vec![50.0f32; dim];
        let mut it = tree.nn_iter(&q);
        for _ in 0..10 {
            it.next();
        }
        let total_nodes = tree.nodes.len();
        assert!(
            it.node_visits() < total_nodes / 4,
            "visited {} of {} nodes for 10 neighbors",
            it.node_visits(),
            total_nodes
        );
    }

    #[test]
    fn single_point_tree() {
        let tree = RTree::bulk_load(2, vec![1.0, 2.0]);
        let got: Vec<_> = tree.nn_iter(&[0.0, 0.0]).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 0);
        assert!((got[0].1 - 5.0).abs() < 1e-6);
    }

    #[test]
    fn nbytes_positive() {
        let tree = RTree::bulk_load(2, random_points(100, 2, 4));
        assert!(tree.nbytes() > 100 * 2 * 4);
    }
}
