//! A leaf-linked B+-tree over `(f32 key, u32 id)` pairs with bidirectional
//! cursors — the index substrate of QALSH.
//!
//! QALSH builds one B+-tree per hash function over the projection values
//! `h_i(o) = a_i·o` of all objects, and answers queries by walking outward
//! from the query's projection in both directions ("virtual rehashing").
//! The tree is immutable after bulk load (the paper's indices are built
//! once per dataset) and counts node visits for cost analysis.

/// Keys per leaf / fanout of inner nodes.
pub const ORDER: usize = 64;

struct Leaf {
    keys: Vec<f32>,
    ids: Vec<u32>,
}

struct Inner {
    /// `separators[i]` is the smallest key of subtree `children[i+1]`.
    separators: Vec<f32>,
    children: Vec<u32>,
    /// True when children are leaves.
    leaf_children: bool,
}

/// Immutable bulk-loaded B+-tree.
pub struct BPlusTree {
    leaves: Vec<Leaf>,
    inners: Vec<Inner>,
    root: Option<u32>,
    len: usize,
}

impl BPlusTree {
    /// Bulk-load from `(key, id)` pairs; the pairs are sorted internally.
    pub fn bulk_load(mut pairs: Vec<(f32, u32)>) -> Self {
        pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let len = pairs.len();
        let mut leaves = Vec::new();
        for chunk in pairs.chunks(ORDER) {
            leaves.push(Leaf {
                keys: chunk.iter().map(|&(k, _)| k).collect(),
                ids: chunk.iter().map(|&(_, id)| id).collect(),
            });
        }
        let mut inners: Vec<Inner> = Vec::new();
        if leaves.is_empty() {
            return Self {
                leaves,
                inners,
                root: None,
                len,
            };
        }
        // Build inner levels over consecutive children.
        let mut level: Vec<(u32, f32)> = leaves
            .iter()
            .enumerate()
            .map(|(i, l)| (i as u32, l.keys[0]))
            .collect();
        let mut leaf_children = true;
        while level.len() > 1 {
            let mut next = Vec::new();
            for chunk in level.chunks(ORDER) {
                let children: Vec<u32> = chunk.iter().map(|&(c, _)| c).collect();
                let separators: Vec<f32> = chunk[1..].iter().map(|&(_, k)| k).collect();
                inners.push(Inner {
                    separators,
                    children,
                    leaf_children,
                });
                next.push(((inners.len() - 1) as u32, chunk[0].1));
            }
            level = next;
            leaf_children = false;
        }
        let root = if inners.is_empty() {
            None // single leaf; `root` position encoded separately
        } else {
            Some(level[0].0)
        };
        Self {
            leaves,
            inners,
            root,
            len,
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn nbytes(&self) -> usize {
        let mut b = 0;
        for l in &self.leaves {
            b += l.keys.len() * 8 + 48;
        }
        for i in &self.inners {
            b += i.separators.len() * 4 + i.children.len() * 4 + 49;
        }
        b
    }

    /// Find the position of the first pair with key ≥ `key`, descending
    /// from the root; increments `node_visits` per node touched.
    fn lower_bound(&self, key: f32, node_visits: &mut usize) -> (usize, usize) {
        if self.leaves.is_empty() {
            return (0, 0);
        }
        let mut leaf_idx = match self.root {
            None => 0usize,
            Some(mut node) => loop {
                *node_visits += 1;
                let inner = &self.inners[node as usize];
                let pos = inner.separators.partition_point(|&s| s <= key);
                let child = inner.children[pos];
                if inner.leaf_children {
                    break child as usize;
                }
                node = child;
            },
        };
        *node_visits += 1;
        let leaf = &self.leaves[leaf_idx];
        let mut pos = leaf.keys.partition_point(|&k| k < key);
        // Key larger than everything in this leaf: step to the next.
        if pos == leaf.keys.len() && leaf_idx + 1 < self.leaves.len() {
            leaf_idx += 1;
            pos = 0;
        }
        (leaf_idx, pos)
    }

    /// Open a bidirectional cursor centered at `key`: `next_right` yields
    /// pairs with keys ≥ key ascending, `next_left` yields keys < key
    /// descending.
    pub fn cursor(&self, key: f32) -> Cursor<'_> {
        let mut node_visits = 0;
        let (leaf, pos) = self.lower_bound(key, &mut node_visits);
        Cursor {
            tree: self,
            right_leaf: leaf,
            right_pos: pos,
            left_leaf: leaf,
            left_pos: pos,
            node_visits,
        }
    }
}

/// Bidirectional cursor over the leaf level.
pub struct Cursor<'a> {
    tree: &'a BPlusTree,
    right_leaf: usize,
    right_pos: usize,
    left_leaf: usize,
    left_pos: usize,
    node_visits: usize,
}

impl<'a> Cursor<'a> {
    /// Next pair to the right (keys ≥ center, ascending), if any.
    pub fn next_right(&mut self) -> Option<(f32, u32)> {
        loop {
            if self.right_leaf >= self.tree.leaves.len() {
                return None;
            }
            let leaf = &self.tree.leaves[self.right_leaf];
            if self.right_pos < leaf.keys.len() {
                let out = (leaf.keys[self.right_pos], leaf.ids[self.right_pos]);
                self.right_pos += 1;
                return Some(out);
            }
            self.right_leaf += 1;
            self.right_pos = 0;
            self.node_visits += 1;
        }
    }

    /// Next pair to the left (keys < center, descending), if any.
    pub fn next_left(&mut self) -> Option<(f32, u32)> {
        loop {
            if self.left_pos > 0 {
                self.left_pos -= 1;
                let leaf = &self.tree.leaves[self.left_leaf];
                return Some((leaf.keys[self.left_pos], leaf.ids[self.left_pos]));
            }
            if self.left_leaf == 0 {
                return None;
            }
            self.left_leaf -= 1;
            self.left_pos = self.tree.leaves[self.left_leaf].keys.len();
            self.node_visits += 1;
        }
    }

    /// Key of the next right pair without consuming it.
    pub fn peek_right(&mut self) -> Option<f32> {
        let save = (self.right_leaf, self.right_pos);
        let out = self.next_right().map(|(k, _)| k);
        (self.right_leaf, self.right_pos) = save;
        out
    }

    /// Key of the next left pair without consuming it.
    pub fn peek_left(&mut self) -> Option<f32> {
        let save = (self.left_leaf, self.left_pos);
        let out = self.next_left().map(|(k, _)| k);
        (self.left_leaf, self.left_pos) = save;
        out
    }

    /// Nodes touched by this cursor (descent + leaf hops).
    pub fn node_visits(&self) -> usize {
        self.node_visits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn tree_of(keys: &[f32]) -> BPlusTree {
        BPlusTree::bulk_load(
            keys.iter()
                .enumerate()
                .map(|(i, &k)| (k, i as u32))
                .collect(),
        )
    }

    #[test]
    fn cursor_walks_both_directions_in_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let keys: Vec<f32> = (0..1000).map(|_| rng.gen::<f32>() * 100.0).collect();
        let tree = tree_of(&keys);
        let center = 50.0f32;
        let mut cur = tree.cursor(center);
        let mut prev = center;
        let mut right_count = 0;
        while let Some((k, _)) = cur.next_right() {
            assert!(k >= prev - 1e-6, "right walk must ascend");
            assert!(k >= center);
            prev = k;
            right_count += 1;
        }
        let mut prev = center;
        let mut left_count = 0;
        while let Some((k, _)) = cur.next_left() {
            assert!(k <= prev + 1e-6, "left walk must descend");
            assert!(k < center);
            prev = k;
            left_count += 1;
        }
        assert_eq!(right_count + left_count, 1000);
    }

    #[test]
    fn cursor_at_extremes() {
        let tree = tree_of(&[1.0, 2.0, 3.0]);
        let mut lo = tree.cursor(-10.0);
        assert_eq!(lo.next_right().unwrap().0, 1.0);
        assert!(lo.next_left().is_none());
        let mut hi = tree.cursor(10.0);
        assert!(hi.next_right().is_none());
        assert_eq!(hi.next_left().unwrap().0, 3.0);
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let tree = tree_of(&[5.0; 200]);
        let mut cur = tree.cursor(5.0);
        let mut count = 0;
        while cur.next_right().is_some() {
            count += 1;
        }
        while cur.next_left().is_some() {
            count += 1;
        }
        assert_eq!(count, 200);
    }

    #[test]
    fn lower_bound_counts_nodes_logarithmically() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let keys: Vec<f32> = (0..100_000).map(|_| rng.gen()).collect();
        let tree = tree_of(&keys);
        let cur = tree.cursor(0.5);
        // 100k keys, order 64: depth 3 → a handful of node visits.
        assert!(cur.node_visits() <= 6, "visits {}", cur.node_visits());
    }

    #[test]
    fn empty_tree() {
        let tree = BPlusTree::bulk_load(vec![]);
        assert!(tree.is_empty());
        let mut cur = tree.cursor(0.0);
        assert!(cur.next_right().is_none());
        assert!(cur.next_left().is_none());
    }

    #[test]
    fn peek_does_not_consume() {
        let tree = tree_of(&[1.0, 2.0, 3.0, 4.0]);
        let mut cur = tree.cursor(2.5);
        assert_eq!(cur.peek_right(), Some(3.0));
        assert_eq!(cur.peek_right(), Some(3.0));
        assert_eq!(cur.next_right().unwrap().0, 3.0);
        assert_eq!(cur.peek_left(), Some(2.0));
        assert_eq!(cur.next_left().unwrap().0, 2.0);
    }

    #[test]
    fn nbytes_positive() {
        let tree = tree_of(&[0.5; 1000]);
        assert!(tree.nbytes() > 1000 * 8);
    }
}
