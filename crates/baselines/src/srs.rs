//! SRS — c-ANNS with a tiny index (Sun, Wang, Qin, Zhang, Lin;
//! VLDB 2014).
//!
//! SRS projects every object onto a tiny `m`-dimensional space (`m = 6–10;
//! the E2LSHoS paper found m = 8 works well across its suite) using
//! Gaussian random projections, indexes the projections with an in-memory
//! R-tree, and answers a query by scanning objects in order of increasing
//! *projected* distance, computing true distances as it goes. Two stopping
//! rules bound the work:
//!
//! * a budget `T'` on the number of examined objects (the accuracy knob
//!   the E2LSHoS paper tunes, Section 3.3);
//! * an early-termination test: for a point at true distance `s`, the
//!   squared projected distance is distributed as `s²·χ²_m`, so once the
//!   projected search frontier `δ` satisfies
//!   `P[χ²_m ≤ (c·δ/d_k)²] ≥ p_τ` the current best `d_k` is a
//!   c-approximate answer with the target confidence.
//!
//! Query time is linear in `n` (each examined candidate costs a true
//! distance check and the frontier eventually covers the database), and
//! the index is tiny: `8n` floats plus the R-tree — the "small-index"
//! regime the paper contrasts E2LSH against.

use crate::rtree::RTree;
use e2lsh_core::dataset::Dataset;
use e2lsh_core::distance::{dist2, dot};
use e2lsh_core::lsh::sample_standard_normal;
use e2lsh_core::math::chi2_cdf;
use e2lsh_core::search::TopK;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SRS build/query configuration.
#[derive(Clone, Debug)]
pub struct SrsConfig {
    /// Projection dimensionality (paper: 8).
    pub m: usize,
    /// Approximation ratio; the E2LSHoS paper sets `c = 4` for SRS
    /// ("equivalent to c = 2 in E2LSH", whose reduction answers c²-ANNS).
    pub c: f32,
    /// Early-termination confidence `p_τ` (success probability
    /// `1/2 − 1/e` in the papers ⇒ τ ≈ 0.81 for the one-sided test).
    pub p_tau: f64,
    /// Maximum number of candidates to examine (`T'`), the accuracy knob.
    pub t_prime: usize,
    /// Apply the chi-square early-termination test. It guarantees only a
    /// c-approximate answer, so it fires quickly; the E2LSHoS paper tunes
    /// accuracy purely "by varying the maximum number of data points to be
    /// checked (T')" (Section 3.3), which requires running past the test —
    /// set this to `false` to reproduce that regime.
    pub early_stop: bool,
    /// RNG seed for the projection vectors.
    pub seed: u64,
}

impl Default for SrsConfig {
    fn default() -> Self {
        Self {
            m: 8,
            c: 4.0,
            p_tau: 0.81,
            t_prime: usize::MAX,
            early_stop: true,
            seed: 0x5125,
        }
    }
}

/// Per-query statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SrsStats {
    /// Candidates whose true distance was computed.
    pub candidates: usize,
    /// R-tree nodes expanded.
    pub node_visits: usize,
    /// True when the chi-square early-termination test fired (vs. budget
    /// exhaustion / full scan).
    pub early_terminated: bool,
}

/// An SRS index over a dataset.
pub struct Srs {
    config: SrsConfig,
    /// `m × d` Gaussian projection vectors.
    proj: Vec<f32>,
    dim: usize,
    tree: RTree,
}

impl Srs {
    /// Build: project all points and bulk-load the R-tree.
    pub fn build(dataset: &Dataset, config: SrsConfig) -> Self {
        assert!(config.m >= 1 && config.c > 1.0);
        let dim = dataset.dim();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let proj: Vec<f32> = (0..config.m * dim)
            .map(|_| sample_standard_normal(&mut rng))
            .collect();
        let mut projected = Vec::with_capacity(dataset.len() * config.m);
        for i in 0..dataset.len() {
            let p = dataset.point(i);
            for j in 0..config.m {
                projected.push(dot(&proj[j * dim..(j + 1) * dim], p));
            }
        }
        let tree = RTree::bulk_load(config.m, projected);
        Self {
            config,
            proj,
            dim,
            tree,
        }
    }

    /// Index size in bytes (projections + R-tree), for Table 6.
    pub fn index_bytes(&self) -> usize {
        self.tree.nbytes() + self.proj.len() * 4
    }

    /// The configuration in use.
    pub fn config(&self) -> &SrsConfig {
        &self.config
    }

    /// Project a query into the m-dimensional space.
    fn project(&self, q: &[f32]) -> Vec<f32> {
        (0..self.config.m)
            .map(|j| dot(&self.proj[j * self.dim..(j + 1) * self.dim], q))
            .collect()
    }

    /// Top-`k` c-ANNS.
    pub fn query(
        &self,
        dataset: &Dataset,
        q: &[f32],
        k: usize,
        t_prime: Option<usize>,
    ) -> (Vec<(u32, f32)>, SrsStats) {
        assert_eq!(q.len(), self.dim);
        let budget = t_prime.unwrap_or(self.config.t_prime).max(k);
        let qp = self.project(q);
        let mut topk = TopK::new(k);
        let mut stats = SrsStats::default();
        let mut iter = self.tree.nn_iter(&qp);
        for (id, proj_d2) in iter.by_ref() {
            stats.candidates += 1;
            let d2 = dist2(q, dataset.point(id as usize));
            topk.offer(id, d2);
            if stats.candidates >= budget {
                break;
            }
            // Early termination (chi-square test): the projected frontier
            // is already so wide that the current k-th best is c-approx.
            if self.config.early_stop && topk.len() >= k {
                let dk2 = topk.worst_d2() as f64;
                if dk2 <= 0.0 {
                    // All k results are exact matches: nothing can beat
                    // distance zero.
                    stats.early_terminated = true;
                    break;
                }
                let arg = (self.config.c as f64 * self.config.c as f64) * proj_d2 as f64 / dk2;
                if chi2_cdf(self.config.m, arg) >= self.config.p_tau {
                    stats.early_terminated = true;
                    break;
                }
            }
        }
        stats.node_visits = iter.node_visits();
        (topk.into_sorted(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn clustered(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..6)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>() * 50.0).collect())
            .collect();
        let mut ds = Dataset::with_capacity(dim, n);
        let mut p = vec![0.0f32; dim];
        for _ in 0..n {
            let c = &centers[rng.gen_range(0..centers.len())];
            for (v, &cv) in p.iter_mut().zip(c) {
                *v = cv + (rng.gen::<f32>() - 0.5);
            }
            ds.push(&p);
        }
        ds
    }

    #[test]
    fn finds_near_neighbors() {
        let ds = clustered(2000, 24, 5);
        let srs = Srs::build(&ds, SrsConfig::default());
        let mut good = 0;
        for t in 0..20 {
            let q: Vec<f32> = ds.point(t * 50).iter().map(|v| v + 0.01).collect();
            let exact = crate::brute::knn(&ds, &q, 1)[0].1;
            let (res, _) = srs.query(&ds, &q, 1, None);
            let got = res[0].1;
            if got <= (exact * 4.0).max(0.5) {
                good += 1;
            }
        }
        assert!(good >= 18, "quality {good}/20");
    }

    #[test]
    fn early_termination_fires_on_easy_queries() {
        let ds = clustered(3000, 16, 6);
        let srs = Srs::build(&ds, SrsConfig::default());
        // Querying an existing point: distance ~0 found immediately; the
        // test must not scan the whole database.
        let q = ds.point(100).to_vec();
        let (_, stats) = srs.query(&ds, &q, 1, None);
        assert!(
            stats.candidates < ds.len(),
            "scanned everything: {}",
            stats.candidates
        );
    }

    #[test]
    fn budget_respected() {
        let ds = clustered(1000, 8, 7);
        let srs = Srs::build(&ds, SrsConfig::default());
        let q = vec![25.0f32; 8];
        let (_, stats) = srs.query(&ds, &q, 1, Some(37));
        assert!(stats.candidates <= 37);
    }

    #[test]
    fn larger_budget_never_hurts_accuracy() {
        let ds = clustered(2000, 16, 8);
        let srs = Srs::build(&ds, SrsConfig::default());
        let q: Vec<f32> = ds.point(3).iter().map(|v| v + 0.3).collect();
        let (small, _) = srs.query(&ds, &q, 1, Some(10));
        let (big, _) = srs.query(&ds, &q, 1, Some(1000));
        assert!(big[0].1 <= small[0].1 + 1e-5);
    }

    #[test]
    fn index_is_small_relative_to_data() {
        // "Tiny index": far below the E2LSH index (which is n·L·r entries);
        // comparable to the dataset itself.
        let ds = clustered(5000, 64, 9);
        let srs = Srs::build(&ds, SrsConfig::default());
        assert!(srs.index_bytes() < ds.nbytes());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = clustered(500, 8, 10);
        let a = Srs::build(&ds, SrsConfig::default());
        let b = Srs::build(&ds, SrsConfig::default());
        let q = vec![10.0f32; 8];
        assert_eq!(a.query(&ds, &q, 3, None).0, b.query(&ds, &q, 3, None).0);
    }
}
