//! # e2lsh-service
//!
//! A sharded, multi-threaded query-serving layer over the E2LSHoS index
//! — the production-shaped tier the EDBT 2023 paper stops short of.
//! The paper shows one asynchronous engine saturating one device's
//! random-read IOPS; this crate scales that engine out:
//!
//! * [`shard`] — partition the dataset into `N` contiguous shards, each
//!   with its own on-storage index (and its own device), global↔local id
//!   mapping by offset;
//! * [`topology`] — back each shard with **R replicas** that share the
//!   shard's index and rows but own private reactors, block caches
//!   and admission queues (read scaling + failover); replica health
//!   (fencing) lives here;
//! * [`router`] — pick one replica per shard per query:
//!   power-of-two-choices over live queue depth (default), round-robin
//!   and broadcast baselines; plus the fencing/failover protocol that
//!   re-dispatches a dead replica's outstanding queries to a sibling;
//! * [`session`] — the **session-oriented client API** (the primary
//!   entry point since PR 5):
//!   [`ShardedService::start`](service::ShardedService::start) brings
//!   reactors, writers and collector up once and returns a
//!   long-lived [`session::Session`]; cloneable
//!   [`session::Client`] handles submit queries and writes
//!   **non-blocking**, each resolving through a per-request ticket
//!   ([`session::QueryTicket`] /
//!   [`session::WriteTicket`]) that carries the op's
//!   status — including the typed `Overload` with its `retry_after`
//!   hint when shed; [`Session::metrics`](session::Session::metrics)
//!   reports incrementally and
//!   [`Session::shutdown`](session::Session::shutdown) drains and
//!   joins;
//! * [`service`] — configuration/report types and the legacy
//!   run-to-completion wrappers (`serve`, `serve_mixed`,
//!   `query_batch`), now thin clients of the session API (oracle
//!   suites assert bit-exact wrapper/session equivalence); every query
//!   fans out to all shards (one replica each) and the per-shard top-k
//!   results are merged by distance;
//! * [`reactor`] — the **completion-driven engine**: one event loop
//!   per replica owns the replica's device handle and admission queue
//!   and multiplexes up to
//!   [`ServiceConfig::inflight_per_replica`](service::ServiceConfig::inflight_per_replica)
//!   interleaved [`QueryState`](e2lsh_storage::query::QueryState)
//!   slots over the device's native queue depth — CPU work (hashing,
//!   distance evaluation) runs on a small per-replica compute pool, so
//!   in-flight queries are slots, not blocked threads (the paper's
//!   §6.5 async-over-sync result at service scale); includes panic
//!   containment: a crashing reactor (or compute task) fences its
//!   replica instead of stranding its tickets;
//! * [`shared_sim`] — a simulated device array shared by a shard's
//!   replicas, so replica scaling contends for one array's IOPS (the
//!   paper's Figure 16 regime) instead of duplicating hardware;
//! * [`update`] — the online write path: one
//!   [`update::ShardUpdater`] per shard applies inserts
//!   and deletes through the storage crate's updater *while the shard
//!   serves queries*, invalidating exactly the rewritten blocks in the
//!   shard cache (per-key epochs) and publishing new occupancy-filter
//!   bits into the live index;
//! * [`admission`] — bounded per-shard queues with explicit load
//!   shedding: an [`AdmissionBudget`] caps queue depth and queued
//!   bytes; queries beyond it are rejected at dispatch with the typed
//!   [`Overload`] error, writes either shed the same way
//!   ([`session::Client::write`] — safe now that insert ids are minted
//!   at admission) or backpressure the submitter
//!   ([`session::Client::write_blocking`], the legacy wrappers'
//!   discipline), and the service reports goodput, shed rate and peak
//!   queue depth — offered load past capacity degrades into countable
//!   rejections or bounded stalls, not unbounded queues;
//! * [`loadgen`] — closed-loop (fixed in-flight window) and open-loop
//!   (Poisson or batch-shaped [`Load::Burst`] arrivals) admission,
//!   Zipf-skewed query streams and duplicate-heavy batches
//!   ([`loadgen::zipf_batches`]), and seeded mixed read–write op
//!   streams ([`loadgen::mixed_ops`]);
//! * [`metrics`] — latency percentiles (p50/p95/p99), summaries, and
//!   rejected-request accounting ([`metrics::OpStatus`]; percentiles
//!   cover accepted ops, shed ops are counted separately), plus the
//!   bounded log-bucketed [`metrics::LatencyHistogram`] that backs
//!   long-lived session metrics (fixed memory, mergeable, and
//!   *subtractable* so interval slicing stays exact);
//! * [`trace`] — per-request trace spans: stage-timestamped records
//!   (admitted → routed → per-shard device windows → merged →
//!   resolved) published to a lock-free sampled ring
//!   ([`ServiceConfig::trace_sample`](service::ServiceConfig)) and a
//!   slow-query log with full breakdowns;
//! * [`export`] — the metrics registry + JSON exporter: a stable,
//!   versioned schema ([`export::report_json`]) the bench bins use to
//!   emit `BENCH_*.json` artifacts;
//! * [`net`] — the network serving tier (new in PR 10):
//!   length-prefixed binary frames over `std::net` TCP, a
//!   [`net::NetServer`] mapping pipelined in-flight frames 1:1 onto
//!   session tickets (per-connection reader + completion pump,
//!   responses out of order by correlation id), per-**tenant**
//!   admission budgets keyed by the frame header's tenant id, and a
//!   [`net::NetClient`] mirroring the in-process `Client` surface
//!   over a socket.
//!
//! Batches of queries go through
//! [`ShardedService::query_batch`](service::ShardedService::query_batch):
//! byte-identical hot queries are deduplicated before the engine (one
//! probe per unique query per shard, merged results fanned back out to
//! every duplicate) and the whole request shares one fan-out/merge
//! pass, driven by the storage crate's batched
//! [`QueryDriver::run_batch`](e2lsh_storage::query::QueryDriver::run_batch)
//! entry point.
//!
//! DRAM caching comes from the storage crate's
//! [`CachedDevice`](e2lsh_storage::device::cached::CachedDevice): each
//! shard owns one [`BlockCache`](e2lsh_storage::device::cached::BlockCache)
//! shared by all its replicas, so hot buckets under skewed traffic are
//! served from memory and the cache hit rate shows up in every
//! [`service::ServiceReport`].

pub mod admission;
pub mod export;
pub mod loadgen;
pub mod metrics;
pub mod net;
pub mod reactor;
pub mod router;
pub mod service;
pub mod session;
pub mod shard;
pub mod shared_sim;
pub mod topology;
pub mod trace;
pub mod update;

pub use admission::{
    AdmissionBudget, AdmissionControl, GateHandle, GateStats, GatedReceiver, GatedSender, Overload,
};
pub use e2lsh_storage::device::cached::{CachePolicy, TinyLfuConfig};
pub use export::{report_json, MetricsRegistry, SCHEMA_VERSION};
pub use loadgen::{
    mixed_ops, mixed_ops_resuming, poisson_arrivals, skewed_queries, zipf_batches, zipf_indices,
    Load, MixedWorkload, Op,
};
pub use metrics::{imbalance, percentile, LatencyHistogram, LatencySummary, OpStatus};
pub use net::{NetClient, NetCounters, NetQueryReply, NetServer, NetServerConfig, NetWriteReply};
pub use router::RoutePolicy;
pub use service::{
    dedup_batch, BatchDedup, BatchQueryReport, DeviceSpec, ServiceConfig, ServiceReport,
    ShardedService,
};
pub use session::{
    Client, QueryResult, QueryTicket, Session, WriteOp, WriteResult, WriteTicket,
    CLIENT_THROTTLE_SHARD,
};
pub use shard::{Shard, ShardBuildConfig, ShardPlan, ShardSet};
pub use shared_sim::{SharedSimArray, SharedSimHandle};
pub use topology::{Replica, Topology};
pub use trace::{NetStage, ShardSpan, SpanKind, TraceRing, TraceSpan};
pub use update::ShardUpdater;
