//! # e2lsh-service
//!
//! A sharded, multi-threaded query-serving layer over the E2LSHoS index
//! — the production-shaped tier the EDBT 2023 paper stops short of.
//! The paper shows one asynchronous engine saturating one device's
//! random-read IOPS; this crate scales that engine out:
//!
//! * [`shard`] — partition the dataset into `N` contiguous shards, each
//!   with its own on-storage index (and its own device), global↔local id
//!   mapping by offset;
//! * [`service`] — [`ShardedService`](service::ShardedService): a pool of
//!   worker threads per shard, each driving the storage crate's
//!   [`QueryDriver`](e2lsh_storage::query::QueryDriver) over interleaved
//!   query contexts; every query fans out to all shards and the
//!   per-shard top-k results are merged by distance;
//! * [`worker`] — the per-thread serving loop (channel-fed admission on
//!   top of the same state machine `run_queries` batches through);
//! * [`shared_sim`] — a simulated device array shared by a shard's
//!   workers, so thread scaling contends for one array's IOPS (the
//!   paper's Figure 16 regime) instead of duplicating hardware;
//! * [`update`] — the online write path: one
//!   [`ShardUpdater`](update::ShardUpdater) per shard applies inserts
//!   and deletes through the storage crate's updater *while the shard
//!   serves queries*, invalidating exactly the rewritten blocks in the
//!   shard cache (per-key epochs) and publishing new occupancy-filter
//!   bits into the live index;
//! * [`loadgen`] — closed-loop (fixed in-flight window) and open-loop
//!   (Poisson arrivals) admission, Zipf-skewed query streams, and
//!   seeded mixed read–write op streams ([`loadgen::mixed_ops`]);
//! * [`metrics`] — latency percentiles (p50/p95/p99) and summaries.
//!
//! DRAM caching comes from the storage crate's
//! [`CachedDevice`](e2lsh_storage::device::cached::CachedDevice): each
//! shard owns one [`BlockCache`](e2lsh_storage::device::cached::BlockCache)
//! shared by all its workers, so hot buckets under skewed traffic are
//! served from memory and the cache hit rate shows up in every
//! [`ServiceReport`](service::ServiceReport).

pub mod loadgen;
pub mod metrics;
pub mod service;
pub mod shard;
pub mod shared_sim;
pub mod update;
pub mod worker;

pub use loadgen::{
    mixed_ops, mixed_ops_resuming, poisson_arrivals, skewed_queries, Load, MixedWorkload, Op,
};
pub use metrics::{percentile, LatencySummary};
pub use service::{DeviceSpec, ServiceConfig, ServiceReport, ShardedService};
pub use shard::{Shard, ShardBuildConfig, ShardPlan, ShardSet};
pub use shared_sim::{SharedSimArray, SharedSimHandle};
pub use update::ShardUpdater;
