//! Per-request trace spans: a stage-timestamped record of one op's trip
//! through the service (admitted → routed → enqueued per shard → device
//! I/O issued/completed → merged → resolved).
//!
//! Spans are assembled on the existing per-query accumulator (one
//! [`ShardSpan`] per harvested partial, so the replica that actually
//! served each shard — including after a failover — is what the span
//! records) and published two ways:
//!
//! * a bounded **trace ring** holding the most recent sampled spans
//!   ([`ServiceConfig::trace_sample`](crate::service::ServiceConfig)
//!   selects requests deterministically by ticket id, so reruns of a
//!   seeded workload sample the same requests), and
//! * a **slow-query log** retaining the full breakdown of every request
//!   whose end-to-end latency exceeded
//!   [`ServiceConfig::slow_query_threshold`](crate::service::ServiceConfig).
//!
//! Producers never block on readers: ring slots are guarded by
//! per-slot mutexes taken with `try_lock`, so a collector or writer
//! thread publishing a span while a reader snapshots the ring simply
//! skips that slot (sampling is lossy by design; metrics histograms —
//! not traces — are the accounting of record).
//!
//! All timestamps are seconds on the session epoch clock. The stage
//! durations *telescope*: `route + queue_wait + service + merge` is
//! exactly `end_to_end` (each stage is the difference of adjacent
//! timestamps), which `serve_replicas` asserts per logged request.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::router::splitmix64;

/// What kind of op a span describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A k-NN query fanned out to every shard.
    Query,
    /// A write applied by one shard's writer thread.
    Write {
        /// Cache blocks invalidated by the write's storage trace.
        blocks_invalidated: u64,
    },
}

/// The network stage of a request that arrived over a socket
/// ([`crate::net`]): the server-side window from the frame being fully
/// read off the wire to its payload being decoded and submitted.
/// Requests submitted in-process have no network stage
/// ([`TraceSpan::net`] is `None`) and their spans are unchanged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetStage {
    /// Frame fully received off the socket (also the span's
    /// `submitted` reference, so end-to-end latency covers decoding).
    pub received: f64,
    /// Payload decoded; submission to the session follows immediately.
    pub decoded: f64,
}

/// One shard's contribution to a request: the device-side window.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSpan {
    /// Shard that produced this partial.
    pub shard: usize,
    /// Replica within the shard that served it (post-failover replica
    /// for re-dispatched queries).
    pub replica: usize,
    /// Worker picked the job up; device I/O issues from here.
    pub start: f64,
    /// Partial handed to the collector (I/O complete).
    pub finish: f64,
    /// Block reads issued (queries) or blocks invalidated (writes).
    pub n_io: u64,
}

/// Stage-timestamped record of one request.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpan {
    /// Ticket id ([`crate::session::WriteResult::id`] mint ids are
    /// separate; this is the session-wide ticket id).
    pub id: u64,
    /// Query or write.
    pub kind: SpanKind,
    /// Admission: the client's reference time. For network requests
    /// this is the frame-received instant ([`NetStage::received`]).
    pub submitted: f64,
    /// Network stage (frame received → decoded), `Some` only for
    /// requests that arrived through [`crate::net`].
    pub net: Option<NetStage>,
    /// Routing decision complete; jobs enqueued on shard lanes.
    pub routed: f64,
    /// Per-shard device windows, in completion order.
    pub shards: Vec<ShardSpan>,
    /// Final merge done, ticket resolved.
    pub resolved: f64,
}

impl TraceSpan {
    fn first_start(&self) -> f64 {
        let m = self
            .shards
            .iter()
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min);
        if m.is_finite() {
            m
        } else {
            self.routed
        }
    }

    fn last_finish(&self) -> f64 {
        let m = self
            .shards
            .iter()
            .map(|s| s.finish)
            .fold(f64::NEG_INFINITY, f64::max);
        if m.is_finite() {
            m
        } else {
            self.first_start()
        }
    }

    /// Frame received → payload decoded, for network requests; 0 for
    /// in-process submissions. The first telescoping stage.
    pub fn net_ingress(&self) -> f64 {
        self.net.map_or(0.0, |n| n.decoded - n.received)
    }

    /// Admission → routing decision (for network requests: decode →
    /// routing decision, so the stage chain stays telescoping).
    pub fn route(&self) -> f64 {
        self.routed - self.net.map_or(self.submitted, |n| n.decoded)
    }

    /// Routing → first reactor dequeue (admission queue wait).
    pub fn queue_wait(&self) -> f64 {
        self.first_start() - self.routed
    }

    /// First dequeue → last partial (device service window).
    pub fn service(&self) -> f64 {
        self.last_finish() - self.first_start()
    }

    /// Last partial → ticket resolved (merge + bookkeeping).
    pub fn merge(&self) -> f64 {
        self.resolved - self.last_finish()
    }

    /// Admission → resolution. Always equals
    /// `net_ingress() + route() + queue_wait() + service() + merge()`
    /// up to float addition error — the stages are differences of
    /// adjacent timestamps and telescope (`net_ingress` is 0 for
    /// in-process requests).
    pub fn end_to_end(&self) -> f64 {
        self.resolved - self.submitted
    }

    /// Total device I/O across shards.
    pub fn total_io(&self) -> u64 {
        self.shards.iter().map(|s| s.n_io).sum()
    }

    /// One-line human rendering for slow-query log excerpts.
    pub fn render(&self) -> String {
        let kind = match &self.kind {
            SpanKind::Query => "query".to_string(),
            SpanKind::Write { blocks_invalidated } => {
                format!("write(inval {blocks_invalidated})")
            }
        };
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "s{}r{} {:.2}ms/{}io",
                    s.shard,
                    s.replica,
                    (s.finish - s.start) * 1e3,
                    s.n_io
                )
            })
            .collect();
        let net = if self.net.is_some() {
            format!("net {:.3}ms + ", self.net_ingress() * 1e3)
        } else {
            String::new()
        };
        format!(
            "#{} {kind} e2e {:.2}ms = {net}route {:.3}ms + wait {:.2}ms + service {:.2}ms + merge {:.3}ms [{}]",
            self.id,
            self.end_to_end() * 1e3,
            self.route() * 1e3,
            self.queue_wait() * 1e3,
            self.service() * 1e3,
            self.merge() * 1e3,
            shards.join(", ")
        )
    }
}

/// Bounded multi-producer ring of recent spans. Producers claim slots
/// with a fetch-add head and publish under a per-slot `try_lock`, so a
/// publish never blocks (a contended slot drops that sample instead).
pub struct TraceRing {
    slots: Box<[Mutex<Option<TraceSpan>>]>,
    head: AtomicU64,
}

impl TraceRing {
    /// Ring holding the `capacity` most recent spans (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Publish a span; drops it if the slot is being read right now.
    pub fn push(&self, span: TraceSpan) {
        let at = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        if let Ok(mut slot) = self.slots[at].try_lock() {
            *slot = Some(span);
        }
    }

    /// Copy out the current contents, oldest-to-newest slot order not
    /// guaranteed (slots are a ring).
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().ok().and_then(|g| g.clone()))
            .collect()
    }

    /// Spans published (including overwritten and dropped ones).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }
}

/// Session-wide tracing state: the sampled ring plus the slow-query log.
pub(crate) struct Tracer {
    ring: TraceRing,
    slow: Mutex<VecDeque<TraceSpan>>,
    /// `trace_sample` mapped onto u64 for a branch-free hash compare.
    sample_threshold: u64,
    slow_threshold: f64,
    slow_capacity: usize,
}

impl Tracer {
    pub(crate) fn new(
        trace_sample: f64,
        trace_capacity: usize,
        slow_query_threshold: f64,
        slow_log_capacity: usize,
    ) -> Self {
        let p = trace_sample.clamp(0.0, 1.0);
        // p == 1.0 must sample everything; the mul alone rounds short.
        let sample_threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * u64::MAX as f64) as u64
        };
        Self {
            ring: TraceRing::new(trace_capacity),
            slow: Mutex::new(VecDeque::new()),
            sample_threshold,
            slow_threshold: slow_query_threshold,
            slow_capacity: slow_log_capacity.max(1),
        }
    }

    /// True when span assembly can be skipped entirely.
    pub(crate) fn disabled(&self) -> bool {
        self.sample_threshold == 0 && self.slow_threshold == f64::INFINITY
    }

    /// Deterministic per-ticket sampling decision.
    pub(crate) fn sampled(&self, id: u64) -> bool {
        self.sample_threshold == u64::MAX || splitmix64(id) < self.sample_threshold
    }

    /// Route a finished span to the ring and/or slow log.
    pub(crate) fn observe(&self, span: TraceSpan) {
        let slow = span.end_to_end() > self.slow_threshold;
        let sampled = self.sampled(span.id);
        if !slow && !sampled {
            return;
        }
        if slow {
            if let Ok(mut log) = self.slow.lock() {
                if log.len() == self.slow_capacity {
                    log.pop_front();
                }
                log.push_back(span.clone());
            }
        }
        if sampled {
            self.ring.push(span);
        }
    }

    /// Append a span to the slow-query log **unconditionally** —
    /// latency threshold and sampling do not apply. For events that
    /// warrant an operator's attention on their own (a delete hitting
    /// a chain inconsistency), where the span carries the evidence
    /// (ticket id, shard, timing) whatever the latency was.
    pub(crate) fn force_slow(&self, span: TraceSpan) {
        if let Ok(mut log) = self.slow.lock() {
            if log.len() == self.slow_capacity {
                log.pop_front();
            }
            log.push_back(span);
        }
    }

    pub(crate) fn traces(&self) -> Vec<TraceSpan> {
        self.ring.snapshot()
    }

    pub(crate) fn slow_queries(&self) -> Vec<TraceSpan> {
        self.slow
            .lock()
            .map(|l| l.iter().cloned().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u64,
        submitted: f64,
        routed: f64,
        windows: &[(f64, f64)],
        resolved: f64,
    ) -> TraceSpan {
        TraceSpan {
            id,
            kind: SpanKind::Query,
            submitted,
            net: None,
            routed,
            shards: windows
                .iter()
                .enumerate()
                .map(|(i, &(start, finish))| ShardSpan {
                    shard: i,
                    replica: 0,
                    start,
                    finish,
                    n_io: 3,
                })
                .collect(),
            resolved,
        }
    }

    #[test]
    fn stages_telescope_to_end_to_end() {
        let s = span(7, 1.0, 1.001, &[(1.002, 1.010), (1.003, 1.014)], 1.0145);
        let total = s.route() + s.queue_wait() + s.service() + s.merge();
        assert!((total - s.end_to_end()).abs() < 1e-12);
        assert!((s.end_to_end() - 0.0145).abs() < 1e-12);
        assert!(s.route() > 0.0 && s.queue_wait() > 0.0 && s.service() > 0.0);
        assert_eq!(s.total_io(), 6);
    }

    #[test]
    fn net_stage_telescopes() {
        // A network request: received at 1.0 (= submitted), decoded at
        // 1.0004, routed at 1.001 — the net stage slots in front of
        // route and the five-stage sum still telescopes exactly.
        let mut s = span(3, 1.0, 1.001, &[(1.002, 1.010)], 1.0105);
        s.net = Some(NetStage {
            received: 1.0,
            decoded: 1.0004,
        });
        assert!((s.net_ingress() - 0.0004).abs() < 1e-12);
        assert!((s.route() - 0.0006).abs() < 1e-12);
        let total = s.net_ingress() + s.route() + s.queue_wait() + s.service() + s.merge();
        assert!((total - s.end_to_end()).abs() < 1e-12);
        assert!(s.render().contains("net "));
        // In-process spans are unchanged: zero net stage, route from
        // `submitted`.
        let plain = span(4, 1.0, 1.001, &[(1.002, 1.010)], 1.0105);
        assert_eq!(plain.net_ingress(), 0.0);
        assert!((plain.route() - 0.001).abs() < 1e-12);
        assert!(!plain.render().contains("net "));
    }

    #[test]
    fn stages_telescope_with_no_shard_windows() {
        // A degenerate span (e.g. all partials lost) still telescopes.
        let s = span(1, 2.0, 2.5, &[], 3.0);
        let total = s.route() + s.queue_wait() + s.service() + s.merge();
        assert!((total - s.end_to_end()).abs() < 1e-12);
        assert!(s.queue_wait() >= 0.0 && s.service() >= 0.0);
    }

    #[test]
    fn stages_telescope_with_clock_skew() {
        // Worker dequeued before the submitter stamped `routed` (the
        // stamp happens after the sends return): queue_wait may go
        // slightly negative but the telescoped sum stays exact.
        let s = span(2, 1.0, 1.005, &[(1.004, 1.02)], 1.021);
        assert!(s.queue_wait() < 0.0);
        let total = s.route() + s.queue_wait() + s.service() + s.merge();
        assert!((total - s.end_to_end()).abs() < 1e-12);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.push(span(i, 0.0, 0.0, &[], 0.001));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.iter().all(|s| s.id >= 6));
        assert_eq!(ring.published(), 10);
    }

    #[test]
    fn tracer_routes_slow_and_sampled() {
        let t = Tracer::new(0.0, 8, 0.010, 2);
        assert!(!t.disabled());
        for i in 0..5u64 {
            // Only ids 3 and 4 exceed the 10 ms threshold.
            let e2e = if i >= 3 { 0.02 } else { 0.001 };
            t.observe(span(i, 0.0, 0.0, &[], e2e));
        }
        let slow = t.slow_queries();
        assert_eq!(slow.len(), 2);
        assert!(slow.iter().all(|s| s.end_to_end() > 0.010));
        // sample = 0.0 → nothing in the ring.
        assert!(t.traces().is_empty());

        let all = Tracer::new(1.0, 16, f64::INFINITY, 2);
        for i in 0..5u64 {
            all.observe(span(i, 0.0, 0.0, &[], 0.001));
        }
        assert_eq!(all.traces().len(), 5);
        assert!(all.slow_queries().is_empty());

        let off = Tracer::new(0.0, 16, f64::INFINITY, 2);
        assert!(off.disabled());
    }

    #[test]
    fn sampling_is_deterministic_and_proportional() {
        let t = Tracer::new(0.25, 8, f64::INFINITY, 2);
        let hits = (0..4000u64).filter(|&i| t.sampled(i)).count();
        // splitmix64 spreads ids uniformly; 25% ± a loose margin.
        assert!((800..1200).contains(&hits), "hits = {hits}");
        // Same ids, same decisions.
        let t2 = Tracer::new(0.25, 8, f64::INFINITY, 2);
        assert!((0..100).all(|i| t.sampled(i) == t2.sampled(i)));
    }

    #[test]
    fn render_mentions_all_stages() {
        let s = span(9, 0.0, 0.001, &[(0.002, 0.012)], 0.0125);
        let line = s.render();
        for needle in ["#9", "route", "wait", "service", "merge", "s0r0"] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }
}
