//! The sharded query service: configuration, reports, and the
//! run-to-completion wrappers over the session API.
//!
//! Since the session redesign the serving machinery lives in
//! [`crate::session`]: [`ShardedService::start`] brings up topology,
//! per-replica reactors, writers and collector once and returns a
//! long-lived
//! [`Session`] whose cloneable [`Client`](crate::session::Client)
//! handles submit queries and writes non-blocking, resolving through
//! per-request tickets. This module keeps:
//!
//! * [`ServiceConfig`] / [`ServiceReport`] / [`BatchQueryReport`] — the
//!   configuration and reporting types (reports now also serve as
//!   [`Session::metrics`] snapshots; see
//!   [`ServiceReport::interval_since`]);
//! * [`dedup_batch`] — the batch dedup map;
//! * the **legacy wrappers** [`ShardedService::serve`],
//!   [`ShardedService::serve_mixed`] and
//!   [`ShardedService::query_batch`]: each opens a session, pumps the
//!   pre-generated workload through a client under the requested
//!   [`Load`] discipline, closes the session and assembles the familiar
//!   report. They are *thin clients of the new API* — the oracle
//!   harnesses assert bit-exact equivalence between a wrapper call and
//!   a hand-driven session on the same seeded workload.
//!
//! Queries fan out to every **shard**, and within each shard the
//! [`Router`](crate::router) picks one **replica** (of
//! [`ServiceConfig::replicas_per_shard`]) to serve the shard's partial
//! — power-of-two-choices over live admission-queue depth by default
//! ([`RoutePolicy`]). Inserts and deletes route to the owning shard's
//! single writer thread (see [`crate::update`] and the id-minting
//! contract in [`crate::session`]). Every per-replica queue is bounded
//! by the service's [`AdmissionControl`] — reads and writes draw from
//! separate budgets, and offered load beyond capacity degrades into
//! explicit rejections or bounded stalls rather than unbounded queues
//! and meaningless percentiles.

use crate::admission::AdmissionControl;
use crate::loadgen::{Load, Op};
use crate::metrics::{imbalance, LatencyHistogram, LatencySummary, OpStatus};
use crate::net::NetCounters;
use crate::reactor::sleep_until;
use crate::router::{RoutePolicy, MAX_REPLICAS};
use crate::session::{insert_base, QueryTicket, Session, WriteOp, WriteTicket};
use crate::shard::ShardSet;
use crate::topology::Topology;
use crate::trace::TraceSpan;
use crossbeam::channel::unbounded;
use e2lsh_core::dataset::Dataset;
use e2lsh_storage::device::cached::CachePolicy;
use e2lsh_storage::device::sim::DeviceProfile;
use e2lsh_storage::device::DeviceStats;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// What device each replica's reactor drives.
#[derive(Clone, Copy, Debug)]
pub enum DeviceSpec {
    /// Real positioned reads against the shard's index file through a
    /// per-replica reader-thread pool (wall clock).
    File {
        /// Reader threads per replica (OS-visible queue depth).
        io_workers: usize,
    },
    /// A private simulated array per replica — aggregate device
    /// bandwidth scales with the replica count (models "one drive per
    /// replica": each replica adds hardware). The variant name predates
    /// the reactor, when each worker thread owned a private array.
    SimPerWorker {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in each replica's array.
        num_devices: usize,
    },
    /// One simulated array per shard, shared by **all of the shard's
    /// replicas** — their reactors contend for the array's total IOPS,
    /// the paper's Figure 16 regime (replicas add CPU and cache, not
    /// device bandwidth).
    SimShared {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in the shard's array.
        num_devices: usize,
    },
}

impl DeviceSpec {
    pub(crate) fn is_sim(&self) -> bool {
        matches!(
            self,
            DeviceSpec::SimPerWorker { .. } | DeviceSpec::SimShared { .. }
        )
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Replicas backing each shard (read scaling + failover; 1 = the
    /// PR-3 single-pool service).
    pub replicas_per_shard: usize,
    /// How the dispatcher picks a replica within each shard per query.
    pub routing: RoutePolicy,
    /// CPU compute threads backing each replica's reactor (hashing,
    /// bucket scans, distance evaluation). The replica's *I/O*
    /// concurrency is [`ServiceConfig::inflight_per_replica`] — since
    /// the completion-driven engine, in-flight queries are slots in the
    /// reactor, not blocked threads.
    pub workers_per_replica: usize,
    /// Legacy capacity knob: with [`ServiceConfig::inflight_per_replica`]
    /// = 0 (the default), the reactor's slot count is
    /// `workers_per_replica × contexts_per_worker` — the same
    /// per-replica concurrency the pre-reactor worker pool offered, so
    /// existing configurations keep their capacity.
    pub contexts_per_worker: usize,
    /// In-flight query slots per replica: how many interleaved
    /// [`QueryState`](e2lsh_storage::query::QueryState)s the replica's
    /// reactor multiplexes over its device handle. This — not a thread
    /// count — is the service-level queue depth; thousands of slots
    /// over a handful of compute threads is the intended regime (the
    /// paper's §6.5 async-over-sync unlock at service scale). 0 (the
    /// default) derives `workers_per_replica × contexts_per_worker`.
    pub inflight_per_replica: usize,
    /// Neighbors returned per query.
    pub k: usize,
    /// Candidate budget override (default `params.s_for_k(k)` per shard).
    pub s_override: Option<usize>,
    /// Device each replica's reactor drives.
    pub device: DeviceSpec,
    /// Per-replica admission budgets, split by op class: queries beyond
    /// the read budget are shed with
    /// [`Overload`](crate::admission::Overload); writes beyond the
    /// write budget are shed by [`Client::write`] or backpressure
    /// [`Client::write_blocking`] (and the legacy wrappers). Default
    /// [`AdmissionControl::UNBOUNDED`] (nothing shed).
    ///
    /// [`Client::write`]: crate::session::Client::write
    /// [`Client::write_blocking`]: crate::session::Client::write_blocking
    pub admission: AdmissionControl,
    /// Replica-aware cache warming budget in blocks: at session start
    /// (and after [`Topology::unfence_and_warm`]), a replica whose
    /// block cache is cold is pre-filled with up to this many of its
    /// warmest sibling's most-recently-used blocks, so it does not pay
    /// the full cold-start miss cost. 0 (the default) disables warming.
    /// Warmed blocks count in
    /// [`DeviceStats::cache_warmed`](e2lsh_storage::device::DeviceStats::cache_warmed).
    pub cache_warm_blocks: usize,
    /// Per-client fairness cap: one [`Client`](crate::session::Client)
    /// (with its clones) may have at most this many queries
    /// outstanding; excess submissions are shed client-side with
    /// [`CLIENT_THROTTLE_SHARD`](crate::session::CLIENT_THROTTLE_SHARD)
    /// so a greedy client cannot monopolize the shared read budgets.
    /// `usize::MAX` (the default) disables the cap.
    pub per_client_inflight: usize,
    /// Fraction of requests (queries and writes) whose full
    /// [`TraceSpan`] is published to the session's bounded trace ring
    /// ([`Session::traces`](crate::session::Session::traces)).
    /// Sampling is deterministic by ticket id, so a seeded rerun
    /// samples the same requests. 0.0 (the default) disables the ring;
    /// 1.0 traces everything.
    pub trace_sample: f64,
    /// Capacity of the trace ring: how many recent sampled spans are
    /// retained.
    pub trace_capacity: usize,
    /// End-to-end latency (seconds) beyond which a request's full span
    /// breakdown is retained in the **slow-query log**
    /// ([`Session::slow_queries`](crate::session::Session::slow_queries),
    /// [`ServiceReport::slow_queries`]) regardless of sampling.
    /// `f64::INFINITY` (the default) disables the log.
    pub slow_query_threshold: f64,
    /// How many slow-query spans the log retains (oldest evicted
    /// first).
    pub slow_log_capacity: usize,
    /// Replacement/admission policy for every shard's block cache (and
    /// the replica caches cloned from it). [`CachePolicy::Lru`] (the
    /// default) keeps the original sharded LRU bit-exactly;
    /// [`CachePolicy::TinyLfu`] enables W-TinyLFU admission with
    /// region-partitioned capacity — a `TinyLfuConfig::region_boundary`
    /// of 0 is auto-filled per shard from its index geometry
    /// (`heap_base / BLOCK_SIZE`), so table-region blocks get their own
    /// budget without the caller knowing the file layout. Ignored when
    /// [`ShardBuildConfig::cache_blocks`](crate::shard::ShardBuildConfig::cache_blocks)
    /// is 0 (uncached).
    pub cache_policy: CachePolicy,
    /// Single-flight read coalescing: when true, concurrent cache
    /// misses on the same block share one in-flight device read (the
    /// waiters park on the leader's fill and are completed from its
    /// bytes — counted in
    /// [`DeviceStats::coalesced_reads`](e2lsh_storage::device::DeviceStats::coalesced_reads)).
    /// Off by default: coalescing changes which reads reach a
    /// *simulated* device, so seeded virtual-time suites stay
    /// bit-exact unless they opt in.
    pub cache_coalescing: bool,
    /// Space-reclamation budget in **block reads** per maintenance
    /// tick, per shard. Each shard's writer thread runs one
    /// [`ShardUpdater::maintain`](crate::update::ShardUpdater::maintain)
    /// tick when its write queue goes idle (and periodically between
    /// bursts of applied writes), scanning at most this many chain
    /// blocks before yielding back to queued writes — reclamation
    /// steals only bounded slices of the writer's time. 0 (the
    /// default) disables background maintenance entirely; deletes
    /// still reclaim blocks they empty.
    pub maintenance_blocks_per_tick: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            replicas_per_shard: 1,
            routing: RoutePolicy::default(),
            workers_per_replica: 1,
            contexts_per_worker: 16,
            inflight_per_replica: 0,
            k: 1,
            s_override: None,
            device: DeviceSpec::File { io_workers: 4 },
            admission: AdmissionControl::UNBOUNDED,
            cache_warm_blocks: 0,
            per_client_inflight: usize::MAX,
            trace_sample: 0.0,
            trace_capacity: 1024,
            slow_query_threshold: f64::INFINITY,
            slow_log_capacity: 64,
            cache_policy: CachePolicy::Lru,
            cache_coalescing: false,
            maintenance_blocks_per_tick: 0,
        }
    }
}

impl ServiceConfig {
    /// The reactor slot count per replica:
    /// [`ServiceConfig::inflight_per_replica`] when set, otherwise the
    /// derived pre-reactor capacity `workers_per_replica ×
    /// contexts_per_worker`.
    pub fn resolved_inflight(&self) -> usize {
        if self.inflight_per_replica > 0 {
            self.inflight_per_replica
        } else {
            self.workers_per_replica.max(1) * self.contexts_per_worker.max(1)
        }
    }

    pub(crate) fn engine(&self) -> e2lsh_storage::query::EngineConfig {
        let mut e = e2lsh_storage::query::EngineConfig::wall_clock(self.k);
        e.contexts = self.resolved_inflight();
        e.s_override = self.s_override;
        e
    }
}

/// Aggregate results of one service run — and, since the session
/// redesign, the shape of a [`Session::metrics`] snapshot.
///
/// Latency accounting is **histogram-first**: the live session books
/// every op into fixed-memory [`LatencyHistogram`]s (the `*_hist`
/// fields), so snapshots are O(1) in completed ops and a session can
/// run for days without growth. The per-op vectors (`results`,
/// `latencies`, …) are populated only by the run-to-completion
/// wrappers, which assemble them from their own tickets; in session
/// snapshots they are **empty** (results resolve on tickets, use the
/// histograms and counters).
///
/// [`Session::metrics`]: crate::session::Session::metrics
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Merged global top-k per query, distance ascending (empty for
    /// shed queries). Wrapper runs only; empty in session snapshots.
    pub results: Vec<Vec<(u32, f32)>>,
    /// Per-query status: [`OpStatus::Shed`] queries were rejected at
    /// admission and have no results or latency samples. Wrapper runs
    /// only.
    pub statuses: Vec<OpStatus>,
    /// Per-query end-to-end latency in seconds, from **queue entry**
    /// (dispatch for closed loop, scheduled arrival for open loop) to
    /// the last shard's finish. Includes enqueue wait (and, under
    /// [`Load::ClosedBackoff`], backoff wait — measured from the first
    /// dispatch attempt). 0 for shed queries — use the accepted-only
    /// summaries. Wrapper runs only.
    pub latencies: Vec<f64>,
    /// Per-query **service** latency in seconds: from the first reactor
    /// slot admitting the query to the last shard's finish. Excludes
    /// enqueue wait; `latencies[q] - service_latencies[q]` is the time
    /// query `q` spent queued. 0 for shed queries. Wrapper runs only.
    pub service_latencies: Vec<f64>,
    /// Per-write end-to-end latency in seconds (queue entry → applied),
    /// in stream order. Failed and shed writes are excluded — they
    /// count in [`ServiceReport::writes_failed`] /
    /// [`ServiceReport::shed_writes`]. Wrapper runs only (and empty for
    /// read-only runs).
    pub write_latencies: Vec<f64>,
    /// Per-write service latency in seconds (writer dequeue → applied),
    /// parallel to [`ServiceReport::write_latencies`]. Wrapper runs
    /// only.
    pub write_service_latencies: Vec<f64>,
    /// Queries completed (accepted and answered). The histogram-backed
    /// replacement for `results.len() - shed_queries`, valid in every
    /// report shape.
    pub completed_queries: usize,
    /// Writes applied by the shard writers (excludes failed and shed
    /// writes).
    pub writes_applied: usize,
    /// End-to-end latency histogram of completed queries (what
    /// [`ServiceReport::latency`] summarizes in session snapshots).
    pub read_hist: LatencyHistogram,
    /// Service-only latency histogram of completed queries.
    pub read_service_hist: LatencyHistogram,
    /// Enqueue-wait histogram of completed queries (per-op
    /// `latency - service`, never a difference of percentiles).
    pub read_wait_hist: LatencyHistogram,
    /// End-to-end latency histogram of applied writes.
    pub write_hist: LatencyHistogram,
    /// Service-only latency histogram of applied writes.
    pub write_service_hist: LatencyHistogram,
    /// Enqueue-wait histogram of applied writes.
    pub write_wait_hist: LatencyHistogram,
    /// The slow-query log at snapshot time: full [`TraceSpan`]
    /// breakdowns of the most recent requests whose end-to-end latency
    /// exceeded [`ServiceConfig::slow_query_threshold`] (bounded by
    /// [`ServiceConfig::slow_log_capacity`]).
    pub slow_queries: Vec<TraceSpan>,
    /// Writes whose updater returned an error (the shard stays
    /// queryable; rewritten blocks were still invalidated) or whose
    /// delete target was not live.
    pub writes_failed: usize,
    /// Queries rejected at admission with
    /// [`Overload`](crate::admission::Overload) (after exhausting their
    /// retries, under [`Load::ClosedBackoff`]).
    pub shed_queries: usize,
    /// Writes rejected at admission. Always 0 through the legacy
    /// wrappers (they submit writes under backpressure); sessions may
    /// shed writes through [`Client::write`] — the relaxed contract
    /// session-minted insert ids enable (see [`crate::session`]).
    ///
    /// [`Client::write`]: crate::session::Client::write
    pub shed_writes: usize,
    /// Re-dispatch attempts made by backoff-honoring closed-loop
    /// clients ([`Load::ClosedBackoff`]); 0 under every other
    /// discipline and in session snapshots (clients own their retry
    /// policy).
    pub retries: usize,
    /// Queries re-dispatched from a fenced replica to a live sibling
    /// (counted per query × shard partial).
    pub failovers: usize,
    /// Shard partials abandoned because a fenced replica had no live
    /// sibling left: the affected queries completed with that shard's
    /// contribution empty (degraded answers, not hangs).
    pub lost_partials: usize,
    /// High-water per-replica queue depth (max across all replicas'
    /// read queues and the shards' write queues); never exceeds the
    /// configured read/write
    /// [`AdmissionBudget`](crate::admission::AdmissionBudget) depths
    /// except for the one-op overrun of a blocking write that could
    /// never fit the budget at all (admitted alone into an empty queue
    /// rather than hanging the submitter — see
    /// [`GatedSender::send_blocking`](crate::admission::GatedSender::send_blocking)).
    pub peak_queue_depth: usize,
    /// Seconds from the session epoch to the last terminal event.
    pub duration: f64,
    /// Device statistics summed over replicas (shared arrays counted
    /// once per shard; cache counters — including invalidations,
    /// discarded stale fills and warmed blocks — are per-session deltas
    /// over every replica's cache).
    pub device: DeviceStats,
    /// Total I/Os issued across shards (under
    /// [`RoutePolicy::Broadcast`] this includes the R× amplification).
    pub total_io: u64,
    /// Compute threads serving (shards × replicas × compute threads
    /// per replica's reactor). The field name predates the reactor.
    pub workers: usize,
    /// Shards queried.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Queries served per `[shard][replica]` (live reactor counters):
    /// the observable the router balances. See
    /// [`ServiceReport::replica_imbalance`].
    pub replica_load: Vec<Vec<u64>>,
    /// Network-tier counters ([`crate::net::NetServer`]): all zero for
    /// in-process sessions; a `NetServer`'s
    /// [`metrics`](crate::net::NetServer::metrics) snapshot fills them.
    pub net: NetCounters,
}

impl ServiceReport {
    /// An all-zero report for a service of the given shape (the
    /// empty-workload wrapper result and the base of interval deltas).
    pub(crate) fn empty(workers: usize, shards: usize, replicas: usize) -> Self {
        Self {
            results: Vec::new(),
            statuses: Vec::new(),
            latencies: Vec::new(),
            service_latencies: Vec::new(),
            write_latencies: Vec::new(),
            write_service_latencies: Vec::new(),
            completed_queries: 0,
            writes_applied: 0,
            read_hist: LatencyHistogram::new(),
            read_service_hist: LatencyHistogram::new(),
            read_wait_hist: LatencyHistogram::new(),
            write_hist: LatencyHistogram::new(),
            write_service_hist: LatencyHistogram::new(),
            write_wait_hist: LatencyHistogram::new(),
            slow_queries: Vec::new(),
            writes_failed: 0,
            shed_queries: 0,
            shed_writes: 0,
            retries: 0,
            failovers: 0,
            lost_partials: 0,
            peak_queue_depth: 0,
            duration: 0.0,
            device: DeviceStats::default(),
            total_io: 0,
            workers,
            shards,
            replicas,
            replica_load: vec![vec![0; replicas]; shards],
            net: NetCounters::default(),
        }
    }

    /// **Accepted** (completed) queries per second — the service's
    /// goodput. Shed queries do not count.
    pub fn qps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.completed_queries as f64 / self.duration
        }
    }

    /// Alias of [`ServiceReport::qps`], named for saturation sweeps
    /// where offered rate and goodput diverge.
    pub fn goodput(&self) -> f64 {
        self.qps()
    }

    /// Shed ops over all ops offered (queries and writes).
    pub fn shed_rate(&self) -> f64 {
        let shed = self.shed_queries + self.shed_writes;
        let total = self.completed_queries
            + self.shed_queries
            + self.writes_applied
            + self.writes_failed
            + self.shed_writes;
        if total == 0 {
            0.0
        } else {
            shed as f64 / total as f64
        }
    }

    /// Applied writes per second (0 for read-only runs).
    pub fn wps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.writes_applied as f64 / self.duration
        }
    }

    /// End-to-end read-latency percentiles (queue entry → finish) over
    /// **accepted** queries only. Wrapper reports summarize their exact
    /// per-op samples; session snapshots summarize
    /// [`ServiceReport::read_hist`] (bounded relative error, see
    /// [`LatencyHistogram::RELATIVE_ERROR`]).
    pub fn latency(&self) -> LatencySummary {
        if self.latencies.is_empty() {
            self.read_hist.summary()
        } else {
            LatencySummary::of_accepted(&self.latencies, &self.statuses)
        }
    }

    /// Service-only read-latency percentiles (first reactor start →
    /// finish) over accepted queries: what the shards cost, with
    /// enqueue wait removed.
    pub fn service_latency(&self) -> LatencySummary {
        if self.service_latencies.is_empty() {
            self.read_service_hist.summary()
        } else {
            LatencySummary::of_accepted(&self.service_latencies, &self.statuses)
        }
    }

    /// Enqueue-wait percentiles of accepted queries (queue entry →
    /// first reactor start): `latency() ≈ queue_wait() + service_latency()`
    /// distribution-wise; exactly per query.
    pub fn queue_wait(&self) -> LatencySummary {
        if self.latencies.is_empty() {
            return self.read_wait_hist.summary();
        }
        let waits: Vec<f64> = self
            .latencies
            .iter()
            .zip(&self.service_latencies)
            .map(|(&l, &s)| (l - s).max(0.0))
            .collect();
        LatencySummary::of_accepted(&waits, &self.statuses)
    }

    /// End-to-end write-latency percentiles (all zeros for read-only
    /// runs).
    pub fn write_latency(&self) -> LatencySummary {
        if self.write_latencies.is_empty() {
            self.write_hist.summary()
        } else {
            LatencySummary::of(&self.write_latencies)
        }
    }

    /// Service-only write-latency percentiles (writer dequeue →
    /// applied).
    pub fn write_service_latency(&self) -> LatencySummary {
        if self.write_service_latencies.is_empty() {
            self.write_service_hist.summary()
        } else {
            LatencySummary::of(&self.write_service_latencies)
        }
    }

    /// Enqueue-wait percentiles of applied writes (queue entry →
    /// writer dequeue), computed per op from the parallel latency
    /// vectors — **not** a difference of percentiles, which would mix
    /// tails of different ops.
    pub fn write_queue_wait(&self) -> LatencySummary {
        if self.write_latencies.is_empty() {
            return self.write_wait_hist.summary();
        }
        let waits: Vec<f64> = self
            .write_latencies
            .iter()
            .zip(&self.write_service_latencies)
            .map(|(&l, &s)| (l - s).max(0.0))
            .collect();
        LatencySummary::of(&waits)
    }

    /// Mean I/Os per accepted query (summed over shards).
    pub fn mean_n_io(&self) -> f64 {
        if self.completed_queries == 0 {
            0.0
        } else {
            self.total_io as f64 / self.completed_queries as f64
        }
    }

    /// Worst per-shard replica-load imbalance (max replica load over
    /// mean, maximized over shards): 1.0 = perfectly balanced, R =
    /// everything on one of R replicas. 0 for an idle run. Routing
    /// policies are judged by this together with the accepted p99.
    pub fn replica_imbalance(&self) -> f64 {
        self.replica_load
            .iter()
            .map(|loads| imbalance(loads))
            .fold(0.0, f64::max)
    }

    /// The delta between this snapshot and an earlier one of the
    /// **same session** ([`Session::metrics`] snapshots are monotonic):
    /// counters subtract, latency **histograms subtract** — integer
    /// bucket counts, so the interval's histograms are *bit-identical*
    /// to histograms that recorded only the interval's ops — and
    /// `duration` becomes the interval's wall time (so `qps()` etc. are
    /// interval rates). High-water marks (`peak_queue_depth`), the
    /// slow-query log and structural fields
    /// (`workers`/`shards`/`replicas`) carry this snapshot's values.
    /// The per-op wrapper vectors come back empty (session snapshots
    /// never carry them).
    ///
    /// Only meaningful on **session snapshots** ([`Session::metrics`] /
    /// [`Session::shutdown`]): two wrapper reports are not snapshots of
    /// one stream and fail the monotonicity assertions.
    ///
    /// [`Session::shutdown`]: crate::session::Session::shutdown
    ///
    /// [`Session::metrics`]: crate::session::Session::metrics
    pub fn interval_since(&self, prev: &ServiceReport) -> ServiceReport {
        assert!(
            self.completed_queries >= prev.completed_queries
                && self.shed_queries >= prev.shed_queries,
            "snapshots from one session, in order"
        );
        let d_shed = self.shed_queries - prev.shed_queries;
        ServiceReport {
            results: Vec::new(),
            statuses: Vec::new(),
            latencies: Vec::new(),
            service_latencies: Vec::new(),
            write_latencies: Vec::new(),
            write_service_latencies: Vec::new(),
            completed_queries: self.completed_queries - prev.completed_queries,
            writes_applied: self.writes_applied - prev.writes_applied,
            read_hist: self.read_hist.minus(&prev.read_hist),
            read_service_hist: self.read_service_hist.minus(&prev.read_service_hist),
            read_wait_hist: self.read_wait_hist.minus(&prev.read_wait_hist),
            write_hist: self.write_hist.minus(&prev.write_hist),
            write_service_hist: self.write_service_hist.minus(&prev.write_service_hist),
            write_wait_hist: self.write_wait_hist.minus(&prev.write_wait_hist),
            slow_queries: self.slow_queries.clone(),
            writes_failed: self.writes_failed - prev.writes_failed,
            shed_queries: d_shed,
            shed_writes: self.shed_writes - prev.shed_writes,
            retries: self.retries - prev.retries,
            failovers: self.failovers - prev.failovers,
            lost_partials: self.lost_partials - prev.lost_partials,
            peak_queue_depth: self.peak_queue_depth,
            duration: (self.duration - prev.duration).max(0.0),
            device: {
                let mut d = self.device;
                crate::session::device_sub(&mut d, &prev.device);
                d
            },
            total_io: self.total_io - prev.total_io,
            workers: self.workers,
            shards: self.shards,
            replicas: self.replicas,
            replica_load: self
                .replica_load
                .iter()
                .zip(&prev.replica_load)
                .map(|(now, before)| {
                    now.iter()
                        .zip(before)
                        .map(|(&n, &b)| n - b.min(n))
                        .collect()
                })
                .collect(),
            net: self.net.minus(&prev.net),
        }
    }
}

/// Results of one batch request served by
/// [`ShardedService::query_batch`] /
/// [`Session::query_batch`](crate::session::Session::query_batch).
#[derive(Clone, Debug)]
pub struct BatchQueryReport {
    /// Merged global top-k per **input** query, distance ascending.
    /// Duplicates of one unique query hold clones of the same merged
    /// vector — byte-identical. Empty for shed queries.
    pub results: Vec<Vec<(u32, f32)>>,
    /// Per-input-query status; duplicates share their representative's
    /// fate (one admission decision per unique query).
    pub statuses: Vec<OpStatus>,
    /// Per-input-query latency in seconds from the request arrival
    /// (all queries of a batch enter the queue at one instant) to the
    /// last shard finish of the query's representative. 0 for shed
    /// queries.
    pub latencies: Vec<f64>,
    /// Distinct queries after dedup (engine-side work units).
    pub unique: usize,
    /// Duplicates collapsed by dedup (`results.len() - unique`).
    pub collapsed: usize,
    /// Input queries shed with [`Overload`](crate::admission::Overload)
    /// (duplicates counted).
    pub shed: usize,
    /// Unique queries re-dispatched off a fenced replica mid-batch.
    pub failovers: usize,
    /// High-water replica queue depth while serving this batch.
    pub peak_queue_depth: usize,
    /// Seconds from request arrival to the last completion.
    pub duration: f64,
    /// Device statistics (conventions as in [`ServiceReport::device`]).
    pub device: DeviceStats,
    /// Engine probes issued across shards (table + bucket reads) — with
    /// dedup this counts **unique** queries' I/O only; the saving over
    /// per-query serving is `collapsed` × the per-query I/O cost.
    pub total_io: u64,
    /// Compute threads that served the request.
    pub workers: usize,
    /// Shards queried.
    pub shards: usize,
}

impl BatchQueryReport {
    /// Latency percentiles over accepted input queries.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::of_accepted(&self.latencies, &self.statuses)
    }

    /// Fraction of the batch collapsed by dedup.
    pub fn dedup_rate(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.collapsed as f64 / self.results.len() as f64
        }
    }
}

/// The dedup map of one batch: which input queries collapse onto which
/// engine-side unique query.
#[derive(Clone, Debug)]
pub struct BatchDedup {
    /// Input index of each unique query's first occurrence, in
    /// first-seen order — the batch the engine actually serves.
    pub uniques: Vec<usize>,
    /// Input index → index into [`BatchDedup::uniques`] of the query's
    /// representative (`rep[uniques[u]] == u`).
    pub rep: Vec<usize>,
}

/// Group byte-identical queries of a batch.
///
/// **Dedup key definition:** the bit pattern of the query's
/// coordinates (`f32::to_bits` per dimension) — exact equality, no
/// tolerance. `-0.0` and `0.0` are *different* keys, every `NaN`
/// payload is its own key; two queries collapse iff a client sent the
/// same bytes twice, which is the hot-query case batching targets
/// (retries, trending items, shared prompts). No float comparison
/// semantics are involved, so dedup can never merge queries whose
/// results could differ.
pub fn dedup_batch(batch: &Dataset) -> BatchDedup {
    let mut seen: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut uniques = Vec::new();
    let mut rep = Vec::with_capacity(batch.len());
    for i in 0..batch.len() {
        let key: Vec<u32> = batch.point(i).iter().map(|v| v.to_bits()).collect();
        let u = *seen.entry(key).or_insert_with(|| {
            uniques.push(i);
            uniques.len() - 1
        });
        rep.push(u);
    }
    BatchDedup { uniques, rep }
}

/// A query waiting out its
/// [`Overload::retry_after`](crate::admission::Overload::retry_after)
/// backoff under [`Load::ClosedBackoff`]. Min-heap by due time.
struct Retry {
    at: f64,
    op_idx: usize,
}

impl PartialEq for Retry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.op_idx == other.op_idx
    }
}
impl Eq for Retry {}
impl PartialOrd for Retry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Retry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other
            .at
            .total_cmp(&self.at)
            .then(other.op_idx.cmp(&self.op_idx))
    }
}

/// The sharded, replicated, multi-threaded E2LSHoS query service.
pub struct ShardedService {
    topo: Arc<Topology>,
    config: ServiceConfig,
}

impl ShardedService {
    /// Serve `shards` with `config`: each shard is backed by
    /// `config.replicas_per_shard` replicas (see [`crate::topology`]).
    pub fn new(shards: ShardSet, config: ServiceConfig) -> Self {
        assert!(config.workers_per_replica >= 1);
        assert!(config.replicas_per_shard >= 1);
        assert!(config.replicas_per_shard <= MAX_REPLICAS);
        assert!(config.k >= 1);
        let mut shards = shards;
        if config.cache_policy != CachePolicy::Lru {
            // Reshape each shard's (still empty) cache before the
            // topology clones per-replica caches from it, so every
            // replica inherits the policy.
            shards.set_cache_policy(config.cache_policy);
        }
        Self {
            topo: Arc::new(Topology::new(shards, config.replicas_per_shard)),
            config,
        }
    }

    /// The shard set.
    pub fn shards(&self) -> &ShardSet {
        self.topo.shards()
    }

    /// The serving topology (replica health lives here:
    /// [`Topology::fence`] kills a replica mid-run, the router fails
    /// its work over to a sibling; [`Topology::unfence_and_warm`]
    /// brings it back with a pre-filled cache).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Bring the service up as a long-lived [`Session`]: per-replica
    /// reactors, writers and collector start once; submit work through
    /// [`Session::client`] handles; read incremental metrics with
    /// [`Session::metrics`]; drain and join with [`Session::shutdown`].
    /// See [`crate::session`] for the full lifecycle.
    ///
    /// Multiple concurrent sessions over one service share the
    /// topology (replica caches, fences, the live index) but own
    /// private queues and reactors. At most one session should
    /// write at a time — the per-shard writers take the index's
    /// read-write handles.
    pub fn start(&self) -> Session {
        Session::start(Arc::clone(&self.topo), self.config.clone())
    }

    /// Run `queries` through the service under the given admission
    /// discipline; blocks until every query completes. Read-only
    /// shorthand for [`ShardedService::serve_mixed`].
    ///
    /// A thin wrapper over the session API: opens a session, pumps the
    /// workload through one client, shuts down. Bit-exact equivalent to
    /// driving a session by hand with the same workload.
    pub fn serve(&self, queries: &Dataset, load: Load) -> ServiceReport {
        let ops: Vec<Op> = (0..queries.len()).map(Op::Query).collect();
        let no_inserts = Dataset::with_capacity(queries.dim().max(1), 0);
        self.serve_mixed(queries, &no_inserts, &ops, load)
    }

    /// Run a mixed read–write op stream through the service; blocks
    /// until every op completes.
    ///
    /// `ops` references `queries` (each `Op::Query(i)` must appear
    /// exactly once for `i < queries.len()`) and `inserts`
    /// (`Op::Insert(j)` consumes pool point `j`, in ascending order —
    /// the session mints the `j`-th insert's global id as build-time
    /// total + inserts applied by earlier runs + `j`, routed
    /// round-robin over the shards). `Op::Delete(g)` must target an id
    /// that is live at its position in the stream.
    /// [`crate::loadgen::mixed_ops`] generates conforming streams (use
    /// [`crate::loadgen::mixed_ops_resuming`] for follow-up runs on a
    /// mutated service).
    ///
    /// A thin wrapper over the session API: queries submit through
    /// [`Client::query_at`](crate::session::Client::query_at) under the
    /// load discipline's schedule, writes through the **blocking**
    /// submission path (so nothing is ever shed — `shed_writes` stays
    /// 0, as under the PR-3 contract), and the per-op tickets assemble
    /// the report. Bit-exact equivalent to a hand-driven session.
    pub fn serve_mixed(
        &self,
        queries: &Dataset,
        inserts: &Dataset,
        ops: &[Op],
        load: Load,
    ) -> ServiceReport {
        let shards = self.topo.shards();
        assert_eq!(queries.dim(), shards.dim(), "query dimensionality");
        let num_shards = shards.num_shards();
        let num_queries = ops.iter().filter(|op| matches!(op, Op::Query(_))).count();
        assert_eq!(
            num_queries,
            queries.len(),
            "ops must cover each query exactly once"
        );
        let has_writes = ops.len() > num_queries;
        if has_writes {
            assert_eq!(inserts.dim(), shards.dim(), "insert dimensionality");
        }
        // Validate write ops up front: a bad op would fail inside a
        // shard writer thread, turning a generator bug into a silent
        // `writes_failed` instead of a loud failure here. Checks:
        // insert indices are dense and ascending (the session mints
        // global ids as `insert_base + j`) and fit the pool; deletes
        // target ids assigned before them in the stream (per-shard FIFO
        // then guarantees delete-after-insert); and each shard's growth
        // fits the id space its index codec was built with.
        {
            let insert_base = insert_base(&self.topo);
            let mut assigned = insert_base;
            let mut expected_insert = 0usize;
            let mut new_rows = vec![0usize; num_shards];
            let mut seen_query = vec![false; queries.len()];
            for op in ops {
                match *op {
                    Op::Query(qi) => {
                        assert!(qi < queries.len(), "query index out of range");
                        assert!(!seen_query[qi], "query {qi} appears twice");
                        seen_query[qi] = true;
                    }
                    Op::Insert(j) => {
                        assert_eq!(
                            j, expected_insert,
                            "insert indices must be dense and ascending"
                        );
                        new_rows[shards.plan().shard_of_any(assigned)] += 1;
                        expected_insert += 1;
                        assigned += 1;
                    }
                    Op::Delete(g) => {
                        assert!(
                            (g as usize) < assigned,
                            "delete of unassigned global id {g} (ids end at {assigned})"
                        );
                    }
                }
            }
            assert!(
                expected_insert <= inserts.len(),
                "ops consume {expected_insert} insert points but the pool holds {}",
                inserts.len()
            );
            for (s, shard) in shards.shards().iter().enumerate() {
                let id_space = 1u64 << shard.index.codec().id_bits;
                assert!(
                    (shard.num_rows() + new_rows[s]) as u64 <= id_space,
                    "shard {s}: {} inserts exceed the id space ({id_space} ids) — \
                     build with a larger ShardBuildConfig::capacity",
                    new_rows[s]
                );
            }
        }

        if ops.is_empty() {
            // Nothing to do: skip the whole session spin-up/join.
            let replicas = self.config.replicas_per_shard;
            return ServiceReport::empty(
                num_shards * replicas * self.config.workers_per_replica,
                num_shards,
                replicas,
            );
        }

        let session = self.start();
        let pump = pump_workload(&session, queries, inserts, ops, load);
        let mut report = session.shutdown();

        // Per-op outcomes come from the tickets; session-level counters
        // (device, duration, failovers, write latencies in completion
        // order, peak depths) from the final snapshot.
        let nq = queries.len();
        let mut results = Vec::with_capacity(nq);
        let mut statuses = Vec::with_capacity(nq);
        let mut latencies = Vec::with_capacity(nq);
        let mut service_latencies = Vec::with_capacity(nq);
        let mut shed_queries = 0usize;
        for t in pump.query_tickets {
            let r = t.expect("every query submitted").wait();
            if r.status == OpStatus::Shed {
                shed_queries += 1;
            }
            results.push(r.neighbors);
            statuses.push(r.status);
            latencies.push(r.latency);
            service_latencies.push(r.service_latency);
        }
        // Session snapshots carry no per-op vectors; the wrapper
        // rebuilds them from its write tickets (stream order, applied
        // writes only — failed writes are counted, not sampled).
        let mut write_latencies = Vec::new();
        let mut write_service_latencies = Vec::new();
        for t in pump.write_tickets {
            let r = t.wait();
            debug_assert_eq!(r.status, OpStatus::Ok, "wrapper writes never shed");
            if r.applied {
                write_latencies.push(r.latency);
                write_service_latencies.push(r.service_latency);
            }
        }
        report.completed_queries = results.len() - shed_queries;
        report.results = results;
        report.statuses = statuses;
        report.latencies = latencies;
        report.service_latencies = service_latencies;
        report.write_latencies = write_latencies;
        report.write_service_latencies = write_service_latencies;
        report.shed_queries = shed_queries;
        report.retries = pump.retries;
        report
    }

    /// Serve one **batch request**: a vector of queries admitted,
    /// executed and merged as a unit, with byte-identical queries
    /// deduplicated before they reach the engine (see [`dedup_batch`]
    /// and
    /// [`Session::query_batch`](crate::session::Session::query_batch)).
    ///
    /// A thin wrapper: opens a session, serves the batch through it,
    /// shuts down — so the report's device/queue counters cover exactly
    /// this request. Admission is per *unique* query under the
    /// service's read budget (all-or-nothing across shards): a unique
    /// query that would overflow its chosen replica's queue is shed,
    /// and every duplicate of it reports [`OpStatus::Shed`].
    pub fn query_batch(&self, batch: &Dataset) -> BatchQueryReport {
        let session = self.start();
        let report = session.query_batch(batch);
        drop(session.shutdown());
        report
    }
}

/// Ticket collections one wrapper pump produced.
struct PumpOut {
    /// Per query index (every slot filled by the pump).
    query_tickets: Vec<Option<QueryTicket>>,
    /// Stream-order write tickets.
    write_tickets: Vec<WriteTicket>,
    /// Re-dispatch attempts under [`Load::ClosedBackoff`].
    retries: usize,
}

/// Pump one pre-generated workload through a session client under the
/// given load discipline (the legacy wrappers' engine room).
fn pump_workload(
    session: &Session,
    queries: &Dataset,
    inserts: &Dataset,
    ops: &[Op],
    load: Load,
) -> PumpOut {
    // The service pumping its own workload is exempt from the
    // per-client fairness cap (that knob protects external clients
    // from each other) — a capped pump would shed queries the shard
    // budgets had room for.
    let client = session.internal_client();
    let total = ops.len();
    let mut out = PumpOut {
        query_tickets: (0..queries.len()).map(|_| None).collect(),
        write_tickets: Vec::new(),
        retries: 0,
    };
    if total == 0 {
        return out;
    }
    // Completion notifications multiplex the in-flight window; ticket
    // id → op index maps them back (retries mint fresh ticket ids).
    let (ntx, nrx) = unbounded::<u64>();
    let mut tid2op: HashMap<u64, usize> = HashMap::new();
    let submit = |op_idx: usize,
                  ref_time: f64,
                  out: &mut PumpOut,
                  tid2op: &mut HashMap<u64, usize>,
                  first: bool| {
        match ops[op_idx] {
            Op::Query(qi) => {
                let t =
                    client.submit_query(queries.point(qi), Some(ref_time), Some(ntx.clone()), None);
                tid2op.insert(t.id(), op_idx);
                out.query_tickets[qi] = Some(t);
            }
            Op::Insert(j) => {
                let t = client.submit_write(
                    WriteOp::Insert(inserts.point(j)),
                    Some(ref_time),
                    true,
                    Some(ntx.clone()),
                    None,
                );
                tid2op.insert(t.id(), op_idx);
                debug_assert!(first);
                out.write_tickets.push(t);
            }
            Op::Delete(g) => {
                let t = client.submit_write(
                    WriteOp::Delete(g),
                    Some(ref_time),
                    true,
                    Some(ntx.clone()),
                    None,
                );
                tid2op.insert(t.id(), op_idx);
                debug_assert!(first);
                out.write_tickets.push(t);
            }
        }
    };

    match load {
        Load::Closed { .. } | Load::ClosedBackoff { .. } => {
            let (window, max_retries) = match load {
                Load::Closed { window } => (window, 0usize),
                Load::ClosedBackoff {
                    window,
                    max_retries,
                } => (window, max_retries),
                _ => unreachable!(),
            };
            let window = window.max(1).min(total);
            let mut ref_time = vec![0.0f64; total];
            let mut attempts_left = vec![max_retries; total];
            let mut pending: BinaryHeap<Retry> = BinaryHeap::new();
            let mut next = 0usize;
            let mut inflight = 0usize;
            let mut done = 0usize;
            while done < total {
                // Fill the window: due retries first, then fresh ops.
                loop {
                    if inflight >= window {
                        break;
                    }
                    let now = session.now();
                    if pending.peek().is_some_and(|r| r.at <= now) {
                        let r = pending.pop().unwrap();
                        out.retries += 1;
                        submit(r.op_idx, ref_time[r.op_idx], &mut out, &mut tid2op, false);
                        inflight += 1;
                        continue;
                    }
                    if next >= total {
                        break;
                    }
                    ref_time[next] = now;
                    submit(next, now, &mut out, &mut tid2op, true);
                    inflight += 1;
                    next += 1;
                }
                if done >= total {
                    break;
                }
                // Wait for a completion — or only until the next retry
                // is due, if one could be dispatched then.
                let tid = if inflight < window && !pending.is_empty() {
                    let due = pending.peek().unwrap().at;
                    let wait = (due - session.now()).max(0.0);
                    match nrx.recv_timeout(std::time::Duration::from_secs_f64(wait)) {
                        Ok(tid) => tid,
                        Err(_) => continue,
                    }
                } else {
                    nrx.recv().expect("session alive")
                };
                inflight -= 1;
                let op_idx = tid2op[&tid];
                match ops[op_idx] {
                    Op::Query(qi) => {
                        let res = out.query_tickets[qi]
                            .as_ref()
                            .and_then(QueryTicket::poll)
                            .expect("notified ticket is resolved");
                        if res.status == OpStatus::Shed && attempts_left[op_idx] > 0 {
                            // Honor the retry_after hint; latency stays
                            // measured from the first attempt.
                            attempts_left[op_idx] -= 1;
                            let after = res
                                .overload
                                .map(|o| o.retry_after)
                                .unwrap_or(crate::admission::Overload::MIN_RETRY_AFTER);
                            pending.push(Retry {
                                at: session.now() + after,
                                op_idx,
                            });
                        } else {
                            done += 1;
                        }
                    }
                    // Writes go through the blocking path: their ticket
                    // resolution is always terminal.
                    _ => done += 1,
                }
            }
        }
        Load::Open { .. } | Load::Burst { .. } => {
            // Open loop: arrivals never wait for completions. Queries
            // submit non-blocking (a shed resolves the ticket
            // immediately); a full write queue backpressures the
            // arrival thread — the stall is visible in write latency,
            // which is measured from the scheduled arrival.
            let arrivals = load.arrival_schedule(total);
            let epoch = session.epoch();
            for (op_idx, &at) in arrivals.iter().enumerate() {
                sleep_until(epoch, at);
                submit(op_idx, at, &mut out, &mut tid2op, true);
            }
            // Resolution is awaited by the caller per ticket.
        }
    }
    out
}
