//! The sharded query service: worker-pool orchestration, request
//! admission and top-k merging.

use crate::loadgen::{poisson_arrivals, Load};
use crate::metrics::LatencySummary;
use crate::shard::{Shard, ShardSet};
use crate::shared_sim::SharedSimArray;
use crate::worker::{run_worker, sleep_until, Job, WorkerCtx, WorkerMsg};
use crossbeam::channel::{unbounded, Receiver, Sender};
use e2lsh_core::dataset::Dataset;
use e2lsh_storage::device::cached::CachedDevice;
use e2lsh_storage::device::file::FileDevice;
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, DeviceStats};
use e2lsh_storage::layout::BLOCK_SIZE;
use e2lsh_storage::query::EngineConfig;
use std::sync::Arc;
use std::time::Instant;

/// What device each worker drives.
#[derive(Clone, Copy, Debug)]
pub enum DeviceSpec {
    /// Real positioned reads against the shard's index file through a
    /// per-worker reader-thread pool (wall clock).
    File {
        /// Reader threads per worker (OS-visible queue depth).
        io_workers: usize,
    },
    /// A private simulated array per worker — aggregate device bandwidth
    /// scales with the worker count (models "one drive per worker").
    SimPerWorker {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in each worker's array.
        num_devices: usize,
    },
    /// One simulated array per shard, shared by all of the shard's
    /// workers — workers contend for the array's total IOPS, the paper's
    /// Figure 16 regime.
    SimShared {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in the shard's array.
        num_devices: usize,
    },
}

impl DeviceSpec {
    fn is_sim(&self) -> bool {
        matches!(
            self,
            DeviceSpec::SimPerWorker { .. } | DeviceSpec::SimShared { .. }
        )
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Interleaved queries per worker (engine contexts).
    pub contexts_per_worker: usize,
    /// Neighbors returned per query.
    pub k: usize,
    /// Candidate budget override (default `params.s_for_k(k)` per shard).
    pub s_override: Option<usize>,
    /// Device each worker drives.
    pub device: DeviceSpec,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers_per_shard: 1,
            contexts_per_worker: 16,
            k: 1,
            s_override: None,
            device: DeviceSpec::File { io_workers: 4 },
        }
    }
}

impl ServiceConfig {
    fn engine(&self) -> EngineConfig {
        let mut e = EngineConfig::wall_clock(self.k);
        e.contexts = self.contexts_per_worker.max(1);
        e.s_override = self.s_override;
        e
    }
}

/// Aggregate results of one service run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Merged global top-k per query, distance ascending.
    pub results: Vec<Vec<(u32, f32)>>,
    /// Per-query latency in seconds (dispatch→last shard for closed
    /// loop, scheduled arrival→last shard for open loop).
    pub latencies: Vec<f64>,
    /// Seconds from service epoch to the last completion.
    pub duration: f64,
    /// Device statistics summed over workers (shared arrays counted
    /// once; cache counters are per-run deltas over the shard caches).
    pub device: DeviceStats,
    /// Total I/Os issued across shards.
    pub total_io: u64,
    /// Worker threads that served the run.
    pub workers: usize,
    /// Shards queried.
    pub shards: usize,
}

impl ServiceReport {
    /// Completed queries per second.
    pub fn qps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / self.duration
        }
    }

    /// Latency percentiles.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::of(&self.latencies)
    }

    /// Mean I/Os per query (summed over shards).
    pub fn mean_n_io(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.total_io as f64 / self.results.len() as f64
        }
    }
}

/// Per-query accumulation while shard partials trickle in.
struct Accum {
    remaining: usize,
    neighbors: Vec<(u32, f32)>,
    finish: f64,
}

/// The sharded, multi-threaded E2LSHoS query service.
pub struct ShardedService {
    shards: ShardSet,
    config: ServiceConfig,
}

impl ShardedService {
    /// Serve `shards` with `config`.
    pub fn new(shards: ShardSet, config: ServiceConfig) -> Self {
        assert!(config.workers_per_shard >= 1);
        assert!(config.k >= 1);
        Self { shards, config }
    }

    /// The shard set.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// The configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Run `queries` through the service under the given admission
    /// discipline; blocks until every query completes.
    pub fn serve(&self, queries: &Dataset, load: Load) -> ServiceReport {
        assert_eq!(queries.dim(), self.shards.dim(), "query dimensionality");
        let nq = queries.len();
        let num_shards = self.shards.num_shards();
        let workers_total = num_shards * self.config.workers_per_shard;
        if nq == 0 {
            return ServiceReport {
                results: Vec::new(),
                latencies: Vec::new(),
                duration: 0.0,
                device: DeviceStats::default(),
                total_io: 0,
                workers: workers_total,
                shards: num_shards,
            };
        }

        let engine = self.config.engine();
        let sim_time = self.config.device.is_sim();
        let epoch = Instant::now();

        // Snapshot cache counters so the report shows per-run deltas even
        // when a warm cache is reused across runs.
        let cache_snapshot: Vec<(u64, u64, u64)> = self
            .shards
            .shards()
            .iter()
            .map(|s| match &s.cache {
                Some(c) => (c.hits(), c.misses(), c.evictions()),
                None => (0, 0, 0),
            })
            .collect();

        // One shared simulated array per shard when requested.
        let arrays: Vec<Option<SharedSimArray>> = self
            .shards
            .shards()
            .iter()
            .map(|shard| match self.config.device {
                DeviceSpec::SimShared {
                    profile,
                    num_devices,
                } => {
                    let sim = SimStorage::new(
                        profile,
                        num_devices,
                        Backing::open(&shard.path).expect("open shard index"),
                    );
                    Some(SharedSimArray::new(sim, self.config.workers_per_shard))
                }
                _ => None,
            })
            .collect();

        // Per-shard job queues and the worker→collector channel.
        let channels: Vec<(Sender<Job>, Receiver<Job>)> =
            (0..num_shards).map(|_| unbounded()).collect();
        let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();

        let mut report: Option<ServiceReport> = None;
        std::thread::scope(|scope| {
            for (s, shard) in self.shards.shards().iter().enumerate() {
                for w in 0..self.config.workers_per_shard {
                    let device = self.make_device(shard, &arrays[s], w);
                    let jobs = channels[s].1.clone();
                    let tx = msg_tx.clone();
                    let engine = &engine;
                    scope.spawn(move || {
                        run_worker(
                            WorkerCtx {
                                shard,
                                worker_in_shard: w,
                                queries,
                                engine,
                                sim_time,
                                epoch,
                            },
                            device,
                            jobs,
                            tx,
                        );
                    });
                }
            }
            drop(msg_tx);
            let job_txs: Vec<Sender<Job>> = channels.iter().map(|(tx, _)| tx.clone()).collect();
            drop(channels);

            report = Some(self.drive(queries, load, job_txs, msg_rx, epoch, &cache_snapshot));
        });
        report.expect("collector ran")
    }

    fn make_device(
        &self,
        shard: &Shard,
        array: &Option<SharedSimArray>,
        worker_in_shard: usize,
    ) -> Box<dyn Device> {
        fn wrap<D: Device + 'static>(dev: D, shard: &Shard) -> Box<dyn Device> {
            match &shard.cache {
                Some(cache) => {
                    Box::new(CachedDevice::new(dev, Arc::clone(cache), BLOCK_SIZE as u32))
                }
                None => Box::new(dev),
            }
        }
        match self.config.device {
            DeviceSpec::File { io_workers } => wrap(
                FileDevice::open(&shard.path, io_workers.max(1)).expect("open shard index"),
                shard,
            ),
            DeviceSpec::SimPerWorker {
                profile,
                num_devices,
            } => wrap(
                SimStorage::new(
                    profile,
                    num_devices,
                    Backing::open(&shard.path).expect("open shard index"),
                ),
                shard,
            ),
            DeviceSpec::SimShared { .. } => wrap(
                array
                    .as_ref()
                    .expect("shared array built")
                    .handle(worker_in_shard),
                shard,
            ),
        }
    }

    /// Dispatch queries per the admission discipline and collect partials
    /// into merged results.
    fn drive(
        &self,
        queries: &Dataset,
        load: Load,
        job_txs: Vec<Sender<Job>>,
        msg_rx: Receiver<WorkerMsg>,
        epoch: Instant,
        cache_snapshot: &[(u64, u64, u64)],
    ) -> ServiceReport {
        let nq = queries.len();
        let num_shards = self.shards.num_shards();
        let k = self.config.k;
        let mut accum: Vec<Accum> = (0..nq)
            .map(|_| Accum {
                remaining: num_shards,
                neighbors: Vec::new(),
                finish: 0.0,
            })
            .collect();
        let mut results: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nq];
        let mut latencies = vec![0.0f64; nq];
        let mut ref_time = vec![0.0f64; nq]; // dispatch (closed) or arrival (open)
        let mut total_io = 0u64;
        let mut done = 0usize;
        let mut duration = 0.0f64;

        // Accumulate one partial; returns the finished query id, if any.
        let take = |msg: WorkerMsg,
                    accum: &mut Vec<Accum>,
                    results: &mut Vec<Vec<(u32, f32)>>,
                    total_io: &mut u64|
         -> Option<usize> {
            match msg {
                WorkerMsg::Partial {
                    qid,
                    neighbors,
                    n_io,
                    finish,
                    ..
                } => {
                    let a = &mut accum[qid];
                    debug_assert!(a.remaining > 0, "extra partial for query {qid}");
                    a.neighbors.extend(neighbors);
                    a.finish = a.finish.max(finish);
                    a.remaining -= 1;
                    *total_io += u64::from(n_io);
                    if a.remaining == 0 {
                        let mut merged = std::mem::take(&mut a.neighbors);
                        merged.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
                        merged.truncate(k);
                        results[qid] = merged;
                        Some(qid)
                    } else {
                        None
                    }
                }
                WorkerMsg::Done { .. } => {
                    unreachable!("Done before the job queues closed")
                }
            }
        };

        match load {
            Load::Closed { window } => {
                let window = window.max(1).min(nq);
                let mut next = 0usize;
                let send = |qid: usize, ref_time: &mut Vec<f64>| {
                    ref_time[qid] = epoch.elapsed().as_secs_f64();
                    for tx in &job_txs {
                        tx.send(Job { qid }).expect("workers alive");
                    }
                };
                for _ in 0..window {
                    send(next, &mut ref_time);
                    next += 1;
                }
                while done < nq {
                    let msg = msg_rx.recv().expect("workers alive");
                    if let Some(qid) = take(msg, &mut accum, &mut results, &mut total_io) {
                        latencies[qid] = accum[qid].finish - ref_time[qid];
                        duration = duration.max(accum[qid].finish);
                        done += 1;
                        if next < nq {
                            send(next, &mut ref_time);
                            next += 1;
                        }
                    }
                }
            }
            Load::Open { rate_qps, seed } => {
                let arrivals = poisson_arrivals(nq, rate_qps, seed);
                ref_time.copy_from_slice(&arrivals);
                let dispatch_txs = job_txs.clone();
                std::thread::scope(|scope| {
                    scope.spawn(|| {
                        for (qid, &at) in arrivals.iter().enumerate() {
                            sleep_until(epoch, at);
                            for tx in &dispatch_txs {
                                tx.send(Job { qid }).expect("workers alive");
                            }
                        }
                    });
                    while done < nq {
                        let msg = msg_rx.recv().expect("workers alive");
                        if let Some(qid) = take(msg, &mut accum, &mut results, &mut total_io) {
                            latencies[qid] = accum[qid].finish - ref_time[qid];
                            duration = duration.max(accum[qid].finish);
                            done += 1;
                        }
                    }
                });
            }
        }

        // Close the queues and aggregate worker statistics.
        drop(job_txs);
        let mut device = DeviceStats::default();
        while let Ok(msg) = msg_rx.recv() {
            if let WorkerMsg::Done {
                worker_in_shard,
                device: d,
                ..
            } = msg
            {
                // Shared arrays report whole-array stats from every
                // worker: count one handle per shard.
                let shared = matches!(self.config.device, DeviceSpec::SimShared { .. });
                if !shared || worker_in_shard == 0 {
                    device.completed += d.completed;
                    device.bytes += d.bytes;
                    device.latency_sum += d.latency_sum;
                    device.busy_sum += d.busy_sum;
                }
            }
        }
        // Cache counters: per-run deltas over the shard caches (device
        // stats would double count — every worker of a shard shares one
        // cache).
        for (shard, &(h0, m0, e0)) in self.shards.shards().iter().zip(cache_snapshot) {
            if let Some(c) = &shard.cache {
                device.cache_hits += c.hits() - h0;
                device.cache_misses += c.misses() - m0;
                device.cache_evictions += c.evictions() - e0;
            }
        }

        ServiceReport {
            results,
            latencies,
            duration,
            device,
            total_io,
            workers: self.shards.num_shards() * self.config.workers_per_shard,
            shards: num_shards,
        }
    }
}
