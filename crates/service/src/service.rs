//! The sharded query service: topology-aware dispatch, worker-pool
//! orchestration, request admission (reads *and* online writes) and
//! top-k merging.
//!
//! Queries fan out to every **shard**, and within each shard the
//! [`Router`](crate::router) picks one **replica** (of
//! [`ServiceConfig::replicas_per_shard`]) to serve the shard's partial
//! — power-of-two-choices over live admission-queue depth by default,
//! round-robin and broadcast as baselines ([`RoutePolicy`]). Replicas
//! share the shard's index and rows but own private worker pools,
//! block caches and admission queues ([`crate::topology`]); a fenced
//! or panicked replica is routed around and its outstanding queries
//! re-dispatched to a sibling (failover — see [`crate::router`] for
//! the protocol).
//!
//! Inserts and deletes route to the owning shard's single writer
//! thread, which applies them through the storage crate's `Updater`
//! and invalidates exactly the rewritten blocks in **every** replica's
//! cache (see [`crate::update`]). Both kinds flow through one
//! admission discipline ([`Load`]) and one op stream, so a mixed
//! workload's read latency degradation under writes is measured end to
//! end.
//!
//! Every per-replica queue is bounded by the service's
//! [`AdmissionControl`] — reads and writes draw from **separate**
//! budgets, so a write burst can never shed reads. A *query* that
//! would exceed its chosen replica's queue budget is **shed** at
//! dispatch with a typed [`Overload`] error (carrying a `retry_after`
//! backoff hint; [`Load::ClosedBackoff`] models clients that honor
//! it), while a *write* that hits a full queue **backpressures** the
//! dispatcher (stalls until there is room — the op stream's positional
//! id assignment cannot survive a dropped write; see
//! [`crate::admission`]). Either way, offered load beyond capacity
//! degrades into explicit rejections or bounded stalls rather than
//! unbounded queues and meaningless percentiles. Batches of queries go
//! through [`ShardedService::query_batch`], which deduplicates
//! byte-identical hot queries before they reach the engine and shares
//! one fan-out/merge pass per request.

use crate::admission::{gated, AdmissionControl, GatedReceiver, GatedSender, Overload};
use crate::loadgen::{Load, Op};
use crate::metrics::{imbalance, LatencySummary, OpStatus};
use crate::router::{lane_states, LaneState, RoutePolicy, Router};
use crate::shard::{Shard, ShardSet};
use crate::shared_sim::SharedSimArray;
use crate::topology::Topology;
use crate::update::{run_writer, WriteJob, WriteKind};
use crate::worker::{run_worker, sleep_until, Job, WorkerCtx, WorkerMsg};
use crossbeam::channel::{unbounded, Receiver, Sender};
use e2lsh_core::dataset::Dataset;
use e2lsh_storage::device::cached::CachedDevice;
use e2lsh_storage::device::file::FileDevice;
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, DeviceStats};
use e2lsh_storage::layout::BLOCK_SIZE;
use e2lsh_storage::query::EngineConfig;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// What device each worker drives.
#[derive(Clone, Copy, Debug)]
pub enum DeviceSpec {
    /// Real positioned reads against the shard's index file through a
    /// per-worker reader-thread pool (wall clock).
    File {
        /// Reader threads per worker (OS-visible queue depth).
        io_workers: usize,
    },
    /// A private simulated array per worker — aggregate device bandwidth
    /// scales with the worker count (models "one drive per worker", and
    /// with replicas, "one drive per replica worker": each replica adds
    /// hardware).
    SimPerWorker {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in each worker's array.
        num_devices: usize,
    },
    /// One simulated array per shard, shared by all of the shard's
    /// workers **across all of its replicas** — workers contend for the
    /// array's total IOPS, the paper's Figure 16 regime (replicas add
    /// CPU and cache, not device bandwidth).
    SimShared {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in the shard's array.
        num_devices: usize,
    },
}

impl DeviceSpec {
    fn is_sim(&self) -> bool {
        matches!(
            self,
            DeviceSpec::SimPerWorker { .. } | DeviceSpec::SimShared { .. }
        )
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Replicas backing each shard (read scaling + failover; 1 = the
    /// PR-3 single-pool service).
    pub replicas_per_shard: usize,
    /// How the dispatcher picks a replica within each shard per query.
    pub routing: RoutePolicy,
    /// Worker threads per replica.
    pub workers_per_replica: usize,
    /// Interleaved queries per worker (engine contexts).
    pub contexts_per_worker: usize,
    /// Neighbors returned per query.
    pub k: usize,
    /// Candidate budget override (default `params.s_for_k(k)` per shard).
    pub s_override: Option<usize>,
    /// Device each worker drives.
    pub device: DeviceSpec,
    /// Per-replica admission budgets, split by op class: queries beyond
    /// the read budget are shed with [`Overload`], writes beyond the
    /// write budget backpressure the dispatcher. Default
    /// [`AdmissionControl::UNBOUNDED`] (nothing shed).
    pub admission: AdmissionControl,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            replicas_per_shard: 1,
            routing: RoutePolicy::default(),
            workers_per_replica: 1,
            contexts_per_worker: 16,
            k: 1,
            s_override: None,
            device: DeviceSpec::File { io_workers: 4 },
            admission: AdmissionControl::UNBOUNDED,
        }
    }
}

impl ServiceConfig {
    fn engine(&self) -> EngineConfig {
        let mut e = EngineConfig::wall_clock(self.k);
        e.contexts = self.contexts_per_worker.max(1);
        e.s_override = self.s_override;
        e
    }
}

/// Aggregate results of one service run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Merged global top-k per query, distance ascending (empty for
    /// shed queries).
    pub results: Vec<Vec<(u32, f32)>>,
    /// Per-query status: [`OpStatus::Shed`] queries were rejected at
    /// admission and have no results or latency samples.
    pub statuses: Vec<OpStatus>,
    /// Per-query end-to-end latency in seconds, from **queue entry**
    /// (dispatch for closed loop, scheduled arrival for open loop) to
    /// the last shard's finish. Includes enqueue wait (and, under
    /// [`Load::ClosedBackoff`], backoff wait — measured from the first
    /// dispatch attempt). 0 for shed queries — use the accepted-only
    /// summaries.
    pub latencies: Vec<f64>,
    /// Per-query **service** latency in seconds: from the first worker
    /// slot admitting the query to the last shard's finish. Excludes
    /// enqueue wait; `latencies[q] - service_latencies[q]` is the time
    /// query `q` spent queued. 0 for shed queries.
    pub service_latencies: Vec<f64>,
    /// Per-write end-to-end latency in seconds (queue entry → applied),
    /// in completion order. Failed and shed writes are excluded — they
    /// count in [`ServiceReport::writes_failed`] /
    /// [`ServiceReport::shed_writes`]. Empty for read-only runs.
    pub write_latencies: Vec<f64>,
    /// Per-write service latency in seconds (writer dequeue → applied),
    /// parallel to [`ServiceReport::write_latencies`].
    pub write_service_latencies: Vec<f64>,
    /// Writes whose updater returned an error (the shard stays
    /// queryable; rewritten blocks were still invalidated).
    pub writes_failed: usize,
    /// Queries rejected at admission with [`Overload`] (after
    /// exhausting their retries, under [`Load::ClosedBackoff`]).
    pub shed_queries: usize,
    /// Writes rejected at admission. Always 0 under the current
    /// discipline — writes use backpressure (the dispatcher stalls on
    /// a full write queue) because the op stream's positional id
    /// assignment cannot survive a dropped write; the field exists so
    /// the accounting stays total if per-class shedding is added.
    pub shed_writes: usize,
    /// Re-dispatch attempts made by backoff-honoring closed-loop
    /// clients ([`Load::ClosedBackoff`]); 0 under every other
    /// discipline.
    pub retries: usize,
    /// Queries re-dispatched from a fenced replica to a live sibling
    /// (counted per query × shard partial).
    pub failovers: usize,
    /// Shard partials abandoned because a fenced replica had no live
    /// sibling left: the affected queries completed with that shard's
    /// contribution empty (degraded answers, not hangs).
    pub lost_partials: usize,
    /// High-water per-replica queue depth over the run (max across all
    /// replicas' read queues and the shards' write queues); never
    /// exceeds the configured read/write
    /// [`AdmissionBudget`](crate::admission::AdmissionBudget) depths
    /// except for the one-op overrun of a write that could never fit
    /// the budget at all (admitted alone into an empty queue rather
    /// than hanging the dispatcher — see
    /// [`GatedSender::send_blocking`]).
    pub peak_queue_depth: usize,
    /// Seconds from service epoch to the last completion.
    pub duration: f64,
    /// Device statistics summed over workers (shared arrays counted
    /// once per shard; cache counters — including invalidations and
    /// discarded stale fills — are per-run deltas over every replica's
    /// cache).
    pub device: DeviceStats,
    /// Total I/Os issued across shards (under
    /// [`RoutePolicy::Broadcast`] this includes the R× amplification).
    pub total_io: u64,
    /// Worker threads that served the run (shards × replicas × workers
    /// per replica).
    pub workers: usize,
    /// Shards queried.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Queries served per `[shard][replica]` (from worker exit
    /// reports): the observable the router balances. See
    /// [`ServiceReport::replica_imbalance`].
    pub replica_load: Vec<Vec<u64>>,
}

impl ServiceReport {
    /// **Accepted** (completed) queries per second — the service's
    /// goodput. Shed queries do not count.
    pub fn qps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            (self.results.len() - self.shed_queries) as f64 / self.duration
        }
    }

    /// Alias of [`ServiceReport::qps`], named for saturation sweeps
    /// where offered rate and goodput diverge.
    pub fn goodput(&self) -> f64 {
        self.qps()
    }

    /// Shed ops over all ops offered (queries and writes).
    pub fn shed_rate(&self) -> f64 {
        let shed = self.shed_queries + self.shed_writes;
        let total =
            self.results.len() + self.write_latencies.len() + self.writes_failed + self.shed_writes;
        if total == 0 {
            0.0
        } else {
            shed as f64 / total as f64
        }
    }

    /// Applied writes per second (0 for read-only runs).
    pub fn wps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.write_latencies.len() as f64 / self.duration
        }
    }

    /// End-to-end read-latency percentiles (queue entry → finish) over
    /// **accepted** queries only.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::of_accepted(&self.latencies, &self.statuses)
    }

    /// Service-only read-latency percentiles (first worker start →
    /// finish) over accepted queries: what the shards cost, with
    /// enqueue wait removed.
    pub fn service_latency(&self) -> LatencySummary {
        LatencySummary::of_accepted(&self.service_latencies, &self.statuses)
    }

    /// Enqueue-wait percentiles of accepted queries (queue entry →
    /// first worker start): `latency() ≈ queue_wait() + service_latency()`
    /// distribution-wise; exactly per query.
    pub fn queue_wait(&self) -> LatencySummary {
        let waits: Vec<f64> = self
            .latencies
            .iter()
            .zip(&self.service_latencies)
            .map(|(&l, &s)| (l - s).max(0.0))
            .collect();
        LatencySummary::of_accepted(&waits, &self.statuses)
    }

    /// End-to-end write-latency percentiles (all zeros for read-only
    /// runs).
    pub fn write_latency(&self) -> LatencySummary {
        LatencySummary::of(&self.write_latencies)
    }

    /// Service-only write-latency percentiles (writer dequeue →
    /// applied).
    pub fn write_service_latency(&self) -> LatencySummary {
        LatencySummary::of(&self.write_service_latencies)
    }

    /// Enqueue-wait percentiles of applied writes (queue entry →
    /// writer dequeue), computed per op from the parallel latency
    /// vectors — **not** a difference of percentiles, which would mix
    /// tails of different ops.
    pub fn write_queue_wait(&self) -> LatencySummary {
        let waits: Vec<f64> = self
            .write_latencies
            .iter()
            .zip(&self.write_service_latencies)
            .map(|(&l, &s)| (l - s).max(0.0))
            .collect();
        LatencySummary::of(&waits)
    }

    /// Mean I/Os per accepted query (summed over shards).
    pub fn mean_n_io(&self) -> f64 {
        let accepted = self.results.len() - self.shed_queries;
        if accepted == 0 {
            0.0
        } else {
            self.total_io as f64 / accepted as f64
        }
    }

    /// Worst per-shard replica-load imbalance (max replica load over
    /// mean, maximized over shards): 1.0 = perfectly balanced, R =
    /// everything on one of R replicas. 0 for an idle run. Routing
    /// policies are judged by this together with the accepted p99.
    pub fn replica_imbalance(&self) -> f64 {
        self.replica_load
            .iter()
            .map(|loads| imbalance(loads))
            .fold(0.0, f64::max)
    }
}

/// Results of one batch request served by
/// [`ShardedService::query_batch`].
#[derive(Clone, Debug)]
pub struct BatchQueryReport {
    /// Merged global top-k per **input** query, distance ascending.
    /// Duplicates of one unique query hold clones of the same merged
    /// vector — byte-identical. Empty for shed queries.
    pub results: Vec<Vec<(u32, f32)>>,
    /// Per-input-query status; duplicates share their representative's
    /// fate (one admission decision per unique query).
    pub statuses: Vec<OpStatus>,
    /// Per-input-query latency in seconds from the request arrival
    /// (all queries of a batch enter the queue at one instant) to the
    /// last shard finish of the query's representative. 0 for shed
    /// queries.
    pub latencies: Vec<f64>,
    /// Distinct queries after dedup (engine-side work units).
    pub unique: usize,
    /// Duplicates collapsed by dedup (`results.len() - unique`).
    pub collapsed: usize,
    /// Input queries shed with [`Overload`] (duplicates counted).
    pub shed: usize,
    /// Unique queries re-dispatched off a fenced replica mid-batch.
    pub failovers: usize,
    /// High-water replica queue depth while serving this batch.
    pub peak_queue_depth: usize,
    /// Seconds from request arrival to the last completion.
    pub duration: f64,
    /// Device statistics (conventions as in [`ServiceReport::device`]).
    pub device: DeviceStats,
    /// Engine probes issued across shards (table + bucket reads) — with
    /// dedup this counts **unique** queries' I/O only; the saving over
    /// per-query serving is `collapsed` × the per-query I/O cost.
    pub total_io: u64,
    /// Worker threads that served the request.
    pub workers: usize,
    /// Shards queried.
    pub shards: usize,
}

impl BatchQueryReport {
    /// Latency percentiles over accepted input queries.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::of_accepted(&self.latencies, &self.statuses)
    }

    /// Fraction of the batch collapsed by dedup.
    pub fn dedup_rate(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.collapsed as f64 / self.results.len() as f64
        }
    }
}

/// The dedup map of one batch: which input queries collapse onto which
/// engine-side unique query.
#[derive(Clone, Debug)]
pub struct BatchDedup {
    /// Input index of each unique query's first occurrence, in
    /// first-seen order — the batch the engine actually serves.
    pub uniques: Vec<usize>,
    /// Input index → index into [`BatchDedup::uniques`] of the query's
    /// representative (`rep[uniques[u]] == u`).
    pub rep: Vec<usize>,
}

/// Group byte-identical queries of a batch.
///
/// **Dedup key definition:** the bit pattern of the query's
/// coordinates (`f32::to_bits` per dimension) — exact equality, no
/// tolerance. `-0.0` and `0.0` are *different* keys, every `NaN`
/// payload is its own key; two queries collapse iff a client sent the
/// same bytes twice, which is the hot-query case batching targets
/// (retries, trending items, shared prompts). No float comparison
/// semantics are involved, so dedup can never merge queries whose
/// results could differ.
pub fn dedup_batch(batch: &Dataset) -> BatchDedup {
    let mut seen: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut uniques = Vec::new();
    let mut rep = Vec::with_capacity(batch.len());
    for i in 0..batch.len() {
        let key: Vec<u32> = batch.point(i).iter().map(|v| v.to_bits()).collect();
        let u = *seen.entry(key).or_insert_with(|| {
            uniques.push(i);
            uniques.len() - 1
        });
        rep.push(u);
    }
    BatchDedup { uniques, rep }
}

/// Per-query accumulation while shard partials trickle in. The number
/// of partials a shard owes is not stored here: it is the query's live
/// dispatch quota ([`Router::quota`] — the replicas actually sent to,
/// shrunk by broadcast fences), so the accounting follows failover
/// re-routing exactly.
struct Accum {
    /// Partials received per shard; a partial for a shard that already
    /// met its quota is a failover duplicate and is dropped.
    got: Vec<u8>,
    /// Merged and booked (no further partial is counted).
    finished: bool,
    neighbors: Vec<(u32, f32)>,
    /// Earliest shard service start (min over partials).
    start: f64,
    /// Latest shard finish (max over partials).
    finish: f64,
}

/// A query waiting out its [`Overload::retry_after`] backoff under
/// [`Load::ClosedBackoff`]. Min-heap by due time.
struct Retry {
    at: f64,
    op_idx: usize,
    /// Re-attempts left after this one.
    left: usize,
}

impl PartialEq for Retry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.op_idx == other.op_idx
    }
}
impl Eq for Retry {}
impl PartialOrd for Retry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Retry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        other
            .at
            .total_cmp(&self.at)
            .then(other.op_idx.cmp(&self.op_idx))
    }
}

/// The sharded, replicated, multi-threaded E2LSHoS query service.
pub struct ShardedService {
    topo: Topology,
    config: ServiceConfig,
}

impl ShardedService {
    /// Serve `shards` with `config`: each shard is backed by
    /// `config.replicas_per_shard` replicas (see [`crate::topology`]).
    pub fn new(shards: ShardSet, config: ServiceConfig) -> Self {
        assert!(config.workers_per_replica >= 1);
        assert!(config.replicas_per_shard >= 1);
        assert!(config.k >= 1);
        Self {
            topo: Topology::new(shards, config.replicas_per_shard),
            config,
        }
    }

    /// The shard set.
    pub fn shards(&self) -> &ShardSet {
        self.topo.shards()
    }

    /// The serving topology (replica health lives here:
    /// [`Topology::fence`] kills a replica mid-run, the router fails
    /// its work over to a sibling).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Run `queries` through the service under the given admission
    /// discipline; blocks until every query completes. Read-only
    /// shorthand for [`ShardedService::serve_mixed`].
    pub fn serve(&self, queries: &Dataset, load: Load) -> ServiceReport {
        let ops: Vec<Op> = (0..queries.len()).map(Op::Query).collect();
        let no_inserts = Dataset::with_capacity(queries.dim().max(1), 0);
        self.serve_mixed(queries, &no_inserts, &ops, load)
    }

    /// Run a mixed read–write op stream through the service; blocks
    /// until every op completes.
    ///
    /// `ops` references `queries` (each `Op::Query(i)` must appear
    /// exactly once for `i < queries.len()`) and `inserts`
    /// (`Op::Insert(j)` consumes pool point `j`, in ascending order —
    /// the `j`-th insert receives the next unassigned global id, i.e.
    /// build-time total + inserts applied by earlier runs + `j`, and is
    /// routed round-robin over the shards). `Op::Delete(g)` must target
    /// an id that is live at its position in the stream.
    /// [`crate::loadgen::mixed_ops`] generates conforming streams (use
    /// [`crate::loadgen::mixed_ops_resuming`] for follow-up runs on a
    /// mutated service).
    ///
    /// Queries fan out to one replica per shard (policy-routed); writes
    /// go to the owning shard's writer thread (one per shard — the
    /// shard write lock), which applies them through the storage
    /// updater, invalidates exactly the rewritten cache blocks in every
    /// replica's cache and publishes new occupancy-filter bits into the
    /// shared live index. Under [`Load::Closed`] the window counts
    /// in-flight ops of both kinds; under [`Load::Open`] all ops share
    /// one Poisson arrival process.
    pub fn serve_mixed(
        &self,
        queries: &Dataset,
        inserts: &Dataset,
        ops: &[Op],
        load: Load,
    ) -> ServiceReport {
        let shards = self.topo.shards();
        assert_eq!(queries.dim(), shards.dim(), "query dimensionality");
        let num_shards = shards.num_shards();
        let replicas = self.config.replicas_per_shard;
        let workers_total = num_shards * replicas * self.config.workers_per_replica;
        let num_queries = ops.iter().filter(|op| matches!(op, Op::Query(_))).count();
        assert_eq!(
            num_queries,
            queries.len(),
            "ops must cover each query exactly once"
        );
        let has_writes = ops.len() > num_queries;
        if has_writes {
            assert_eq!(inserts.dim(), shards.dim(), "insert dimensionality");
        }
        // Validate write ops up front: a bad op would panic inside a
        // shard writer thread, and a dead writer starves the collector
        // of WriteDone messages — a silent hang instead of a loud
        // failure here. Checks: insert indices are dense and ascending
        // (the dispatcher assigns global ids as `insert_base + j`) and
        // fit the pool; deletes target ids assigned before them in the
        // stream (per-shard FIFO then guarantees delete-after-insert);
        // and each shard's growth fits the id space its index codec was
        // built with.
        {
            let insert_base = self.insert_base();
            let mut assigned = insert_base;
            let mut expected_insert = 0usize;
            let mut new_rows = vec![0usize; num_shards];
            for op in ops {
                match *op {
                    Op::Query(_) => {}
                    Op::Insert(j) => {
                        assert_eq!(
                            j, expected_insert,
                            "insert indices must be dense and ascending"
                        );
                        new_rows[shards.plan().shard_of_any(assigned)] += 1;
                        expected_insert += 1;
                        assigned += 1;
                    }
                    Op::Delete(g) => {
                        assert!(
                            (g as usize) < assigned,
                            "delete of unassigned global id {g} (ids end at {assigned})"
                        );
                    }
                }
            }
            assert!(
                expected_insert <= inserts.len(),
                "ops consume {expected_insert} insert points but the pool holds {}",
                inserts.len()
            );
            for (s, shard) in shards.shards().iter().enumerate() {
                let id_space = 1u64 << shard.index.codec().id_bits;
                assert!(
                    (shard.num_rows() + new_rows[s]) as u64 <= id_space,
                    "shard {s}: {} inserts exceed the id space ({id_space} ids) — \
                     build with a larger ShardBuildConfig::capacity",
                    new_rows[s]
                );
            }
        }
        if ops.is_empty() {
            return ServiceReport {
                results: Vec::new(),
                statuses: Vec::new(),
                latencies: Vec::new(),
                service_latencies: Vec::new(),
                write_latencies: Vec::new(),
                write_service_latencies: Vec::new(),
                writes_failed: 0,
                shed_queries: 0,
                shed_writes: 0,
                retries: 0,
                failovers: 0,
                lost_partials: 0,
                peak_queue_depth: 0,
                duration: 0.0,
                device: DeviceStats::default(),
                total_io: 0,
                workers: workers_total,
                shards: num_shards,
                replicas,
                replica_load: vec![vec![0; replicas]; num_shards],
            };
        }

        let engine = self.config.engine();
        let epoch = Instant::now();
        let cache_snapshot = self.cache_snapshots();
        let arrays = self.build_arrays();

        // Per-lane (shard × replica) bounded query queues, the per-run
        // router over them, and the worker/writer→collector channel.
        let lanes = lane_states(num_shards, replicas);
        let mut lane_txs: Vec<Vec<GatedSender<Job>>> = Vec::with_capacity(num_shards);
        let mut lane_rxs: Vec<Vec<GatedReceiver<Job>>> = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..replicas)
                .map(|_| gated::<Job>(s, self.config.admission.read))
                .unzip();
            lane_txs.push(txs);
            lane_rxs.push(rxs);
        }
        let router = Router::new(
            &self.topo,
            lane_txs,
            &lanes,
            self.config.routing,
            queries.len(),
            0xE25_0E25,
        );
        let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();
        // One writer (and bounded write queue) per shard, only when the
        // stream has writes: the writer owns the shard's read-write
        // updater. Writes draw from their own admission budget.
        let write_channels: Vec<(GatedSender<WriteJob>, GatedReceiver<WriteJob>)> = if has_writes {
            (0..num_shards)
                .map(|s| gated(s, self.config.admission.write))
                .collect()
        } else {
            Vec::new()
        };

        let mut report: Option<ServiceReport> = None;
        std::thread::scope(|scope| {
            self.spawn_workers(
                scope, &engine, epoch, queries, &lanes, &lane_rxs, &arrays, &msg_tx,
            );
            if has_writes {
                for (s, shard) in shards.shards().iter().enumerate() {
                    let jobs = write_channels[s].1.clone();
                    let tx = msg_tx.clone();
                    let caches = self.topo.shard_caches(s);
                    scope.spawn(move || run_writer(shard, &caches, inserts, jobs, tx, epoch));
                }
            }
            let shed_tx = msg_tx.clone();
            drop(msg_tx);
            drop(lane_rxs);
            let write_txs: Vec<GatedSender<WriteJob>> =
                write_channels.iter().map(|(tx, _)| tx.clone()).collect();
            drop(write_channels);

            report = Some(self.drive(
                queries,
                ops,
                load,
                router,
                write_txs,
                msg_rx,
                shed_tx,
                epoch,
                &cache_snapshot,
            ));
        });
        report.expect("collector ran")
    }

    /// Spawn every replica's worker pool into `scope`.
    #[allow(clippy::too_many_arguments)]
    fn spawn_workers<'scope, 'env>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        engine: &'env EngineConfig,
        epoch: Instant,
        queries: &'env Dataset,
        lanes: &'env [Vec<LaneState>],
        lane_rxs: &[Vec<GatedReceiver<Job>>],
        arrays: &'env [Option<SharedSimArray>],
        msg_tx: &Sender<WorkerMsg>,
    ) {
        let sim_time = self.config.device.is_sim();
        let workers_per_replica = self.config.workers_per_replica;
        for (s, shard) in self.topo.shards().shards().iter().enumerate() {
            for r in 0..self.config.replicas_per_shard {
                let replica = self.topo.replica(s, r);
                for w in 0..workers_per_replica {
                    let handle = r * workers_per_replica + w;
                    let device = self.make_device(shard, &arrays[s], handle, replica.cache());
                    let jobs = lane_rxs[s][r].clone();
                    let tx = msg_tx.clone();
                    let lane = &lanes[s][r];
                    scope.spawn(move || {
                        run_worker(
                            WorkerCtx {
                                shard,
                                replica: r,
                                worker_in_replica: w,
                                workers_in_replica: workers_per_replica,
                                replica_state: replica,
                                lane,
                                queries,
                                engine,
                                sim_time,
                                epoch,
                            },
                            device,
                            jobs,
                            tx,
                        );
                    });
                }
            }
        }
    }

    /// Snapshot cache counters so reports show per-run deltas even when
    /// a warm cache is reused across runs. One snapshot per replica, in
    /// `[shard][replica]` order flattened.
    fn cache_snapshots(&self) -> Vec<CacheSnapshot> {
        (0..self.topo.num_shards())
            .flat_map(|s| {
                self.topo
                    .shard_replicas(s)
                    .iter()
                    .map(|rep| match rep.cache() {
                        Some(c) => CacheSnapshot {
                            hits: c.hits(),
                            misses: c.misses(),
                            evictions: c.evictions(),
                            invalidations: c.invalidations(),
                            stale_fills: c.stale_fills(),
                        },
                        None => CacheSnapshot::default(),
                    })
            })
            .collect()
    }

    /// One shared simulated array per shard when the device spec asks
    /// for it — shared across **all** of the shard's replicas (the
    /// shard's data lives on one array; replicas add compute and
    /// cache, not spindles).
    fn build_arrays(&self) -> Vec<Option<SharedSimArray>> {
        let handles = self.config.replicas_per_shard * self.config.workers_per_replica;
        self.topo
            .shards()
            .shards()
            .iter()
            .map(|shard| match self.config.device {
                DeviceSpec::SimShared {
                    profile,
                    num_devices,
                } => {
                    let sim = SimStorage::new(
                        profile,
                        num_devices,
                        Backing::open(&shard.path).expect("open shard index"),
                    );
                    Some(SharedSimArray::new(sim, handles))
                }
                _ => None,
            })
            .collect()
    }

    /// Fold the per-run cache-counter deltas of every replica cache
    /// into `device`.
    fn add_cache_deltas(&self, device: &mut DeviceStats, cache_snapshot: &[CacheSnapshot]) {
        let mut i = 0;
        for s in 0..self.topo.num_shards() {
            for rep in self.topo.shard_replicas(s) {
                if let Some(c) = rep.cache() {
                    let snap = &cache_snapshot[i];
                    device.cache_hits += c.hits() - snap.hits;
                    device.cache_misses += c.misses() - snap.misses;
                    device.cache_evictions += c.evictions() - snap.evictions;
                    device.cache_invalidations += c.invalidations() - snap.invalidations;
                    device.cache_stale_fills += c.stale_fills() - snap.stale_fills;
                }
                i += 1;
            }
        }
    }

    /// Serve one **batch request**: a vector of queries admitted,
    /// executed and merged as a unit.
    ///
    /// Byte-identical queries in the batch (same coordinate bit
    /// patterns — see [`dedup_batch`]) are deduplicated *before they
    /// reach the engine*: each distinct query is probed once per shard
    /// and the merged result is fanned back out to every duplicate, so
    /// a Zipf-hot batch costs the engine its unique queries only. The
    /// whole batch shares one fan-out/merge pass per shard — one worker
    /// pool spin-up and one collector, not one per query. Replica
    /// routing applies per unique query, exactly as in
    /// [`ShardedService::serve`].
    ///
    /// Admission is per *unique* query under the service's read budget
    /// (all-or-nothing across shards, like [`ShardedService::serve`]):
    /// a unique query that would overflow its chosen replica's queue is
    /// shed, and every duplicate of it reports [`OpStatus::Shed`] in
    /// the returned per-query statuses. Results for duplicates of an
    /// admitted query are clones of one merged vector — byte-identical
    /// by construction.
    pub fn query_batch(&self, batch: &Dataset) -> BatchQueryReport {
        let shards = self.topo.shards();
        assert_eq!(batch.dim(), shards.dim(), "query dimensionality");
        let num_shards = shards.num_shards();
        let replicas = self.config.replicas_per_shard;
        let workers_total = num_shards * replicas * self.config.workers_per_replica;
        let dedup = dedup_batch(batch);
        let nu = dedup.uniques.len();
        if batch.is_empty() {
            return BatchQueryReport {
                results: Vec::new(),
                statuses: Vec::new(),
                latencies: Vec::new(),
                unique: 0,
                collapsed: 0,
                shed: 0,
                failovers: 0,
                peak_queue_depth: 0,
                duration: 0.0,
                device: DeviceStats::default(),
                total_io: 0,
                workers: workers_total,
                shards: num_shards,
            };
        }
        let mut unique_queries = Dataset::with_capacity(batch.dim().max(1), nu);
        for &i in &dedup.uniques {
            unique_queries.push(batch.point(i));
        }

        let engine = self.config.engine();
        let epoch = Instant::now();
        let cache_snapshot = self.cache_snapshots();
        let arrays = self.build_arrays();
        let lanes = lane_states(num_shards, replicas);
        let mut lane_txs: Vec<Vec<GatedSender<Job>>> = Vec::with_capacity(num_shards);
        let mut lane_rxs: Vec<Vec<GatedReceiver<Job>>> = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let (txs, rxs): (Vec<_>, Vec<_>) = (0..replicas)
                .map(|_| gated::<Job>(s, self.config.admission.read))
                .unzip();
            lane_txs.push(txs);
            lane_rxs.push(rxs);
        }
        let router = Router::new(
            &self.topo,
            lane_txs,
            &lanes,
            self.config.routing,
            nu,
            0xBA7C,
        );
        let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();

        // Collector over the *unique* queries; every unique is its own
        // op with queue entry at the request epoch (ref 0).
        let shared = matches!(self.config.device, DeviceSpec::SimShared { .. });
        let mut collector = Collector::new(
            nu,
            num_shards,
            (0..nu).collect(),
            self.config.k,
            replicas,
            shared,
        );
        let ref_time = vec![0.0f64; nu];
        let mut peak_queue_depth = 0usize;
        let mut failovers = 0usize;
        let mut device = DeviceStats::default();
        let queries = &unique_queries;
        let point_bytes = shards.dim() * std::mem::size_of::<f32>();

        std::thread::scope(|scope| {
            self.spawn_workers(
                scope, &engine, epoch, queries, &lanes, &lane_rxs, &arrays, &msg_tx,
            );
            drop(msg_tx);
            drop(lane_rxs);

            // Dispatch the whole request at once (a batch is one
            // arrival instant), then collect.
            let mut admitted = 0usize;
            for u in 0..nu {
                match router.try_fanout(u, point_bytes) {
                    Ok(()) => admitted += 1,
                    Err(_) => collector.shed(Op::Query(u), epoch.elapsed().as_secs_f64()),
                }
            }
            let mut done = 0usize;
            while done < admitted {
                let msg = msg_rx.recv().expect("workers alive");
                match msg {
                    WorkerMsg::ReplicaDown { shard, replica } => {
                        done += self.failover_scan(
                            &mut collector,
                            &router,
                            shard,
                            replica,
                            epoch,
                            &ref_time,
                        );
                    }
                    msg => {
                        if collector.absorb(msg, &ref_time, &router) {
                            done += 1;
                        }
                    }
                }
            }
            peak_queue_depth = router.peak_depth();
            failovers = router.failovers();
            drop(router);
            collector.drain(&msg_rx);
            device = collector.device_stats();
            self.add_cache_deltas(&mut device, &cache_snapshot);
        });

        // Fan the unique results back out to every duplicate.
        let n = batch.len();
        let mut results = Vec::with_capacity(n);
        let mut statuses = Vec::with_capacity(n);
        let mut latencies = Vec::with_capacity(n);
        for i in 0..n {
            let u = dedup.rep[i];
            results.push(collector.results[u].clone());
            statuses.push(collector.statuses[u]);
            latencies.push(collector.latencies[u]);
        }
        let shed = statuses.iter().filter(|&&s| s == OpStatus::Shed).count();
        BatchQueryReport {
            results,
            statuses,
            latencies,
            unique: nu,
            collapsed: n - nu,
            shed,
            failovers,
            peak_queue_depth,
            duration: collector.duration,
            device,
            total_io: collector.total_io,
            workers: workers_total,
            shards: num_shards,
        }
    }

    /// A replica died mid-run: resolve every outstanding query that was
    /// dispatched to it. Single-route policies re-dispatch to a live
    /// sibling (or, with none left, complete the query with that
    /// shard's partial empty); broadcast simply drops the dead
    /// replica's bit from the query's dispatch set — the surviving
    /// replicas already carry the query, so its quota shrinks and the
    /// run terminates without waiting for an answer that will never
    /// come. Returns the ops the scan *completed* so the caller's
    /// done/in-flight accounting stays exact.
    fn failover_scan(
        &self,
        collector: &mut Collector,
        router: &Router<'_>,
        shard: usize,
        replica: usize,
        epoch: Instant,
        ref_time: &[f64],
    ) -> usize {
        let broadcast = router.policy() == RoutePolicy::Broadcast;
        let mut completed = 0usize;
        for qid in 0..collector.results.len() {
            if collector.statuses[qid] == OpStatus::Shed {
                continue;
            }
            if !collector.shard_outstanding(qid, shard, router) {
                continue;
            }
            if !router.is_routed_to(qid, shard, replica) {
                continue;
            }
            if broadcast {
                // The dead replica's partial may or may not have been
                // delivered; either way the sibling replicas of the
                // broadcast carry identical answers, so shrinking the
                // quota by this bit never degrades the result.
                router.clear_routed_bit(qid, shard, replica);
                if router.quota(qid, shard) == 0 && collector.accum[qid].got[shard] == 0 {
                    // Every broadcast replica of the shard died before
                    // answering: the shard's contribution is lost.
                    router.count_abandoned();
                }
                if collector.try_finish(qid, router, ref_time) {
                    completed += 1;
                }
            } else if router.redispatch(qid, shard, replica).is_none() {
                router.count_abandoned();
                let now = epoch.elapsed().as_secs_f64();
                if collector.force_complete_shard(qid, shard, now, ref_time, router) {
                    completed += 1;
                }
            }
        }
        completed
    }

    fn make_device(
        &self,
        shard: &Shard,
        array: &Option<SharedSimArray>,
        handle: usize,
        cache: Option<&Arc<e2lsh_storage::device::cached::BlockCache>>,
    ) -> Box<dyn Device> {
        fn wrap<D: Device + 'static>(
            dev: D,
            cache: Option<&Arc<e2lsh_storage::device::cached::BlockCache>>,
        ) -> Box<dyn Device> {
            match cache {
                Some(cache) => {
                    Box::new(CachedDevice::new(dev, Arc::clone(cache), BLOCK_SIZE as u32))
                }
                None => Box::new(dev),
            }
        }
        match self.config.device {
            DeviceSpec::File { io_workers } => wrap(
                FileDevice::open(&shard.path, io_workers.max(1)).expect("open shard index"),
                cache,
            ),
            DeviceSpec::SimPerWorker {
                profile,
                num_devices,
            } => wrap(
                SimStorage::new(
                    profile,
                    num_devices,
                    Backing::open(&shard.path).expect("open shard index"),
                ),
                cache,
            ),
            DeviceSpec::SimShared { .. } => wrap(
                array.as_ref().expect("shared array built").handle(handle),
                cache,
            ),
        }
    }

    /// Next unassigned global id: inserts continue the sequence where
    /// earlier runs left it (build-time total + rows appended so far).
    fn insert_base(&self) -> usize {
        let shards = self.topo.shards();
        shards.plan().base_total()
            + shards
                .shards()
                .iter()
                .map(|s| s.num_rows() - s.base_len())
                .sum::<usize>()
    }

    /// Route one op under the admission discipline: queries fan out to
    /// one replica per shard via the router (all-or-nothing — a query
    /// admitted by only some shards would starve its merge accumulator)
    /// and are **shed** with [`Overload`] when a queue budget rejects
    /// them; writes go to the owning shard's writer under
    /// **backpressure** ([`GatedSender::send_blocking`]): the `j`-th
    /// insert of the stream gets global id `insert_base + j` (the
    /// generator emits `Op::Insert(j)` in ascending order; `insert_base`
    /// is the build-time total plus inserts applied by earlier runs,
    /// dealt round-robin per the plan's appended-id arithmetic) while
    /// the shard updater assigns ids *positionally* — dropping a write
    /// would desynchronize the two for every later write on the shard
    /// (and orphan deletes that reference the dropped insert), so a
    /// full write queue stalls the dispatcher instead of shedding.
    /// Queue memory stays bounded under either discipline.
    fn try_send_op(
        &self,
        op_idx: usize,
        op: Op,
        insert_base: usize,
        router: &Router<'_>,
        write_txs: &[GatedSender<WriteJob>],
    ) -> Result<(), Overload> {
        // Payload cost the gate charges: the bytes the queue entry pins
        // (query/insert coordinates; a delete pins just its id).
        let point_bytes = self.topo.shards().dim() * std::mem::size_of::<f32>();
        match op {
            Op::Query(qid) => router.try_fanout(qid, point_bytes)?,
            Op::Insert(j) => {
                let global_id = (insert_base + j) as u32;
                let s = self.topo.shards().plan().shard_of_any(global_id as usize);
                write_txs[s].send_blocking(
                    WriteJob {
                        op_idx,
                        global_id,
                        kind: WriteKind::Insert { point_idx: j },
                    },
                    point_bytes,
                );
            }
            Op::Delete(global_id) => {
                let s = self.topo.shards().plan().shard_of_any(global_id as usize);
                write_txs[s].send_blocking(
                    WriteJob {
                        op_idx,
                        global_id,
                        kind: WriteKind::Delete,
                    },
                    std::mem::size_of::<u32>(),
                );
            }
        }
        Ok(())
    }

    /// Dispatch ops per the admission discipline and collect partials /
    /// write completions.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        queries: &Dataset,
        ops: &[Op],
        load: Load,
        router: Router<'_>,
        write_txs: Vec<GatedSender<WriteJob>>,
        msg_rx: Receiver<WorkerMsg>,
        shed_tx: Sender<WorkerMsg>,
        epoch: Instant,
        cache_snapshot: &[CacheSnapshot],
    ) -> ServiceReport {
        let nq = queries.len();
        let total = ops.len();
        let num_shards = self.topo.num_shards();
        let replicas = self.config.replicas_per_shard;
        let insert_base = self.insert_base();
        let k = self.config.k;
        // qid → op index, for read-latency reference times.
        let mut query_op = vec![usize::MAX; nq];
        for (i, op) in ops.iter().enumerate() {
            if let Op::Query(qid) = *op {
                assert_eq!(query_op[qid], usize::MAX, "query {qid} appears twice");
                query_op[qid] = i;
            }
        }
        let shared = matches!(self.config.device, DeviceSpec::SimShared { .. });
        let mut collector = Collector::new(nq, num_shards, query_op, k, replicas, shared);
        let mut ref_time = vec![0.0f64; total]; // dispatch (closed) or arrival (open)
        let mut done = 0usize;
        let mut retries = 0usize;

        match load {
            Load::Closed { .. } | Load::ClosedBackoff { .. } => {
                // Sheds are booked inline (the dispatcher is the
                // collector's own thread); a shed op never occupies a
                // window slot. Under ClosedBackoff a shed query first
                // waits out its retry_after hint and re-dispatches, up
                // to max_retries times.
                drop(shed_tx);
                let (window, max_retries) = match load {
                    Load::Closed { window } => (window, 0usize),
                    Load::ClosedBackoff {
                        window,
                        max_retries,
                    } => (window, max_retries),
                    _ => unreachable!(),
                };
                let window = window.max(1).min(total);
                let mut pending: BinaryHeap<Retry> = BinaryHeap::new();
                let mut next = 0usize;
                let mut inflight = 0usize;
                while done < total {
                    // Fill the window: due retries first, then fresh ops.
                    loop {
                        if inflight >= window {
                            break;
                        }
                        let now = epoch.elapsed().as_secs_f64();
                        if pending.peek().is_some_and(|r| r.at <= now) {
                            let r = pending.pop().unwrap();
                            retries += 1;
                            match self.try_send_op(
                                r.op_idx,
                                ops[r.op_idx],
                                insert_base,
                                &router,
                                &write_txs,
                            ) {
                                Ok(()) => inflight += 1,
                                Err(e) if r.left > 0 => pending.push(Retry {
                                    at: now + e.retry_after,
                                    op_idx: r.op_idx,
                                    left: r.left - 1,
                                }),
                                Err(_) => {
                                    collector.shed(ops[r.op_idx], now);
                                    done += 1;
                                }
                            }
                            continue;
                        }
                        if next >= total {
                            break;
                        }
                        ref_time[next] = now;
                        match self.try_send_op(next, ops[next], insert_base, &router, &write_txs) {
                            Ok(()) => inflight += 1,
                            // Writes never shed (they backpressure), so
                            // a rejection here is always a query.
                            Err(e) if max_retries > 0 => pending.push(Retry {
                                at: now + e.retry_after,
                                op_idx: next,
                                left: max_retries - 1,
                            }),
                            Err(_) => {
                                collector.shed(ops[next], now);
                                done += 1;
                            }
                        }
                        next += 1;
                    }
                    if done >= total {
                        break;
                    }
                    // Wait for a completion — or only until the next
                    // retry is due, if one could be dispatched then.
                    let msg = if inflight < window && !pending.is_empty() {
                        let due = pending.peek().unwrap().at;
                        let wait = (due - epoch.elapsed().as_secs_f64()).max(0.0);
                        match msg_rx.recv_timeout(std::time::Duration::from_secs_f64(wait)) {
                            Ok(msg) => msg,
                            Err(_) => continue,
                        }
                    } else {
                        msg_rx.recv().expect("workers alive")
                    };
                    match msg {
                        WorkerMsg::ReplicaDown { shard, replica } => {
                            let c = self.failover_scan(
                                &mut collector,
                                &router,
                                shard,
                                replica,
                                epoch,
                                &ref_time,
                            );
                            done += c;
                            inflight -= c;
                        }
                        msg => {
                            if collector.absorb(msg, &ref_time, &router) {
                                done += 1;
                                inflight -= 1;
                            }
                        }
                    }
                }
            }
            Load::Open { .. } | Load::Burst { .. } => {
                let arrivals = load.arrival_schedule(total);
                ref_time.copy_from_slice(&arrivals);
                let dispatch_router = &router;
                let dispatch_write_txs = &write_txs;
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        // Open loop: arrivals never wait for
                        // completions; a shed op is reported to the
                        // collector through the message channel so it
                        // still sees one terminal event per op.
                        for (op_idx, &at) in arrivals.iter().enumerate() {
                            sleep_until(epoch, at);
                            if self
                                .try_send_op(
                                    op_idx,
                                    ops[op_idx],
                                    insert_base,
                                    dispatch_router,
                                    dispatch_write_txs,
                                )
                                .is_err()
                            {
                                let qid = match ops[op_idx] {
                                    Op::Query(qid) => Some(qid),
                                    _ => None,
                                };
                                // The collector outlives the dispatch
                                // loop; a send can only fail after it
                                // already has every terminal event.
                                let _ = shed_tx.send(WorkerMsg::Shed { op_idx, qid });
                            }
                        }
                    });
                    while done < total {
                        let msg = msg_rx.recv().expect("workers alive");
                        match msg {
                            WorkerMsg::ReplicaDown { shard, replica } => {
                                done += self.failover_scan(
                                    &mut collector,
                                    &router,
                                    shard,
                                    replica,
                                    epoch,
                                    &ref_time,
                                );
                            }
                            msg => {
                                if collector.absorb(msg, &ref_time, &router) {
                                    done += 1;
                                }
                            }
                        }
                    }
                });
            }
        }

        // High-water queue depths before the queues close.
        let peak_queue_depth = router.peak_depth().max(
            write_txs
                .iter()
                .map(|tx| tx.stats().peak_depth)
                .max()
                .unwrap_or(0),
        );
        let failovers = router.failovers();
        let lost_partials = router.abandoned();

        // Close the queues and aggregate worker statistics.
        drop(router);
        drop(write_txs);
        collector.drain(&msg_rx);
        let mut device = collector.device_stats();
        self.add_cache_deltas(&mut device, cache_snapshot);

        ServiceReport {
            results: collector.results,
            statuses: collector.statuses,
            latencies: collector.latencies,
            service_latencies: collector.service_latencies,
            write_latencies: collector.write_latencies,
            write_service_latencies: collector.write_service_latencies,
            writes_failed: collector.writes_failed,
            shed_queries: collector.shed_queries,
            shed_writes: collector.shed_writes,
            retries,
            failovers,
            lost_partials,
            peak_queue_depth,
            duration: collector.duration,
            device,
            total_io: collector.total_io,
            workers: num_shards * replicas * self.config.workers_per_replica,
            shards: num_shards,
            replicas,
            replica_load: collector.replica_load,
        }
    }
}

/// Mutable collector state of one service run: merges shard partials
/// into per-query results and books read/write latencies, sheds,
/// failover duplicates and worker exit statistics.
struct Collector {
    accum: Vec<Accum>,
    num_shards: usize,
    results: Vec<Vec<(u32, f32)>>,
    statuses: Vec<OpStatus>,
    latencies: Vec<f64>,
    service_latencies: Vec<f64>,
    write_latencies: Vec<f64>,
    write_service_latencies: Vec<f64>,
    writes_failed: usize,
    shed_queries: usize,
    shed_writes: usize,
    total_io: u64,
    duration: f64,
    /// qid → op index, for read-latency reference times.
    query_op: Vec<usize>,
    k: usize,
    /// Queries served per `[shard][replica]`, from `Done` messages.
    replica_load: Vec<Vec<u64>>,
    /// Device stats accumulation. Shared arrays report whole-array
    /// totals from every handle, so those are merged max-by-completed
    /// per shard; private devices are summed.
    shared_device: bool,
    device_sum: DeviceStats,
    shared_best: Vec<DeviceStats>,
}

impl Collector {
    fn new(
        nq: usize,
        num_shards: usize,
        query_op: Vec<usize>,
        k: usize,
        replicas: usize,
        shared_device: bool,
    ) -> Self {
        Self {
            accum: (0..nq)
                .map(|_| Accum {
                    got: vec![0; num_shards],
                    finished: false,
                    neighbors: Vec::new(),
                    start: f64::MAX,
                    finish: 0.0,
                })
                .collect(),
            num_shards,
            results: vec![Vec::new(); nq],
            statuses: vec![OpStatus::Ok; nq],
            latencies: vec![0.0f64; nq],
            service_latencies: vec![0.0f64; nq],
            write_latencies: Vec::new(),
            write_service_latencies: Vec::new(),
            writes_failed: 0,
            shed_queries: 0,
            shed_writes: 0,
            total_io: 0,
            duration: 0.0,
            query_op,
            k,
            replica_load: vec![vec![0; replicas]; num_shards],
            shared_device,
            device_sum: DeviceStats::default(),
            shared_best: vec![DeviceStats::default(); num_shards],
        }
    }

    /// Book one op shed at dispatch time `now` (closed loop — the open
    /// loop routes sheds through [`WorkerMsg::Shed`]).
    fn shed(&mut self, op: Op, now: f64) {
        match op {
            Op::Query(qid) => self.shed_query(qid),
            Op::Insert(_) | Op::Delete(_) => self.shed_writes += 1,
        }
        // A shed is a terminal event: keep `duration` covering it so
        // goodput/shed-rate math sees the whole run.
        self.duration = self.duration.max(now);
    }

    fn shed_query(&mut self, qid: usize) {
        debug_assert_eq!(self.statuses[qid], OpStatus::Ok, "query {qid} shed twice");
        self.statuses[qid] = OpStatus::Shed;
        self.shed_queries += 1;
    }

    /// True while `qid` still owes partials for `shard` (not shed, not
    /// complete, shard quota unmet). The quota comes from the router:
    /// the replicas this query was actually dispatched to.
    fn shard_outstanding(&self, qid: usize, shard: usize, router: &Router<'_>) -> bool {
        let a = &self.accum[qid];
        !a.finished && (a.got[shard] as usize) < router.quota(qid, shard)
    }

    /// Finish `qid` if every shard's quota is met. Every caller runs
    /// after the query was dispatched (a partial arrived, or the
    /// failover scan matched its routing bits), and all-or-nothing
    /// fan-out publishes every shard's dispatch set before the first
    /// send — so an undispatched query (all quotas 0) can never be
    /// finished through this check. A quota of 0 on a *dispatched*
    /// query is legitimate: every broadcast replica of that shard died
    /// and the shard contributes nothing.
    fn try_finish(&mut self, qid: usize, router: &Router<'_>, ref_time: &[f64]) -> bool {
        for s in 0..self.num_shards {
            if (self.accum[qid].got[s] as usize) < router.quota(qid, s) {
                return false;
            }
        }
        let ref_t = ref_time[self.query_op[qid]];
        self.finish_query(qid, ref_t);
        true
    }

    /// Abandon `qid`'s outstanding partial for `shard` (no live replica
    /// left to re-dispatch to): the shard contributes nothing; the
    /// query completes when (and if) nothing else is outstanding.
    /// Returns true when this completed the op.
    fn force_complete_shard(
        &mut self,
        qid: usize,
        shard: usize,
        now: f64,
        ref_time: &[f64],
        router: &Router<'_>,
    ) -> bool {
        debug_assert!(self.shard_outstanding(qid, shard, router));
        let a = &mut self.accum[qid];
        a.got[shard] = router.quota(qid, shard) as u8;
        a.finish = a.finish.max(now);
        self.try_finish(qid, router, ref_time)
    }

    /// Merge and book a query whose partials are all in. `ref_t` is the
    /// op's queue-entry reference time.
    fn finish_query(&mut self, qid: usize, ref_t: f64) {
        let a = &mut self.accum[qid];
        let mut merged = std::mem::take(&mut a.neighbors);
        merged.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
        // Broadcast (and failover races) can deliver the same neighbor
        // from two replicas of one shard: keep the first of each id.
        // Shards never share ids, so single-route merges are untouched.
        let mut seen_ids: Vec<u32> = Vec::with_capacity(self.k);
        merged.retain(|&(id, _)| {
            if seen_ids.len() >= self.k || seen_ids.contains(&id) {
                false
            } else {
                seen_ids.push(id);
                true
            }
        });
        let (start, finish) = (a.start, a.finish);
        self.results[qid] = merged;
        // A query whose every partial was abandoned never started.
        let start = if start == f64::MAX { finish } else { start };
        self.latencies[qid] = finish - ref_t;
        self.service_latencies[qid] = finish - start;
        self.duration = self.duration.max(finish);
    }

    /// Accumulate one message; returns true when it completed an op.
    /// `ref_time[op]` is the op's queue-entry time: dispatch (closed
    /// loop) or scheduled arrival (open loop); `router` resolves each
    /// query's live dispatch quotas.
    fn absorb(&mut self, msg: WorkerMsg, ref_time: &[f64], router: &Router<'_>) -> bool {
        match msg {
            WorkerMsg::Partial {
                qid,
                shard,
                neighbors,
                n_io,
                start,
                finish,
            } => {
                self.total_io += u64::from(n_io);
                if !self.shard_outstanding(qid, shard, router) {
                    // Failover duplicate: the dying replica completed a
                    // query we also re-dispatched (or a late partial
                    // for a force-completed shard). Drop it.
                    return false;
                }
                let a = &mut self.accum[qid];
                a.neighbors.extend(neighbors);
                a.start = a.start.min(start);
                a.finish = a.finish.max(finish);
                a.got[shard] += 1;
                self.try_finish(qid, router, ref_time)
            }
            WorkerMsg::WriteDone {
                op_idx,
                ok,
                start,
                finish,
            } => {
                // Failed writes count toward writes_failed only:
                // wps()/write_latency() report *applied* writes.
                if ok {
                    self.write_latencies.push(finish - ref_time[op_idx]);
                    self.write_service_latencies.push(finish - start);
                } else {
                    self.writes_failed += 1;
                }
                self.duration = self.duration.max(finish);
                true
            }
            WorkerMsg::Shed { op_idx, qid } => {
                match qid {
                    Some(qid) => self.shed_query(qid),
                    None => self.shed_writes += 1,
                }
                self.duration = self.duration.max(ref_time[op_idx]);
                true
            }
            WorkerMsg::Done {
                shard,
                replica,
                device,
                served,
                ..
            } => {
                self.absorb_done(shard, replica, device, served);
                false
            }
            WorkerMsg::ReplicaDown { .. } => {
                unreachable!("ReplicaDown is handled by the drive loop")
            }
        }
    }

    /// Book one worker's exit report.
    fn absorb_done(&mut self, shard: usize, replica: usize, device: DeviceStats, served: usize) {
        self.replica_load[shard][replica] += served as u64;
        if self.shared_device {
            // Every handle of a shard's shared array reports whole-array
            // totals; keep the most complete one.
            if device.completed >= self.shared_best[shard].completed {
                self.shared_best[shard] = device;
            }
        } else {
            self.device_sum.completed += device.completed;
            self.device_sum.bytes += device.bytes;
            self.device_sum.latency_sum += device.latency_sum;
            self.device_sum.busy_sum += device.busy_sum;
        }
    }

    /// Drain the message channel after the queues closed: remaining
    /// `Done` stats are absorbed. Everything else at this point is a
    /// late partial of a force-completed query, or the ReplicaDown of a
    /// fence that lost the race against the end of the run: nothing
    /// left to re-dispatch.
    fn drain(&mut self, msg_rx: &Receiver<WorkerMsg>) {
        while let Ok(msg) = msg_rx.recv() {
            if let WorkerMsg::Done {
                shard,
                replica,
                device,
                served,
                ..
            } = msg
            {
                self.absorb_done(shard, replica, device, served);
            }
        }
    }

    /// Aggregate device statistics of the run (call after
    /// [`Collector::drain`]).
    fn device_stats(&self) -> DeviceStats {
        let mut out = self.device_sum;
        for best in &self.shared_best {
            out.completed += best.completed;
            out.bytes += best.bytes;
            out.latency_sum += best.latency_sum;
            out.busy_sum += best.busy_sum;
        }
        out
    }
}

/// Cache counters at serve start, for per-run deltas.
#[derive(Clone, Copy, Debug, Default)]
struct CacheSnapshot {
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    stale_fills: u64,
}
