//! The sharded query service: worker-pool orchestration, request
//! admission (reads *and* online writes) and top-k merging.
//!
//! Queries fan out to every shard's worker pool; inserts and deletes
//! route to the owning shard's single writer thread, which applies them
//! through the storage crate's `Updater` and invalidates exactly the
//! rewritten blocks in the shard's DRAM cache (see
//! [`crate::update`]). Both kinds flow through one admission discipline
//! ([`Load`]) and one op stream, so a mixed workload's read latency
//! degradation under writes is measured end to end.
//!
//! Every per-shard queue is bounded by the service's
//! [`AdmissionBudget`]: a *query* that would exceed the shard's
//! queue-depth or queued-bytes budget is **shed** at dispatch with a
//! typed [`Overload`] error instead of enqueued, while a *write* that
//! hits a full queue **backpressures** the dispatcher (stalls until
//! there is room — the op stream's positional id assignment cannot
//! survive a dropped write; see [`crate::admission`]). Either way,
//! offered load beyond capacity degrades into explicit rejections or
//! bounded stalls rather than unbounded queues and meaningless
//! percentiles. Batches of queries go through
//! [`ShardedService::query_batch`], which deduplicates byte-identical
//! hot queries before they reach the engine and shares one
//! fan-out/merge pass per request.

use crate::admission::{gated, AdmissionBudget, GatedReceiver, GatedSender, Overload};
use crate::loadgen::{Load, Op};
use crate::metrics::{LatencySummary, OpStatus};
use crate::shard::{Shard, ShardSet};
use crate::shared_sim::SharedSimArray;
use crate::update::{run_writer, WriteJob, WriteKind};
use crate::worker::{run_worker, sleep_until, Job, WorkerCtx, WorkerMsg};
use crossbeam::channel::{unbounded, Receiver, Sender};
use e2lsh_core::dataset::Dataset;
use e2lsh_storage::device::cached::CachedDevice;
use e2lsh_storage::device::file::FileDevice;
use e2lsh_storage::device::sim::{Backing, DeviceProfile, SimStorage};
use e2lsh_storage::device::{Device, DeviceStats};
use e2lsh_storage::layout::BLOCK_SIZE;
use e2lsh_storage::query::EngineConfig;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// What device each worker drives.
#[derive(Clone, Copy, Debug)]
pub enum DeviceSpec {
    /// Real positioned reads against the shard's index file through a
    /// per-worker reader-thread pool (wall clock).
    File {
        /// Reader threads per worker (OS-visible queue depth).
        io_workers: usize,
    },
    /// A private simulated array per worker — aggregate device bandwidth
    /// scales with the worker count (models "one drive per worker").
    SimPerWorker {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in each worker's array.
        num_devices: usize,
    },
    /// One simulated array per shard, shared by all of the shard's
    /// workers — workers contend for the array's total IOPS, the paper's
    /// Figure 16 regime.
    SimShared {
        /// Device model (paper Table 2).
        profile: DeviceProfile,
        /// Drives in the shard's array.
        num_devices: usize,
    },
}

impl DeviceSpec {
    fn is_sim(&self) -> bool {
        matches!(
            self,
            DeviceSpec::SimPerWorker { .. } | DeviceSpec::SimShared { .. }
        )
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// Interleaved queries per worker (engine contexts).
    pub contexts_per_worker: usize,
    /// Neighbors returned per query.
    pub k: usize,
    /// Candidate budget override (default `params.s_for_k(k)` per shard).
    pub s_override: Option<usize>,
    /// Device each worker drives.
    pub device: DeviceSpec,
    /// Per-shard admission budget: ops beyond the queue-depth or
    /// queued-bytes bound are shed with [`Overload`] instead of
    /// enqueued. Default [`AdmissionBudget::UNBOUNDED`] (nothing shed).
    pub admission: AdmissionBudget,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers_per_shard: 1,
            contexts_per_worker: 16,
            k: 1,
            s_override: None,
            device: DeviceSpec::File { io_workers: 4 },
            admission: AdmissionBudget::UNBOUNDED,
        }
    }
}

impl ServiceConfig {
    fn engine(&self) -> EngineConfig {
        let mut e = EngineConfig::wall_clock(self.k);
        e.contexts = self.contexts_per_worker.max(1);
        e.s_override = self.s_override;
        e
    }
}

/// Aggregate results of one service run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Merged global top-k per query, distance ascending (empty for
    /// shed queries).
    pub results: Vec<Vec<(u32, f32)>>,
    /// Per-query status: [`OpStatus::Shed`] queries were rejected at
    /// admission and have no results or latency samples.
    pub statuses: Vec<OpStatus>,
    /// Per-query end-to-end latency in seconds, from **queue entry**
    /// (dispatch for closed loop, scheduled arrival for open loop) to
    /// the last shard's finish. Includes enqueue wait. 0 for shed
    /// queries — use the accepted-only summaries.
    pub latencies: Vec<f64>,
    /// Per-query **service** latency in seconds: from the first worker
    /// slot admitting the query to the last shard's finish. Excludes
    /// enqueue wait; `latencies[q] - service_latencies[q]` is the time
    /// query `q` spent queued. 0 for shed queries.
    pub service_latencies: Vec<f64>,
    /// Per-write end-to-end latency in seconds (queue entry → applied),
    /// in completion order. Failed and shed writes are excluded — they
    /// count in [`ServiceReport::writes_failed`] /
    /// [`ServiceReport::shed_writes`]. Empty for read-only runs.
    pub write_latencies: Vec<f64>,
    /// Per-write service latency in seconds (writer dequeue → applied),
    /// parallel to [`ServiceReport::write_latencies`].
    pub write_service_latencies: Vec<f64>,
    /// Writes whose updater returned an error (the shard stays
    /// queryable; rewritten blocks were still invalidated).
    pub writes_failed: usize,
    /// Queries rejected at admission with [`Overload`].
    pub shed_queries: usize,
    /// Writes rejected at admission. Always 0 under the current
    /// discipline — writes use backpressure (the dispatcher stalls on
    /// a full write queue) because the op stream's positional id
    /// assignment cannot survive a dropped write; the field exists so
    /// the accounting stays total if per-class shedding is added.
    pub shed_writes: usize,
    /// High-water per-shard queue depth over the run (max across
    /// shards' read and write queues); never exceeds the configured
    /// [`AdmissionBudget::max_depth`] except for the one-op overrun of
    /// a write that could never fit the budget at all (admitted alone
    /// into an empty queue rather than hanging the dispatcher — see
    /// [`GatedSender::send_blocking`]).
    pub peak_queue_depth: usize,
    /// Seconds from service epoch to the last completion.
    pub duration: f64,
    /// Device statistics summed over workers (shared arrays counted
    /// once; cache counters — including invalidations and discarded
    /// stale fills — are per-run deltas over the shard caches).
    pub device: DeviceStats,
    /// Total I/Os issued across shards.
    pub total_io: u64,
    /// Worker threads that served the run.
    pub workers: usize,
    /// Shards queried.
    pub shards: usize,
}

impl ServiceReport {
    /// **Accepted** (completed) queries per second — the service's
    /// goodput. Shed queries do not count.
    pub fn qps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            (self.results.len() - self.shed_queries) as f64 / self.duration
        }
    }

    /// Alias of [`ServiceReport::qps`], named for saturation sweeps
    /// where offered rate and goodput diverge.
    pub fn goodput(&self) -> f64 {
        self.qps()
    }

    /// Shed ops over all ops offered (queries and writes).
    pub fn shed_rate(&self) -> f64 {
        let shed = self.shed_queries + self.shed_writes;
        let total =
            self.results.len() + self.write_latencies.len() + self.writes_failed + self.shed_writes;
        if total == 0 {
            0.0
        } else {
            shed as f64 / total as f64
        }
    }

    /// Applied writes per second (0 for read-only runs).
    pub fn wps(&self) -> f64 {
        if self.duration <= 0.0 {
            0.0
        } else {
            self.write_latencies.len() as f64 / self.duration
        }
    }

    /// End-to-end read-latency percentiles (queue entry → finish) over
    /// **accepted** queries only.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::of_accepted(&self.latencies, &self.statuses)
    }

    /// Service-only read-latency percentiles (first worker start →
    /// finish) over accepted queries: what the shards cost, with
    /// enqueue wait removed.
    pub fn service_latency(&self) -> LatencySummary {
        LatencySummary::of_accepted(&self.service_latencies, &self.statuses)
    }

    /// Enqueue-wait percentiles of accepted queries (queue entry →
    /// first worker start): `latency() ≈ queue_wait() + service_latency()`
    /// distribution-wise; exactly per query.
    pub fn queue_wait(&self) -> LatencySummary {
        let waits: Vec<f64> = self
            .latencies
            .iter()
            .zip(&self.service_latencies)
            .map(|(&l, &s)| (l - s).max(0.0))
            .collect();
        LatencySummary::of_accepted(&waits, &self.statuses)
    }

    /// End-to-end write-latency percentiles (all zeros for read-only
    /// runs).
    pub fn write_latency(&self) -> LatencySummary {
        LatencySummary::of(&self.write_latencies)
    }

    /// Service-only write-latency percentiles (writer dequeue →
    /// applied).
    pub fn write_service_latency(&self) -> LatencySummary {
        LatencySummary::of(&self.write_service_latencies)
    }

    /// Enqueue-wait percentiles of applied writes (queue entry →
    /// writer dequeue), computed per op from the parallel latency
    /// vectors — **not** a difference of percentiles, which would mix
    /// tails of different ops.
    pub fn write_queue_wait(&self) -> LatencySummary {
        let waits: Vec<f64> = self
            .write_latencies
            .iter()
            .zip(&self.write_service_latencies)
            .map(|(&l, &s)| (l - s).max(0.0))
            .collect();
        LatencySummary::of(&waits)
    }

    /// Mean I/Os per accepted query (summed over shards).
    pub fn mean_n_io(&self) -> f64 {
        let accepted = self.results.len() - self.shed_queries;
        if accepted == 0 {
            0.0
        } else {
            self.total_io as f64 / accepted as f64
        }
    }
}

/// Results of one batch request served by
/// [`ShardedService::query_batch`].
#[derive(Clone, Debug)]
pub struct BatchQueryReport {
    /// Merged global top-k per **input** query, distance ascending.
    /// Duplicates of one unique query hold clones of the same merged
    /// vector — byte-identical. Empty for shed queries.
    pub results: Vec<Vec<(u32, f32)>>,
    /// Per-input-query status; duplicates share their representative's
    /// fate (one admission decision per unique query).
    pub statuses: Vec<OpStatus>,
    /// Per-input-query latency in seconds from the request arrival
    /// (all queries of a batch enter the queue at one instant) to the
    /// last shard finish of the query's representative. 0 for shed
    /// queries.
    pub latencies: Vec<f64>,
    /// Distinct queries after dedup (engine-side work units).
    pub unique: usize,
    /// Duplicates collapsed by dedup (`results.len() - unique`).
    pub collapsed: usize,
    /// Input queries shed with [`Overload`] (duplicates counted).
    pub shed: usize,
    /// High-water shard queue depth while serving this batch.
    pub peak_queue_depth: usize,
    /// Seconds from request arrival to the last completion.
    pub duration: f64,
    /// Device statistics (conventions as in [`ServiceReport::device`]).
    pub device: DeviceStats,
    /// Engine probes issued across shards (table + bucket reads) — with
    /// dedup this counts **unique** queries' I/O only; the saving over
    /// per-query serving is `collapsed` × the per-query I/O cost.
    pub total_io: u64,
    /// Worker threads that served the request.
    pub workers: usize,
    /// Shards queried.
    pub shards: usize,
}

impl BatchQueryReport {
    /// Latency percentiles over accepted input queries.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::of_accepted(&self.latencies, &self.statuses)
    }

    /// Fraction of the batch collapsed by dedup.
    pub fn dedup_rate(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.collapsed as f64 / self.results.len() as f64
        }
    }
}

/// The dedup map of one batch: which input queries collapse onto which
/// engine-side unique query.
#[derive(Clone, Debug)]
pub struct BatchDedup {
    /// Input index of each unique query's first occurrence, in
    /// first-seen order — the batch the engine actually serves.
    pub uniques: Vec<usize>,
    /// Input index → index into [`BatchDedup::uniques`] of the query's
    /// representative (`rep[uniques[u]] == u`).
    pub rep: Vec<usize>,
}

/// Group byte-identical queries of a batch.
///
/// **Dedup key definition:** the bit pattern of the query's
/// coordinates (`f32::to_bits` per dimension) — exact equality, no
/// tolerance. `-0.0` and `0.0` are *different* keys, every `NaN`
/// payload is its own key; two queries collapse iff a client sent the
/// same bytes twice, which is the hot-query case batching targets
/// (retries, trending items, shared prompts). No float comparison
/// semantics are involved, so dedup can never merge queries whose
/// results could differ.
pub fn dedup_batch(batch: &Dataset) -> BatchDedup {
    let mut seen: HashMap<Vec<u32>, usize> = HashMap::new();
    let mut uniques = Vec::new();
    let mut rep = Vec::with_capacity(batch.len());
    for i in 0..batch.len() {
        let key: Vec<u32> = batch.point(i).iter().map(|v| v.to_bits()).collect();
        let u = *seen.entry(key).or_insert_with(|| {
            uniques.push(i);
            uniques.len() - 1
        });
        rep.push(u);
    }
    BatchDedup { uniques, rep }
}

/// Per-query accumulation while shard partials trickle in.
struct Accum {
    remaining: usize,
    neighbors: Vec<(u32, f32)>,
    /// Earliest shard service start (min over partials).
    start: f64,
    /// Latest shard finish (max over partials).
    finish: f64,
}

/// The sharded, multi-threaded E2LSHoS query service.
pub struct ShardedService {
    shards: ShardSet,
    config: ServiceConfig,
}

impl ShardedService {
    /// Serve `shards` with `config`.
    pub fn new(shards: ShardSet, config: ServiceConfig) -> Self {
        assert!(config.workers_per_shard >= 1);
        assert!(config.k >= 1);
        Self { shards, config }
    }

    /// The shard set.
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// The configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Run `queries` through the service under the given admission
    /// discipline; blocks until every query completes. Read-only
    /// shorthand for [`ShardedService::serve_mixed`].
    pub fn serve(&self, queries: &Dataset, load: Load) -> ServiceReport {
        let ops: Vec<Op> = (0..queries.len()).map(Op::Query).collect();
        let no_inserts = Dataset::with_capacity(queries.dim().max(1), 0);
        self.serve_mixed(queries, &no_inserts, &ops, load)
    }

    /// Run a mixed read–write op stream through the service; blocks
    /// until every op completes.
    ///
    /// `ops` references `queries` (each `Op::Query(i)` must appear
    /// exactly once for `i < queries.len()`) and `inserts`
    /// (`Op::Insert(j)` consumes pool point `j`, in ascending order —
    /// the `j`-th insert receives the next unassigned global id, i.e.
    /// build-time total + inserts applied by earlier runs + `j`, and is
    /// routed round-robin over the shards). `Op::Delete(g)` must target
    /// an id that is live at its position in the stream.
    /// [`crate::loadgen::mixed_ops`] generates conforming streams (use
    /// [`crate::loadgen::mixed_ops_resuming`] for follow-up runs on a
    /// mutated service).
    ///
    /// Queries fan out to every shard's worker pool; writes go to the
    /// owning shard's writer thread (one per shard — the shard write
    /// lock), which applies them through the storage updater,
    /// invalidates exactly the rewritten cache blocks and publishes new
    /// occupancy-filter bits into the live index. Under [`Load::Closed`]
    /// the window counts in-flight ops of both kinds; under
    /// [`Load::Open`] all ops share one Poisson arrival process.
    pub fn serve_mixed(
        &self,
        queries: &Dataset,
        inserts: &Dataset,
        ops: &[Op],
        load: Load,
    ) -> ServiceReport {
        assert_eq!(queries.dim(), self.shards.dim(), "query dimensionality");
        let num_shards = self.shards.num_shards();
        let workers_total = num_shards * self.config.workers_per_shard;
        let num_queries = ops.iter().filter(|op| matches!(op, Op::Query(_))).count();
        assert_eq!(
            num_queries,
            queries.len(),
            "ops must cover each query exactly once"
        );
        let has_writes = ops.len() > num_queries;
        if has_writes {
            assert_eq!(inserts.dim(), self.shards.dim(), "insert dimensionality");
        }
        // Validate write ops up front: a bad op would panic inside a
        // shard writer thread, and a dead writer starves the collector
        // of WriteDone messages — a silent hang instead of a loud
        // failure here. Checks: insert indices are dense and ascending
        // (the dispatcher assigns global ids as `insert_base + j`) and
        // fit the pool; deletes target ids assigned before them in the
        // stream (per-shard FIFO then guarantees delete-after-insert);
        // and each shard's growth fits the id space its index codec was
        // built with.
        {
            let insert_base = self.insert_base();
            let mut assigned = insert_base;
            let mut expected_insert = 0usize;
            let mut new_rows = vec![0usize; num_shards];
            for op in ops {
                match *op {
                    Op::Query(_) => {}
                    Op::Insert(j) => {
                        assert_eq!(
                            j, expected_insert,
                            "insert indices must be dense and ascending"
                        );
                        new_rows[self.shards.plan().shard_of_any(assigned)] += 1;
                        expected_insert += 1;
                        assigned += 1;
                    }
                    Op::Delete(g) => {
                        assert!(
                            (g as usize) < assigned,
                            "delete of unassigned global id {g} (ids end at {assigned})"
                        );
                    }
                }
            }
            assert!(
                expected_insert <= inserts.len(),
                "ops consume {expected_insert} insert points but the pool holds {}",
                inserts.len()
            );
            for (s, shard) in self.shards.shards().iter().enumerate() {
                let id_space = 1u64 << shard.index.codec().id_bits;
                assert!(
                    (shard.num_rows() + new_rows[s]) as u64 <= id_space,
                    "shard {s}: {} inserts exceed the id space ({id_space} ids) — \
                     build with a larger ShardBuildConfig::capacity",
                    new_rows[s]
                );
            }
        }
        if ops.is_empty() {
            return ServiceReport {
                results: Vec::new(),
                statuses: Vec::new(),
                latencies: Vec::new(),
                service_latencies: Vec::new(),
                write_latencies: Vec::new(),
                write_service_latencies: Vec::new(),
                writes_failed: 0,
                shed_queries: 0,
                shed_writes: 0,
                peak_queue_depth: 0,
                duration: 0.0,
                device: DeviceStats::default(),
                total_io: 0,
                workers: workers_total,
                shards: num_shards,
            };
        }

        let engine = self.config.engine();
        let sim_time = self.config.device.is_sim();
        let epoch = Instant::now();
        let cache_snapshot = self.cache_snapshots();
        let arrays = self.build_arrays();

        // Per-shard bounded job queues and the worker/writer→collector
        // channel.
        let channels: Vec<(GatedSender<Job>, GatedReceiver<Job>)> = (0..num_shards)
            .map(|s| gated(s, self.config.admission))
            .collect();
        let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();
        // One writer (and bounded write queue) per shard, only when the
        // stream has writes: the writer owns the shard's read-write
        // updater.
        let write_channels: Vec<(GatedSender<WriteJob>, GatedReceiver<WriteJob>)> = if has_writes {
            (0..num_shards)
                .map(|s| gated(s, self.config.admission))
                .collect()
        } else {
            Vec::new()
        };

        let mut report: Option<ServiceReport> = None;
        std::thread::scope(|scope| {
            for (s, shard) in self.shards.shards().iter().enumerate() {
                for w in 0..self.config.workers_per_shard {
                    let device = self.make_device(shard, &arrays[s], w);
                    let jobs = channels[s].1.clone();
                    let tx = msg_tx.clone();
                    let engine = &engine;
                    scope.spawn(move || {
                        run_worker(
                            WorkerCtx {
                                shard,
                                worker_in_shard: w,
                                queries,
                                engine,
                                sim_time,
                                epoch,
                            },
                            device,
                            jobs,
                            tx,
                        );
                    });
                }
                if has_writes {
                    let jobs = write_channels[s].1.clone();
                    let tx = msg_tx.clone();
                    scope.spawn(move || run_writer(shard, inserts, jobs, tx, epoch));
                }
            }
            let shed_tx = msg_tx.clone();
            drop(msg_tx);
            let job_txs: Vec<GatedSender<Job>> =
                channels.iter().map(|(tx, _)| tx.clone()).collect();
            drop(channels);
            let write_txs: Vec<GatedSender<WriteJob>> =
                write_channels.iter().map(|(tx, _)| tx.clone()).collect();
            drop(write_channels);

            report = Some(self.drive(
                queries,
                ops,
                load,
                job_txs,
                write_txs,
                msg_rx,
                shed_tx,
                epoch,
                &cache_snapshot,
            ));
        });
        report.expect("collector ran")
    }

    /// Snapshot cache counters so reports show per-run deltas even when
    /// a warm cache is reused across runs.
    fn cache_snapshots(&self) -> Vec<CacheSnapshot> {
        self.shards
            .shards()
            .iter()
            .map(|s| match &s.cache {
                Some(c) => CacheSnapshot {
                    hits: c.hits(),
                    misses: c.misses(),
                    evictions: c.evictions(),
                    invalidations: c.invalidations(),
                    stale_fills: c.stale_fills(),
                },
                None => CacheSnapshot::default(),
            })
            .collect()
    }

    /// One shared simulated array per shard when the device spec asks
    /// for it.
    fn build_arrays(&self) -> Vec<Option<SharedSimArray>> {
        self.shards
            .shards()
            .iter()
            .map(|shard| match self.config.device {
                DeviceSpec::SimShared {
                    profile,
                    num_devices,
                } => {
                    let sim = SimStorage::new(
                        profile,
                        num_devices,
                        Backing::open(&shard.path).expect("open shard index"),
                    );
                    Some(SharedSimArray::new(sim, self.config.workers_per_shard))
                }
                _ => None,
            })
            .collect()
    }

    /// Drain `Done` messages after the job queues closed, summing
    /// worker device statistics (shared arrays counted once per shard),
    /// then add the per-run cache-counter deltas.
    fn drain_device_stats(
        &self,
        msg_rx: &Receiver<WorkerMsg>,
        cache_snapshot: &[CacheSnapshot],
    ) -> DeviceStats {
        let mut device = DeviceStats::default();
        while let Ok(msg) = msg_rx.recv() {
            if let WorkerMsg::Done {
                worker_in_shard,
                device: d,
                ..
            } = msg
            {
                // Shared arrays report whole-array stats from every
                // worker: count one handle per shard.
                let shared = matches!(self.config.device, DeviceSpec::SimShared { .. });
                if !shared || worker_in_shard == 0 {
                    device.completed += d.completed;
                    device.bytes += d.bytes;
                    device.latency_sum += d.latency_sum;
                    device.busy_sum += d.busy_sum;
                }
            }
        }
        // Cache counters: per-run deltas over the shard caches (device
        // stats would double count — every worker of a shard shares one
        // cache).
        for (shard, snap) in self.shards.shards().iter().zip(cache_snapshot) {
            if let Some(c) = &shard.cache {
                device.cache_hits += c.hits() - snap.hits;
                device.cache_misses += c.misses() - snap.misses;
                device.cache_evictions += c.evictions() - snap.evictions;
                device.cache_invalidations += c.invalidations() - snap.invalidations;
                device.cache_stale_fills += c.stale_fills() - snap.stale_fills;
            }
        }
        device
    }

    /// Serve one **batch request**: a vector of queries admitted,
    /// executed and merged as a unit.
    ///
    /// Byte-identical queries in the batch (same coordinate bit
    /// patterns — see [`dedup_batch`]) are deduplicated *before they
    /// reach the engine*: each distinct query is probed once per shard
    /// and the merged result is fanned back out to every duplicate, so
    /// a Zipf-hot batch costs the engine its unique queries only. The
    /// whole batch shares one fan-out/merge pass per shard — one worker
    /// pool spin-up and one collector, not one per query.
    ///
    /// Admission is per *unique* query under the service's
    /// [`AdmissionBudget`] (all-or-nothing across shards, like
    /// [`ShardedService::serve`]): a unique query that would overflow a
    /// shard queue is shed, and every duplicate of it reports
    /// [`OpStatus::Shed`] in the returned per-query statuses. Results
    /// for duplicates of an admitted query are clones of one merged
    /// vector — byte-identical by construction.
    pub fn query_batch(&self, batch: &Dataset) -> BatchQueryReport {
        assert_eq!(batch.dim(), self.shards.dim(), "query dimensionality");
        let num_shards = self.shards.num_shards();
        let workers_total = num_shards * self.config.workers_per_shard;
        let dedup = dedup_batch(batch);
        let nu = dedup.uniques.len();
        if batch.is_empty() {
            return BatchQueryReport {
                results: Vec::new(),
                statuses: Vec::new(),
                latencies: Vec::new(),
                unique: 0,
                collapsed: 0,
                shed: 0,
                peak_queue_depth: 0,
                duration: 0.0,
                device: DeviceStats::default(),
                total_io: 0,
                workers: workers_total,
                shards: num_shards,
            };
        }
        let mut unique_queries = Dataset::with_capacity(batch.dim().max(1), nu);
        for &i in &dedup.uniques {
            unique_queries.push(batch.point(i));
        }

        let engine = self.config.engine();
        let sim_time = self.config.device.is_sim();
        let epoch = Instant::now();
        let cache_snapshot = self.cache_snapshots();
        let arrays = self.build_arrays();
        let channels: Vec<(GatedSender<Job>, GatedReceiver<Job>)> = (0..num_shards)
            .map(|s| gated(s, self.config.admission))
            .collect();
        let (msg_tx, msg_rx) = unbounded::<WorkerMsg>();

        // Collector over the *unique* queries; every unique is its own
        // op with queue entry at the request epoch (ref 0).
        let mut collector = Collector::new(nu, num_shards, (0..nu).collect(), self.config.k);
        let ref_time = vec![0.0f64; nu];
        let mut peak_queue_depth = 0usize;
        let mut device = DeviceStats::default();
        let queries = &unique_queries;

        std::thread::scope(|scope| {
            for (s, shard) in self.shards.shards().iter().enumerate() {
                for w in 0..self.config.workers_per_shard {
                    let device = self.make_device(shard, &arrays[s], w);
                    let jobs = channels[s].1.clone();
                    let tx = msg_tx.clone();
                    let engine = &engine;
                    scope.spawn(move || {
                        run_worker(
                            WorkerCtx {
                                shard,
                                worker_in_shard: w,
                                queries,
                                engine,
                                sim_time,
                                epoch,
                            },
                            device,
                            jobs,
                            tx,
                        );
                    });
                }
            }
            drop(msg_tx);
            let job_txs: Vec<GatedSender<Job>> =
                channels.iter().map(|(tx, _)| tx.clone()).collect();
            drop(channels);

            // Dispatch the whole request at once (a batch is one
            // arrival instant), then collect.
            let mut admitted = 0usize;
            for u in 0..nu {
                match self.try_fanout_query(u, &job_txs) {
                    Ok(()) => admitted += 1,
                    Err(_) => collector.shed(Op::Query(u), epoch.elapsed().as_secs_f64()),
                }
            }
            let mut done = 0usize;
            while done < admitted {
                let msg = msg_rx.recv().expect("workers alive");
                if collector.absorb(msg, &ref_time) {
                    done += 1;
                }
            }
            peak_queue_depth = job_txs
                .iter()
                .map(|tx| tx.stats().peak_depth)
                .max()
                .unwrap_or(0);
            drop(job_txs);
            device = self.drain_device_stats(&msg_rx, &cache_snapshot);
        });

        // Fan the unique results back out to every duplicate.
        let n = batch.len();
        let mut results = Vec::with_capacity(n);
        let mut statuses = Vec::with_capacity(n);
        let mut latencies = Vec::with_capacity(n);
        for i in 0..n {
            let u = dedup.rep[i];
            results.push(collector.results[u].clone());
            statuses.push(collector.statuses[u]);
            latencies.push(collector.latencies[u]);
        }
        let shed = statuses.iter().filter(|&&s| s == OpStatus::Shed).count();
        BatchQueryReport {
            results,
            statuses,
            latencies,
            unique: nu,
            collapsed: n - nu,
            shed,
            peak_queue_depth,
            duration: collector.duration,
            device,
            total_io: collector.total_io,
            workers: workers_total,
            shards: num_shards,
        }
    }

    /// All-or-nothing fan-out admission of one query: reserve budget on
    /// every shard's queue or shed on the first full one (undoing the
    /// earlier reservations — a partially fanned-out query would starve
    /// its merge accumulator).
    fn try_fanout_query(&self, qid: usize, job_txs: &[GatedSender<Job>]) -> Result<(), Overload> {
        let point_bytes = self.shards.dim() * std::mem::size_of::<f32>();
        for (s, tx) in job_txs.iter().enumerate() {
            if let Err(overload) = tx.reserve(point_bytes) {
                for early in &job_txs[..s] {
                    early.unreserve(point_bytes);
                }
                return Err(overload);
            }
        }
        for tx in job_txs {
            tx.send_reserved(Job { qid }, point_bytes);
        }
        Ok(())
    }

    fn make_device(
        &self,
        shard: &Shard,
        array: &Option<SharedSimArray>,
        worker_in_shard: usize,
    ) -> Box<dyn Device> {
        fn wrap<D: Device + 'static>(dev: D, shard: &Shard) -> Box<dyn Device> {
            match &shard.cache {
                Some(cache) => {
                    Box::new(CachedDevice::new(dev, Arc::clone(cache), BLOCK_SIZE as u32))
                }
                None => Box::new(dev),
            }
        }
        match self.config.device {
            DeviceSpec::File { io_workers } => wrap(
                FileDevice::open(&shard.path, io_workers.max(1)).expect("open shard index"),
                shard,
            ),
            DeviceSpec::SimPerWorker {
                profile,
                num_devices,
            } => wrap(
                SimStorage::new(
                    profile,
                    num_devices,
                    Backing::open(&shard.path).expect("open shard index"),
                ),
                shard,
            ),
            DeviceSpec::SimShared { .. } => wrap(
                array
                    .as_ref()
                    .expect("shared array built")
                    .handle(worker_in_shard),
                shard,
            ),
        }
    }

    /// Next unassigned global id: inserts continue the sequence where
    /// earlier runs left it (build-time total + rows appended so far).
    fn insert_base(&self) -> usize {
        self.shards.plan().base_total()
            + self
                .shards
                .shards()
                .iter()
                .map(|s| s.num_rows() - s.base_len())
                .sum::<usize>()
    }

    /// Route one op under the admission budget: queries fan out to
    /// every shard's worker pool (all-or-nothing — a query admitted by
    /// only some shards would starve its merge accumulator) and are
    /// **shed** with [`Overload`] when a queue budget rejects them;
    /// writes go to the owning shard's writer under **backpressure**
    /// ([`GatedSender::send_blocking`]): the `j`-th insert of the
    /// stream gets global id `insert_base + j` (the generator emits
    /// `Op::Insert(j)` in ascending order; `insert_base` is the
    /// build-time total plus inserts applied by earlier runs, dealt
    /// round-robin per the plan's appended-id arithmetic) while the
    /// shard updater assigns ids *positionally* — dropping a write
    /// would desynchronize the two for every later write on the shard
    /// (and orphan deletes that reference the dropped insert), so a
    /// full write queue stalls the dispatcher instead of shedding.
    /// Queue memory stays bounded under either discipline.
    fn try_send_op(
        &self,
        op_idx: usize,
        op: Op,
        insert_base: usize,
        job_txs: &[GatedSender<Job>],
        write_txs: &[GatedSender<WriteJob>],
    ) -> Result<(), Overload> {
        // Payload cost the gate charges: the bytes the queue entry pins
        // (query/insert coordinates; a delete pins just its id).
        let point_bytes = self.shards.dim() * std::mem::size_of::<f32>();
        match op {
            Op::Query(qid) => self.try_fanout_query(qid, job_txs)?,
            Op::Insert(j) => {
                let global_id = (insert_base + j) as u32;
                let s = self.shards.plan().shard_of_any(global_id as usize);
                write_txs[s].send_blocking(
                    WriteJob {
                        op_idx,
                        global_id,
                        kind: WriteKind::Insert { point_idx: j },
                    },
                    point_bytes,
                );
            }
            Op::Delete(global_id) => {
                let s = self.shards.plan().shard_of_any(global_id as usize);
                write_txs[s].send_blocking(
                    WriteJob {
                        op_idx,
                        global_id,
                        kind: WriteKind::Delete,
                    },
                    std::mem::size_of::<u32>(),
                );
            }
        }
        Ok(())
    }

    /// Dispatch ops per the admission discipline and collect partials /
    /// write completions.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        queries: &Dataset,
        ops: &[Op],
        load: Load,
        job_txs: Vec<GatedSender<Job>>,
        write_txs: Vec<GatedSender<WriteJob>>,
        msg_rx: Receiver<WorkerMsg>,
        shed_tx: Sender<WorkerMsg>,
        epoch: Instant,
        cache_snapshot: &[CacheSnapshot],
    ) -> ServiceReport {
        let nq = queries.len();
        let total = ops.len();
        let num_shards = self.shards.num_shards();
        let insert_base = self.insert_base();
        let k = self.config.k;
        // qid → op index, for read-latency reference times.
        let mut query_op = vec![usize::MAX; nq];
        for (i, op) in ops.iter().enumerate() {
            if let Op::Query(qid) = *op {
                assert_eq!(query_op[qid], usize::MAX, "query {qid} appears twice");
                query_op[qid] = i;
            }
        }
        let mut collector = Collector::new(nq, num_shards, query_op, k);
        let mut ref_time = vec![0.0f64; total]; // dispatch (closed) or arrival (open)
        let mut done = 0usize;

        match load {
            Load::Closed { window } => {
                // Sheds are booked inline (the dispatcher is the
                // collector's own thread); a shed op never occupies a
                // window slot.
                drop(shed_tx);
                let window = window.max(1).min(total);
                let mut next = 0usize;
                let mut inflight = 0usize;
                while done < total {
                    while inflight < window && next < total {
                        let now = epoch.elapsed().as_secs_f64();
                        ref_time[next] = now;
                        match self.try_send_op(next, ops[next], insert_base, &job_txs, &write_txs) {
                            Ok(()) => inflight += 1,
                            Err(_) => {
                                collector.shed(ops[next], now);
                                done += 1;
                            }
                        }
                        next += 1;
                    }
                    if done >= total {
                        break;
                    }
                    let msg = msg_rx.recv().expect("workers alive");
                    if collector.absorb(msg, &ref_time) {
                        done += 1;
                        inflight -= 1;
                    }
                }
            }
            Load::Open { .. } | Load::Burst { .. } => {
                let arrivals = load.arrival_schedule(total);
                ref_time.copy_from_slice(&arrivals);
                let dispatch_job_txs = &job_txs;
                let dispatch_write_txs = &write_txs;
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        // Open loop: arrivals never wait for
                        // completions; a shed op is reported to the
                        // collector through the message channel so it
                        // still sees one terminal event per op.
                        for (op_idx, &at) in arrivals.iter().enumerate() {
                            sleep_until(epoch, at);
                            if self
                                .try_send_op(
                                    op_idx,
                                    ops[op_idx],
                                    insert_base,
                                    dispatch_job_txs,
                                    dispatch_write_txs,
                                )
                                .is_err()
                            {
                                let qid = match ops[op_idx] {
                                    Op::Query(qid) => Some(qid),
                                    _ => None,
                                };
                                // The collector outlives the dispatch
                                // loop; a send can only fail after it
                                // already has every terminal event.
                                let _ = shed_tx.send(WorkerMsg::Shed { op_idx, qid });
                            }
                        }
                    });
                    while done < total {
                        let msg = msg_rx.recv().expect("workers alive");
                        if collector.absorb(msg, &ref_time) {
                            done += 1;
                        }
                    }
                });
            }
        }

        // High-water queue depths before the queues close.
        let peak_queue_depth = job_txs
            .iter()
            .map(|tx| tx.stats().peak_depth)
            .chain(write_txs.iter().map(|tx| tx.stats().peak_depth))
            .max()
            .unwrap_or(0);

        // Close the queues and aggregate worker statistics.
        drop(job_txs);
        drop(write_txs);
        let device = self.drain_device_stats(&msg_rx, cache_snapshot);

        ServiceReport {
            results: collector.results,
            statuses: collector.statuses,
            latencies: collector.latencies,
            service_latencies: collector.service_latencies,
            write_latencies: collector.write_latencies,
            write_service_latencies: collector.write_service_latencies,
            writes_failed: collector.writes_failed,
            shed_queries: collector.shed_queries,
            shed_writes: collector.shed_writes,
            peak_queue_depth,
            duration: collector.duration,
            device,
            total_io: collector.total_io,
            workers: self.shards.num_shards() * self.config.workers_per_shard,
            shards: num_shards,
        }
    }
}

/// Mutable collector state of one service run: merges shard partials
/// into per-query results and books read/write latencies and sheds.
struct Collector {
    accum: Vec<Accum>,
    results: Vec<Vec<(u32, f32)>>,
    statuses: Vec<OpStatus>,
    latencies: Vec<f64>,
    service_latencies: Vec<f64>,
    write_latencies: Vec<f64>,
    write_service_latencies: Vec<f64>,
    writes_failed: usize,
    shed_queries: usize,
    shed_writes: usize,
    total_io: u64,
    duration: f64,
    /// qid → op index, for read-latency reference times.
    query_op: Vec<usize>,
    k: usize,
}

impl Collector {
    fn new(nq: usize, num_shards: usize, query_op: Vec<usize>, k: usize) -> Self {
        Self {
            accum: (0..nq)
                .map(|_| Accum {
                    remaining: num_shards,
                    neighbors: Vec::new(),
                    start: f64::MAX,
                    finish: 0.0,
                })
                .collect(),
            results: vec![Vec::new(); nq],
            statuses: vec![OpStatus::Ok; nq],
            latencies: vec![0.0f64; nq],
            service_latencies: vec![0.0f64; nq],
            write_latencies: Vec::new(),
            write_service_latencies: Vec::new(),
            writes_failed: 0,
            shed_queries: 0,
            shed_writes: 0,
            total_io: 0,
            duration: 0.0,
            query_op,
            k,
        }
    }

    /// Book one op shed at dispatch time `now` (closed loop — the open
    /// loop routes sheds through [`WorkerMsg::Shed`]).
    fn shed(&mut self, op: Op, now: f64) {
        match op {
            Op::Query(qid) => self.shed_query(qid),
            Op::Insert(_) | Op::Delete(_) => self.shed_writes += 1,
        }
        // A shed is a terminal event: keep `duration` covering it so
        // goodput/shed-rate math sees the whole run.
        self.duration = self.duration.max(now);
    }

    fn shed_query(&mut self, qid: usize) {
        debug_assert_eq!(self.statuses[qid], OpStatus::Ok, "query {qid} shed twice");
        self.statuses[qid] = OpStatus::Shed;
        self.shed_queries += 1;
    }

    /// Accumulate one message; returns true when it completed an op.
    /// `ref_time[op]` is the op's queue-entry time: dispatch (closed
    /// loop) or scheduled arrival (open loop).
    fn absorb(&mut self, msg: WorkerMsg, ref_time: &[f64]) -> bool {
        match msg {
            WorkerMsg::Partial {
                qid,
                neighbors,
                n_io,
                start,
                finish,
                ..
            } => {
                let a = &mut self.accum[qid];
                debug_assert!(a.remaining > 0, "extra partial for query {qid}");
                a.neighbors.extend(neighbors);
                a.start = a.start.min(start);
                a.finish = a.finish.max(finish);
                a.remaining -= 1;
                self.total_io += u64::from(n_io);
                if a.remaining == 0 {
                    let mut merged = std::mem::take(&mut a.neighbors);
                    merged.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
                    merged.truncate(self.k);
                    let (start, finish) = (a.start, a.finish);
                    self.results[qid] = merged;
                    self.latencies[qid] = finish - ref_time[self.query_op[qid]];
                    self.service_latencies[qid] = finish - start;
                    self.duration = self.duration.max(finish);
                    true
                } else {
                    false
                }
            }
            WorkerMsg::WriteDone {
                op_idx,
                ok,
                start,
                finish,
            } => {
                // Failed writes count toward writes_failed only:
                // wps()/write_latency() report *applied* writes.
                if ok {
                    self.write_latencies.push(finish - ref_time[op_idx]);
                    self.write_service_latencies.push(finish - start);
                } else {
                    self.writes_failed += 1;
                }
                self.duration = self.duration.max(finish);
                true
            }
            WorkerMsg::Shed { op_idx, qid } => {
                match qid {
                    Some(qid) => self.shed_query(qid),
                    None => self.shed_writes += 1,
                }
                self.duration = self.duration.max(ref_time[op_idx]);
                true
            }
            WorkerMsg::Done { .. } => {
                unreachable!("Done before the job queues closed")
            }
        }
    }
}

/// Cache counters at serve start, for per-run deltas.
#[derive(Clone, Copy, Debug, Default)]
struct CacheSnapshot {
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    stale_fills: u64,
}
